"""Instrumented recursive-doubling kernel (§4, Fig 3 dataflow).

One block per system, ``n`` threads.  The 3x3 scan matrices are stored
structure-of-arrays in six shared arrays of n words (only the first
two rows; the third is constant -- the paper's storage trick), so every
scan access is unit-stride and the kernel is bank-conflict free.

Phases (matching Fig 13's grouping):

- ``global_load_setup``  read a, b, c, d straight into registers and
  build the B_i matrices in shared memory (the paper lumps "global
  memory access and matrix setup" into one slice)
- ``scan``               Hillis-Steele inclusive scan, log2(n) steps;
  active threads are the contiguous chunk [stride, n)
- ``solution_evaluation`` x_0 from the full prefix product, then all
  other unknowns; results written straight to global memory
"""

from __future__ import annotations

import numpy as np

from repro.gpusim import BlockContext

from .common import GlobalSystemArrays, log2_int

PHASE_SETUP = "global_load_setup"
PHASE_SCAN = "scan"
PHASE_EVAL = "solution_evaluation"

PHASES = (PHASE_SETUP, PHASE_SCAN, PHASE_EVAL)


def rd_matrix_setup(ctx: BlockContext, gmem: GlobalSystemArrays,
                    rows, n: int) -> None:
    """Build B_i = [[-b/c, -a/c, d/c], [1, 0, 0]] in shared memory.

    The last equation uses the formal ``c = 1`` substitution (see
    :mod:`repro.solvers.rd`).  Inputs come straight from global memory
    into registers -- RD never stages raw diagonals in shared memory.
    """
    r00, r01, r02, r10, r11, r12 = rows
    bases = gmem.block_bases
    ctx.set_active(n)
    i = ctx.lanes
    av, bv, cv, dv = ctx.gload_multi((gmem.a, gmem.b, gmem.c, gmem.d),
                                     bases, i)
    cv[:, -1] = 1  # formal c for the last equation
    with np.errstate(divide="ignore", invalid="ignore"):
        m00 = -bv / cv
        m01 = -av / cv
        m02 = dv / cv
    ctx.ops(5, divs=3)
    ctx.sstore_multi((r00, r01, r02, r10, r11, r12), i,
                     (m00, m01, m02, np.ones_like(m00),
                      np.zeros_like(m00), np.zeros_like(m00)))
    ctx.sync()


def rd_scan_step(ctx: BlockContext, rows, n: int, stride: int) -> None:
    """One Hillis-Steele step: C_i <- C_i . C_{i-stride} for i >= stride.

    12 loads + 6 stores and 20 arithmetic ops per active thread (the
    reduced 2x3-times-2x3 product of §4's storage trick).
    """
    r00, r01, r02, r10, r11, r12 = rows
    ctx.set_active(np.arange(stride, n, dtype=np.int64))
    i = ctx.lanes
    j = i - stride

    a00, a01, a02, a10, a11, a12 = ctx.sload_multi(
        (r00, r01, r02, r10, r11, r12), i)
    b00, b01, b02, b10, b11, b12 = ctx.sload_multi(
        (r00, r01, r02, r10, r11, r12), j)

    with np.errstate(over="ignore", invalid="ignore"):
        c00 = a00 * b00 + a01 * b10
        c01 = a00 * b01 + a01 * b11
        c02 = a00 * b02 + a01 * b12 + a02
        c10 = a10 * b00 + a11 * b10
        c11 = a10 * b01 + a11 * b11
        c12 = a10 * b02 + a11 * b12 + a12
    ctx.ops(20)
    ctx.sync()  # reads complete before in-place writes

    ctx.sstore_multi((r00, r01, r02, r10, r11, r12), i,
                     (c00, c01, c02, c10, c11, c12))
    ctx.sync()


def rd_solution_evaluation(ctx: BlockContext, rows, sx0, n: int,
                           store_x) -> None:
    """Recover the unknowns from the prefix products.

    One thread computes ``x_0 = -C[0,2]/C[0,0]`` from the last prefix
    product and broadcasts it through a shared word; then all threads
    evaluate ``x_{i+1} = C_i[0,0] x_0 + C_i[0,2]`` and hand results to
    ``store_x(ctx, idx, values)`` (global store for the standalone
    kernel, shared scatter for the hybrid).
    """
    r00, _r01, r02 = rows[0], rows[1], rows[2]
    one = np.array([0], dtype=np.int64)

    ctx.set_active(1)
    last = one + (n - 1)
    c00_last, c02_last = ctx.sload_multi((r00, r02), last)
    with np.errstate(divide="ignore", invalid="ignore"):
        x0 = -c02_last / c00_last
    ctx.ops(2, divs=1)
    ctx.sstore(sx0, one, x0)
    ctx.sync()

    ctx.set_active(n)
    i = ctx.lanes
    x0b = ctx.sload(sx0, np.zeros(n, dtype=np.int64))  # broadcast read
    prev = np.maximum(i - 1, 0)
    c00, c02 = ctx.sload_multi((r00, r02), prev)
    with np.errstate(over="ignore", invalid="ignore"):
        xv = c00 * x0b + c02
    # Lane 0 outputs x_0 itself.  Keyed by lane id, not array position:
    # the two coincide only while the active set is a prefix (see the
    # rd_full_kernel audit note).
    xv[:, i == 0] = x0b[:, i == 0]
    ctx.ops(2)
    store_x(ctx, i, xv)
    ctx.sync()


def rd_kernel(ctx: BlockContext, gmem: GlobalSystemArrays) -> None:
    """Recursive doubling, one system per block."""
    n = gmem.n
    log2_int(n)  # validates power of two
    rows = tuple(ctx.shared(n) for _ in range(6))
    sx0 = ctx.shared(1)

    with ctx.phase(PHASE_SETUP):
        with ctx.step():
            rd_matrix_setup(ctx, gmem, rows, n)

    with ctx.phase(PHASE_SCAN):
        stride = 1
        while stride < n:
            with ctx.step():
                rd_scan_step(ctx, rows, n, stride)
            stride *= 2

    def store_to_global(c: BlockContext, idx, values):
        c.gstore(gmem.x, gmem.block_bases, idx, values)

    with ctx.phase(PHASE_EVAL):
        with ctx.step():
            rd_solution_evaluation(ctx, rows, sx0, n, store_to_global)
