"""Global-memory-only cyclic reduction: the §4 fallback path.

"With current hardware, systems of more than 512 equations would
exceed the size of shared memory.  Our solvers do support this case at
a cost of roughly 3x performance degradation by using global memory
only."

This kernel performs the same CR arithmetic as
:mod:`repro.kernels.cr_kernel` but keeps the five arrays in global
memory for the whole solve.  The cost shows up in the trace as global
transactions per step -- strided accesses break coalescing, so the
transaction count explodes exactly where the shared version suffered
bank conflicts.  No shared memory is allocated, so occupancy is not
limited by the system size and arbitrarily large n fits.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim import BlockContext

from .common import GlobalSystemArrays, log2_int

PHASE_FORWARD = "forward_reduction"
PHASE_SOLVE_TWO = "solve_two"
PHASE_BACKWARD = "backward_substitution"


def cr_global_kernel(ctx: BlockContext, gmem: GlobalSystemArrays) -> None:
    """Cyclic reduction operating directly on global memory."""
    n = gmem.n
    levels = log2_int(n)
    bases = gmem.block_bases
    ga, gb, gc, gd, gx = gmem.a, gmem.b, gmem.c, gmem.d, gmem.x

    with ctx.phase(PHASE_FORWARD):
        stride = 1
        for _ in range(max(0, levels - 1)):
            stride *= 2
            with ctx.step():
                ctx.set_active(n // stride)
                tid = ctx.lanes
                i = stride * (tid + 1) - 1
                s = stride // 2
                left = i - s
                right = np.minimum(i + s, n - 1)
                av, bv, cv, dv = ctx.gload_multi((ga, gb, gc, gd), bases, i)
                al, bl, cl, dl = ctx.gload_multi((ga, gb, gc, gd), bases,
                                                 left)
                ar, br, cr, dr = ctx.gload_multi((ga, gb, gc, gd), bases,
                                                 right)
                with np.errstate(divide="ignore", invalid="ignore"):
                    k1 = av / bl
                    k2 = cv / br
                ctx.ops(12, divs=2)
                ctx.gstore_multi((ga, gb, gc, gd), bases, i,
                                 (-al * k1,
                                  bv - cl * k1 - ar * k2,
                                  -cr * k2,
                                  dv - dl * k1 - dr * k2))
                ctx.sync()

    with ctx.phase(PHASE_SOLVE_TWO):
        with ctx.step():
            ctx.set_active(1)
            one = np.array([0], dtype=np.int64)
            i1 = one + (0 if n == 2 else n // 2 - 1)
            i2 = one + (n - 1)
            b1, c1, d1 = ctx.gload_multi((gb, gc, gd), bases, i1)
            a2, b2, d2 = ctx.gload_multi((ga, gb, gd), bases, i2)
            det = b1 * b2 - c1 * a2
            with np.errstate(divide="ignore", invalid="ignore"):
                x1 = (d1 * b2 - c1 * d2) / det
                x2 = (b1 * d2 - d1 * a2) / det
            ctx.ops(11, divs=2)
            ctx.gstore(gx, bases, i1, x1)
            ctx.gstore(gx, bases, i2, x2)
            ctx.sync()

    with ctx.phase(PHASE_BACKWARD):
        stride = n // 2
        while stride > 1:
            half = stride // 2
            with ctx.step():
                ctx.set_active(n // stride)
                tid = ctx.lanes
                i = half - 1 + stride * tid
                left = np.maximum(i - half, 0)
                right = i + half
                av, bv, cv, dv = ctx.gload_multi((ga, gb, gc, gd), bases, i)
                xl = ctx.gload(gx, bases, left)
                xr = ctx.gload(gx, bases, right)
                with np.errstate(divide="ignore", invalid="ignore"):
                    xv = (dv - av * xl - cv * xr) / bv
                ctx.ops(5, divs=1)
                ctx.gstore(gx, bases, i, xv)
                ctx.sync()
            stride = half
