"""Global-memory-only cyclic reduction: the §4 fallback path.

"With current hardware, systems of more than 512 equations would
exceed the size of shared memory.  Our solvers do support this case at
a cost of roughly 3x performance degradation by using global memory
only."

This kernel performs the same CR arithmetic as
:mod:`repro.kernels.cr_kernel` but keeps the five arrays in global
memory for the whole solve.  The cost shows up in the trace as global
transactions per step -- strided accesses break coalescing, so the
transaction count explodes exactly where the shared version suffered
bank conflicts.  No shared memory is allocated, so occupancy is not
limited by the system size and arbitrarily large n fits.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim import BlockContext

from .common import GlobalSystemArrays, log2_int

PHASE_FORWARD = "forward_reduction"
PHASE_SOLVE_TWO = "solve_two"
PHASE_BACKWARD = "backward_substitution"


def cr_global_kernel(ctx: BlockContext, gmem: GlobalSystemArrays) -> None:
    """Cyclic reduction operating directly on global memory."""
    n = gmem.n
    levels = log2_int(n)
    bases = gmem.block_bases
    ga, gb, gc, gd, gx = gmem.a, gmem.b, gmem.c, gmem.d, gmem.x

    with ctx.phase(PHASE_FORWARD):
        stride = 1
        for _ in range(max(0, levels - 1)):
            stride *= 2
            with ctx.step():
                ctx.set_active(n // stride)
                tid = ctx.lanes
                i = stride * (tid + 1) - 1
                s = stride // 2
                left = i - s
                right = np.minimum(i + s, n - 1)
                av = ctx.gload(ga, bases, i)
                bv = ctx.gload(gb, bases, i)
                cv = ctx.gload(gc, bases, i)
                dv = ctx.gload(gd, bases, i)
                al = ctx.gload(ga, bases, left)
                bl = ctx.gload(gb, bases, left)
                cl = ctx.gload(gc, bases, left)
                dl = ctx.gload(gd, bases, left)
                ar = ctx.gload(ga, bases, right)
                br = ctx.gload(gb, bases, right)
                cr = ctx.gload(gc, bases, right)
                dr = ctx.gload(gd, bases, right)
                with np.errstate(divide="ignore", invalid="ignore"):
                    k1 = av / bl
                    k2 = cv / br
                ctx.ops(12, divs=2)
                ctx.gstore(ga, bases, i, -al * k1)
                ctx.gstore(gb, bases, i, bv - cl * k1 - ar * k2)
                ctx.gstore(gc, bases, i, -cr * k2)
                ctx.gstore(gd, bases, i, dv - dl * k1 - dr * k2)
                ctx.sync()

    with ctx.phase(PHASE_SOLVE_TWO):
        with ctx.step():
            ctx.set_active(1)
            one = np.array([0], dtype=np.int64)
            i1 = one + (0 if n == 2 else n // 2 - 1)
            i2 = one + (n - 1)
            b1 = ctx.gload(gb, bases, i1)
            c1 = ctx.gload(gc, bases, i1)
            d1 = ctx.gload(gd, bases, i1)
            a2 = ctx.gload(ga, bases, i2)
            b2 = ctx.gload(gb, bases, i2)
            d2 = ctx.gload(gd, bases, i2)
            det = b1 * b2 - c1 * a2
            with np.errstate(divide="ignore", invalid="ignore"):
                x1 = (d1 * b2 - c1 * d2) / det
                x2 = (b1 * d2 - d1 * a2) / det
            ctx.ops(11, divs=2)
            ctx.gstore(gx, bases, i1, x1)
            ctx.gstore(gx, bases, i2, x2)
            ctx.sync()

    with ctx.phase(PHASE_BACKWARD):
        stride = n // 2
        while stride > 1:
            half = stride // 2
            with ctx.step():
                ctx.set_active(n // stride)
                tid = ctx.lanes
                i = half - 1 + stride * tid
                left = np.maximum(i - half, 0)
                right = i + half
                av = ctx.gload(ga, bases, i)
                bv = ctx.gload(gb, bases, i)
                cv = ctx.gload(gc, bases, i)
                dv = ctx.gload(gd, bases, i)
                xl = ctx.gload(gx, bases, left)
                xr = ctx.gload(gx, bases, right)
                with np.errstate(divide="ignore", invalid="ignore"):
                    xv = (dv - av * xl - cv * xr) / bv
                ctx.ops(5, divs=1)
                ctx.gstore(gx, bases, i, xv)
                ctx.sync()
            stride = half
