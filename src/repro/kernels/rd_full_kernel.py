"""Full-matrix recursive doubling: RD without the §4 storage trick.

The paper's RD kernel stores only the first two rows of each 3x3 scan
matrix ("which enable us to only store the first two rows of matrices
and save several floating point operations", §4).  This kernel is the
control experiment: it stores and multiplies **all nine** entries, so

* shared traffic per scan element rises from 18 to 27 words
  (matching Table 1's 32 n log2 n ledger much more closely -- strong
  evidence that the paper counted the untricked variant), and
* each product costs the general 45 operations instead of 20.

The ablation bench prices the trick; tests confirm both variants are
numerically identical (the third row is exactly [0, 0, 1] throughout,
so the extra arithmetic multiplies zeros and ones).
"""

from __future__ import annotations

import numpy as np

from repro.gpusim import BlockContext

from .common import GlobalSystemArrays, log2_int

PHASE_SETUP = "global_load_setup"
PHASE_SCAN = "scan"
PHASE_EVAL = "solution_evaluation"


def rd_full_kernel(ctx: BlockContext, gmem: GlobalSystemArrays) -> None:
    """Recursive doubling with naive 3x3 matrix storage (9 rows)."""
    n = gmem.n
    log2_int(n)
    rows = tuple(ctx.shared(n) for _ in range(9))
    sx0 = ctx.shared(1)
    bases = gmem.block_bases

    with ctx.phase(PHASE_SETUP):
        with ctx.step():
            ctx.set_active(n)
            i = ctx.lanes
            av, bv, cv, dv = ctx.gload_multi(
                (gmem.a, gmem.b, gmem.c, gmem.d), bases, i)
            cv[:, -1] = 1
            with np.errstate(divide="ignore", invalid="ignore"):
                vals = [-bv / cv, -av / cv, dv / cv,
                        np.ones_like(bv), np.zeros_like(bv),
                        np.zeros_like(bv),
                        np.zeros_like(bv), np.zeros_like(bv),
                        np.ones_like(bv)]
            ctx.ops(5, divs=3)
            ctx.sstore_multi(rows, i, vals)
            ctx.sync()

    with ctx.phase(PHASE_SCAN):
        stride = 1
        while stride < n:
            with ctx.step():
                ctx.set_active(np.arange(stride, n, dtype=np.int64))
                i = ctx.lanes
                j = i - stride
                A = ctx.sload_multi(rows, i)
                B = ctx.sload_multi(rows, j)
                with np.errstate(over="ignore", invalid="ignore"):
                    C = [A[3 * r + 0] * B[3 * 0 + col]
                         + A[3 * r + 1] * B[3 * 1 + col]
                         + A[3 * r + 2] * B[3 * 2 + col]
                         for r in range(3) for col in range(3)]
                ctx.ops(45)  # 27 multiplies + 18 adds, no structure used
                ctx.sync()
                ctx.sstore_multi(rows, i, C)
                ctx.sync()
            stride *= 2

    with ctx.phase(PHASE_EVAL):
        with ctx.step():
            one = np.array([0], dtype=np.int64)
            ctx.set_active(1)
            last = one + (n - 1)
            c00_last, c02_last = ctx.sload_multi((rows[0], rows[2]), last)
            with np.errstate(divide="ignore", invalid="ignore"):
                x0 = -c02_last / c00_last
            ctx.ops(2, divs=1)
            ctx.sstore(sx0, one, x0)
            ctx.sync()

            ctx.set_active(n)
            i = ctx.lanes
            x0b = ctx.sload(sx0, np.zeros(n, dtype=np.int64))
            prev = np.maximum(i - 1, 0)
            c00, c02 = ctx.sload_multi((rows[0], rows[2]), prev)
            with np.errstate(over="ignore", invalid="ignore"):
                xv = c00 * x0b + c02
            # Lane 0 outputs x_0 itself.  Select the column by lane id,
            # not array position: the two only coincide because the
            # active set is a prefix here, and the batched engine makes
            # that assumption easy to violate silently.
            xv[:, i == 0] = x0b[:, i == 0]
            ctx.ops(2)
            ctx.gstore(gmem.x, bases, i, xv)
            ctx.sync()
