"""Shared plumbing for the instrumented solver kernels.

All kernels use the paper's storage layout (§4): five flat global
arrays (a, b, c, d, x) holding every system contiguously, system 0
first.  Each block solves one system; global traffic happens only at
the start (stage the four inputs into shared memory) and the end
(write the solution back), so all five solvers have identical 5n-word
global footprints (Table 1's last column).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim import BlockContext, GlobalArray
from repro.gpusim import faults as _faults
from repro.solvers.systems import TridiagonalSystems

#: Phase names shared across kernels so analyses can line figures up.
PHASE_GLOBAL_LOAD = "global_load"
PHASE_GLOBAL_STORE = "global_store"


@dataclass
class GlobalSystemArrays:
    """The five flat global arrays plus layout metadata."""

    a: GlobalArray
    b: GlobalArray
    c: GlobalArray
    d: GlobalArray
    x: GlobalArray
    num_systems: int
    n: int

    @classmethod
    def from_systems(cls, systems: TridiagonalSystems) -> "GlobalSystemArrays":
        S, n = systems.shape
        gmem = cls(
            a=GlobalArray.from_array(systems.a.astype(np.float32)),
            b=GlobalArray.from_array(systems.b.astype(np.float32)),
            c=GlobalArray.from_array(systems.c.astype(np.float32)),
            d=GlobalArray.from_array(systems.d.astype(np.float32)),
            x=GlobalArray(S * n, dtype=np.float32),
            num_systems=S, n=n)
        # Host-to-device staging is the PCIe leg an active fault plan
        # may corrupt (detected upsets raise DataCorruptionError here).
        plan = _faults.active_plan()
        if plan is not None:
            plan.corrupt_transfer([gmem.a, gmem.b, gmem.c, gmem.d],
                                  direction="h2d")
        return gmem

    def trace_signature(self) -> tuple:
        """Structural identity for trace memoization (layout, not data:
        the kernels' access schedules depend only on ``(S, n)``)."""
        return ("gmem", self.num_systems, self.n,
                tuple(arr.trace_signature()
                      for arr in (self.a, self.b, self.c, self.d, self.x)))

    @property
    def block_bases(self) -> np.ndarray:
        """Word offset of each block's system slice."""
        return np.arange(self.num_systems, dtype=np.int64) * self.n

    def solution(self) -> np.ndarray:
        """The solution array reshaped to ``(num_systems, n)``.

        The device-to-host copy is the other PCIe leg an active fault
        plan may corrupt.
        """
        x = self.x.data.reshape(self.num_systems, self.n).copy()
        plan = _faults.active_plan()
        if plan is not None:
            plan.corrupt_transfer([x], direction="d2h")
        return x


def stage_inputs_to_shared(ctx: BlockContext, gmem: GlobalSystemArrays,
                           shared_arrays, elems_per_thread: int) -> None:
    """Load a, b, c, d from global into shared memory, coalesced.

    Threads cooperate: with ``t`` threads and ``n`` words per array,
    each thread moves ``elems_per_thread = n // t`` words per array at
    unit stride across the thread front (fully coalesced; the paper
    reports 48.5 GB/s for this pattern).
    """
    n = gmem.n
    bases = gmem.block_bases
    lanes = ctx.lanes
    t = lanes.size
    for g_arr, s_arr in zip((gmem.a, gmem.b, gmem.c, gmem.d), shared_arrays):
        for chunk in range(elems_per_thread):
            idx = lanes + chunk * t
            vals = ctx.gload(g_arr, bases, idx)
            ctx.sstore(s_arr, idx, vals)
    ctx.sync()
    assert elems_per_thread * t == n, "staging must cover the system"


def store_solution_from_shared(ctx: BlockContext, gmem: GlobalSystemArrays,
                               x_shared, elems_per_thread: int) -> None:
    """Write the solution from shared memory back to global, coalesced."""
    bases = gmem.block_bases
    lanes = ctx.lanes
    t = lanes.size
    for chunk in range(elems_per_thread):
        idx = lanes + chunk * t
        vals = ctx.sload(x_shared, idx)
        ctx.gstore(gmem.x, bases, idx, vals)


def log2_int(n: int) -> int:
    if n < 1 or n & (n - 1):
        raise ValueError(f"{n} is not a power of two")
    return n.bit_length() - 1
