"""Drivers: run the instrumented kernels on a batch of systems.

Each ``run_*`` function builds the five-array global layout, launches
the kernel on the simulated device, and returns ``(x, LaunchResult)``
-- the solution plus the full architectural trace.  Feed the trace to
:func:`repro.gpusim.gt200.gt200_cost_model` (or any
:class:`~repro.gpusim.CostModel`) for modeled timings.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro import telemetry
from repro.gpusim import GTX280, DeviceSpec, LaunchResult, launch
from repro.solvers.hybrid import default_intermediate_size
from repro.solvers.systems import TridiagonalSystems
from repro.solvers.validate import require_power_of_two

from .common import GlobalSystemArrays
from .cr_global_kernel import cr_global_kernel
from .cr_kernel import cr_kernel
from .cr_split_kernel import cr_split_kernel
from .hybrid_kernel import cr_pcr_kernel, cr_rd_kernel
from .pcr_kernel import pcr_kernel
from .pcr_pingpong_kernel import pcr_pingpong_kernel
from .rd_full_kernel import rd_full_kernel
from .rd_kernel import rd_kernel
from .thomas_kernel import run_thomas_batch


def _run(kernel: Callable, systems: TridiagonalSystems,
         threads_per_block: int, device: DeviceSpec,
         step_limit: int | None = None,
         **kernel_args) -> tuple[np.ndarray, LaunchResult]:
    require_power_of_two(systems.n, kernel.__name__)
    gmem = GlobalSystemArrays.from_systems(systems)
    result = launch(kernel, num_blocks=systems.num_systems,
                    threads_per_block=threads_per_block, device=device,
                    step_limit=step_limit, gmem=gmem, **kernel_args)
    return gmem.solution(), result


def run_cr(systems: TridiagonalSystems, device: DeviceSpec = GTX280,
           conflict_free_timing: bool = False,
           step_limit: int | None = None
           ) -> tuple[np.ndarray, LaunchResult]:
    """Cyclic reduction on the simulated device (n/2 threads/block)."""
    return _run(cr_kernel, systems, max(1, systems.n // 2), device,
                step_limit=step_limit,
                conflict_free_timing=conflict_free_timing)


def run_pcr(systems: TridiagonalSystems, device: DeviceSpec = GTX280,
            step_limit: int | None = None
            ) -> tuple[np.ndarray, LaunchResult]:
    """Parallel cyclic reduction (n threads/block)."""
    return _run(pcr_kernel, systems, systems.n, device,
                step_limit=step_limit)


def run_pcr_pingpong(systems: TridiagonalSystems,
                     device: DeviceSpec = GTX280,
                     step_limit: int | None = None
                     ) -> tuple[np.ndarray, LaunchResult]:
    """Double-buffered PCR (the alternative SS4 argues against)."""
    return _run(pcr_pingpong_kernel, systems, systems.n, device,
                step_limit=step_limit)


def run_rd(systems: TridiagonalSystems, device: DeviceSpec = GTX280,
           step_limit: int | None = None
           ) -> tuple[np.ndarray, LaunchResult]:
    """Recursive doubling (n threads/block)."""
    return _run(rd_kernel, systems, systems.n, device,
                step_limit=step_limit)


def run_rd_full(systems: TridiagonalSystems, device: DeviceSpec = GTX280,
                step_limit: int | None = None
                ) -> tuple[np.ndarray, LaunchResult]:
    """RD without the two-row storage trick (9 stored entries) -- the
    control experiment for SS4's optimization."""
    return _run(rd_full_kernel, systems, systems.n, device,
                step_limit=step_limit)


def run_cr_pcr(systems: TridiagonalSystems,
               intermediate_size: int | None = None,
               device: DeviceSpec = GTX280,
               step_limit: int | None = None
               ) -> tuple[np.ndarray, LaunchResult]:
    """Hybrid CR+PCR.  Defaults to the paper-derived switch point."""
    n = systems.n
    m = (default_intermediate_size(n, "pcr")
         if intermediate_size is None else int(intermediate_size))
    require_power_of_two(m, "run_cr_pcr intermediate size")
    threads = max(1, n // 2, m)
    return _run(cr_pcr_kernel, systems, threads, device,
                step_limit=step_limit, intermediate_size=m)


def run_cr_rd(systems: TridiagonalSystems,
              intermediate_size: int | None = None,
              device: DeviceSpec = GTX280,
              step_limit: int | None = None
              ) -> tuple[np.ndarray, LaunchResult]:
    """Hybrid CR+RD.  Defaults to the paper-derived switch point."""
    n = systems.n
    m = (default_intermediate_size(n, "rd")
         if intermediate_size is None else int(intermediate_size))
    require_power_of_two(m, "run_cr_rd intermediate size")
    threads = max(1, n // 2, m)
    return _run(cr_rd_kernel, systems, threads, device,
                step_limit=step_limit, intermediate_size=m)


def run_thomas(systems: TridiagonalSystems, device: DeviceSpec = GTX280,
               step_limit: int | None = None, layout: str = "sequential"
               ) -> tuple[np.ndarray, LaunchResult]:
    """Per-thread Thomas on the simulated device (one thread = one
    system, multi-block grid).  ``layout`` selects the sequential or
    interleaved batch arrangement; the latter coalesces.  The only
    registry kernel with no power-of-two requirement on ``n``."""
    return run_thomas_batch(systems, device=device, layout=layout,
                            step_limit=step_limit)


def run_cr_split(systems: TridiagonalSystems, device: DeviceSpec = GTX280,
                 step_limit: int | None = None
                 ) -> tuple[np.ndarray, LaunchResult]:
    """Split-storage (Goeddeke-style) conflict-free CR (footnote 1).

    Costs ~2x the in-place shared footprint in this layout, so it fits
    systems up to n = 256 on the GT200."""
    return _run(cr_split_kernel, systems, max(1, systems.n // 2), device,
                step_limit=step_limit)


def run_cr_global(systems: TridiagonalSystems, device: DeviceSpec = GTX280,
                  step_limit: int | None = None
                  ) -> tuple[np.ndarray, LaunchResult]:
    """Global-memory-only cyclic reduction (the paper's fallback for
    systems too large for shared memory, ~3x slower, paper SS4)."""
    return _run(cr_global_kernel, systems, max(1, systems.n // 2), device,
                step_limit=step_limit)


#: Kernel registry used by benchmarks and the analysis layer.  Values
#: are ``(runner, needs_intermediate_size)``.
KERNEL_RUNNERS = {
    "cr": (run_cr, False),
    "pcr": (run_pcr, False),
    "rd": (run_rd, False),
    "cr_pcr": (run_cr_pcr, True),
    "cr_rd": (run_cr_rd, True),
    "thomas": (run_thomas, False),
}

#: Kernels that accept a ``layout=`` argument (interleaved batches).
LAYOUT_AWARE_KERNELS = frozenset({"thomas"})


def run_kernel(name: str, systems: TridiagonalSystems,
               intermediate_size: int | None = None,
               device: DeviceSpec = GTX280,
               step_limit: int | None = None,
               layout: str | None = None,
               ) -> tuple[np.ndarray, LaunchResult]:
    """Run any of the registry solvers by name.

    ``layout`` (``"sequential"`` / ``"interleaved"``) is only accepted
    by layout-aware kernels; the fine-grained shared-memory kernels
    stage through shared memory and always read the sequential layout.
    """
    if name not in KERNEL_RUNNERS:
        raise ValueError(
            f"unknown kernel {name!r}; available: {sorted(KERNEL_RUNNERS)}")
    runner, takes_m = KERNEL_RUNNERS[name]
    if not takes_m and intermediate_size is not None:
        raise ValueError(f"kernel {name!r} takes no intermediate size")
    kwargs = {"device": device, "step_limit": step_limit}
    if takes_m:
        kwargs["intermediate_size"] = intermediate_size
    if layout is not None and layout != "sequential":
        if name not in LAYOUT_AWARE_KERNELS:
            raise ValueError(
                f"kernel {name!r} does not take layout {layout!r}; "
                f"layout-aware kernels: {sorted(LAYOUT_AWARE_KERNELS)}")
        kwargs["layout"] = layout
    if not telemetry.enabled():
        # The disabled fast path: no span object, no collector, just
        # the dispatch itself (covered by the no-op overhead test).
        return runner(systems, **kwargs)
    with telemetry.span("kernel.run", solver=name, n=systems.n,
                        num_systems=systems.num_systems,
                        device=device.name) as sp:
        x, result = runner(systems, **kwargs)
        sp.set_attr("threads_per_block", result.threads_per_block)
        sp.set_attr("shared_bytes", result.shared_bytes)
        return x, result
