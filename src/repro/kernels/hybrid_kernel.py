"""Instrumented hybrid CR+PCR and CR+RD kernels (§3, §5.3.4-5.3.5).

One block per system.  CR forward reduction runs until ``m`` unknowns
survive, the intermediate system is copied to fresh unit-stride shared
arrays ("the copy takes little time ... but makes the solver more
modular, because we can directly plug the PCR or RD solver into the
intermediate system", §4), the inner solver runs conflict-free, writes
its solutions straight into the full-size x array, and CR backward
substitution finishes.

Shared-memory footprints (words), which drive occupancy and reproduce
the paper's intermediate-size limits:

- CR+PCR: ``5n + 4m``  (four copied input arrays)
- CR+RD : ``5n + 6m + 1``  (six matrix-row arrays + the x_0 broadcast
  word) -- for n = 512 this excludes m = 256 and caps the hybrid at
  m = 128, "due to the limit of shared memory size" (§5.3.5).
"""

from __future__ import annotations

import numpy as np

from repro.gpusim import BlockContext, KernelError

from .common import (PHASE_GLOBAL_LOAD, PHASE_GLOBAL_STORE,
                     GlobalSystemArrays, log2_int, stage_inputs_to_shared,
                     store_solution_from_shared)
from .cr_kernel import backward_substitution_step, forward_reduction_step
from .pcr_kernel import pcr_reduction_step, pcr_solve_two_step
from .rd_kernel import rd_scan_step, rd_solution_evaluation

PHASE_CR_FORWARD = "cr_forward_reduction"
PHASE_COPY = "copy_intermediate"
PHASE_INNER_FORWARD = "inner_forward_reduction"   # PCR inner
PHASE_INNER_SOLVE_TWO = "inner_solve_two"         # PCR inner
PHASE_RD_COPY_SETUP = "rd_copy_setup"             # RD inner (copy+setup)
PHASE_RD_SCAN = "rd_scan"                         # RD inner
PHASE_RD_EVAL = "rd_solution_evaluation"          # RD inner
PHASE_CR_BACKWARD = "cr_backward_substitution"

PHASES_CR_PCR = (PHASE_GLOBAL_LOAD, PHASE_CR_FORWARD, PHASE_COPY,
                 PHASE_INNER_FORWARD, PHASE_INNER_SOLVE_TWO,
                 PHASE_CR_BACKWARD, PHASE_GLOBAL_STORE)
PHASES_CR_RD = (PHASE_GLOBAL_LOAD, PHASE_CR_FORWARD, PHASE_RD_COPY_SETUP,
                PHASE_RD_SCAN, PHASE_RD_EVAL, PHASE_CR_BACKWARD,
                PHASE_GLOBAL_STORE)


def _surviving_indices(n: int, m: int) -> np.ndarray:
    """Main-array indices of the m equations left after CR reduction."""
    stride = n // m
    return stride * (np.arange(m, dtype=np.int64) + 1) - 1


def cr_pcr_kernel(ctx: BlockContext, gmem: GlobalSystemArrays,
                  intermediate_size: int) -> None:
    """Hybrid CR+PCR (Fig 4 with a PCR inner solver)."""
    n, m = gmem.n, int(intermediate_size)
    levels_n, levels_m = log2_int(n), log2_int(m)
    if not 2 <= m <= n:
        raise KernelError(f"intermediate size {m} outside [2, {n}]")

    sa = ctx.shared(n)
    sb = ctx.shared(n)
    sc = ctx.shared(n)
    sd = ctx.shared(n)
    sx = ctx.shared(n)
    ia = ctx.shared(m)
    ib = ctx.shared(m)
    ic = ctx.shared(m)
    id_ = ctx.shared(m)

    with ctx.phase(PHASE_GLOBAL_LOAD):
        ctx.set_active(n // 2)
        stage_inputs_to_shared(ctx, gmem, (sa, sb, sc, sd),
                               elems_per_thread=2)

    cr_steps = levels_n - levels_m
    with ctx.phase(PHASE_CR_FORWARD):
        stride = 1
        for _ in range(cr_steps):
            stride *= 2
            with ctx.step():
                forward_reduction_step(ctx, sa, sb, sc, sd, n, stride,
                                       conflict_free_timing=False)

    surviving = _surviving_indices(n, m)
    with ctx.phase(PHASE_COPY):
        with ctx.step():
            ctx.set_active(m)
            k = ctx.lanes
            src = surviving[k]
            for s_main, s_int in ((sa, ia), (sb, ib), (sc, ic), (sd, id_)):
                vals = ctx.sload(s_main, src)   # strided gather
                ctx.sstore(s_int, k, vals)      # unit-stride store
            ctx.sync()

    with ctx.phase(PHASE_INNER_FORWARD):
        stride = 1
        for _ in range(levels_m - 1):
            with ctx.step():
                pcr_reduction_step(ctx, ia, ib, ic, id_, m, stride)
            stride *= 2

    with ctx.phase(PHASE_INNER_SOLVE_TWO):
        with ctx.step():
            # Solutions scatter straight back into the full-size x.
            pcr_solve_two_step(ctx, ia, ib, ic, id_, sx, m,
                               out_index=lambda k: surviving[k])

    with ctx.phase(PHASE_CR_BACKWARD):
        stride = n // m
        while stride > 1:
            with ctx.step():
                backward_substitution_step(ctx, sa, sb, sc, sd, sx, n,
                                           stride, conflict_free_timing=False)
            stride //= 2

    with ctx.phase(PHASE_GLOBAL_STORE):
        ctx.set_active(n // 2)
        store_solution_from_shared(ctx, gmem, sx, elems_per_thread=2)


def cr_rd_kernel(ctx: BlockContext, gmem: GlobalSystemArrays,
                 intermediate_size: int) -> None:
    """Hybrid CR+RD (Fig 4 with an RD inner solver)."""
    n, m = gmem.n, int(intermediate_size)
    levels_n, levels_m = log2_int(n), log2_int(m)
    if not 2 <= m <= n:
        raise KernelError(f"intermediate size {m} outside [2, {n}]")

    sa = ctx.shared(n)
    sb = ctx.shared(n)
    sc = ctx.shared(n)
    sd = ctx.shared(n)
    sx = ctx.shared(n)
    rows = tuple(ctx.shared(m) for _ in range(6))
    sx0 = ctx.shared(1)

    with ctx.phase(PHASE_GLOBAL_LOAD):
        ctx.set_active(n // 2)
        stage_inputs_to_shared(ctx, gmem, (sa, sb, sc, sd),
                               elems_per_thread=2)

    cr_steps = levels_n - levels_m
    with ctx.phase(PHASE_CR_FORWARD):
        stride = 1
        for _ in range(cr_steps):
            stride *= 2
            with ctx.step():
                forward_reduction_step(ctx, sa, sb, sc, sd, n, stride,
                                       conflict_free_timing=False)

    surviving = _surviving_indices(n, m)
    r00, r01, r02, r10, r11, r12 = rows
    with ctx.phase(PHASE_RD_COPY_SETUP):
        with ctx.step():
            # Fused copy + matrix setup: read the reduced equations at
            # their strided positions, build B_k, store unit-stride.
            ctx.set_active(m)
            k = ctx.lanes
            src = surviving[k]
            av, bv, cv, dv = ctx.sload_multi((sa, sb, sc, sd), src)
            cv[:, -1] = 1  # formal c for the last intermediate equation
            with np.errstate(divide="ignore", invalid="ignore"):
                m00 = -bv / cv
                m01 = -av / cv
                m02 = dv / cv
            ctx.ops(5, divs=3)
            ctx.sstore_multi((r00, r01, r02, r10, r11, r12), k,
                             (m00, m01, m02, np.ones_like(m00),
                              np.zeros_like(m00), np.zeros_like(m00)))
            ctx.sync()

    with ctx.phase(PHASE_RD_SCAN):
        stride = 1
        while stride < m:
            with ctx.step():
                rd_scan_step(ctx, rows, m, stride)
            stride *= 2

    def store_to_main_x(c: BlockContext, idx, values):
        c.sstore(sx, surviving[idx], values)  # strided scatter

    with ctx.phase(PHASE_RD_EVAL):
        with ctx.step():
            rd_solution_evaluation(ctx, rows, sx0, m, store_to_main_x)

    with ctx.phase(PHASE_CR_BACKWARD):
        stride = n // m
        while stride > 1:
            with ctx.step():
                backward_substitution_step(ctx, sa, sb, sc, sd, sx, n,
                                           stride, conflict_free_timing=False)
            stride //= 2

    with ctx.phase(PHASE_GLOBAL_STORE):
        ctx.set_active(n // 2)
        store_solution_from_shared(ctx, gmem, sx, elems_per_thread=2)
