"""Instrumented cyclic-reduction kernel (the paper's CR solver, §4).

One block per system, ``n/2`` threads.  Data lives in five in-place
shared arrays; the strided access pattern of forward reduction doubles
its shared-memory stride every step, producing the escalating bank
conflicts of Fig 9 (2-way, 4-way, ... 16-way).  Phases:

- ``global_load``       stage a, b, c, d into shared memory
- ``forward_reduction`` log2(n) - 1 strided elimination steps
- ``solve_two``         the final 2-unknown system, one thread
- ``backward_substitution`` log2(n) - 1 strided substitution steps
- ``global_store``      write x back

``conflict_free_timing=True`` reproduces the paper's Fig 9 comparison
run: identical algorithm and results, but cost accounting sees
stride-one addresses ("an incorrect algorithm ... for timing
comparison only").
"""

from __future__ import annotations

import numpy as np

from repro.gpusim import BlockContext

from .common import (PHASE_GLOBAL_LOAD, PHASE_GLOBAL_STORE,
                     GlobalSystemArrays, log2_int, stage_inputs_to_shared,
                     store_solution_from_shared)

PHASE_FORWARD = "forward_reduction"
PHASE_SOLVE_TWO = "solve_two"
PHASE_BACKWARD = "backward_substitution"

#: Phase order for reporting.
PHASES = (PHASE_GLOBAL_LOAD, PHASE_FORWARD, PHASE_SOLVE_TWO,
          PHASE_BACKWARD, PHASE_GLOBAL_STORE)


def forward_reduction_step(ctx: BlockContext, sa, sb, sc, sd, n: int,
                           stride: int, conflict_free_timing: bool) -> None:
    """One CR forward-reduction step at neighbour distance stride/2.

    Updates equations ``stride*(k+1) - 1``; 12 loads + 4 stores and
    12 arithmetic ops (2 divisions) per active thread -- the counts
    behind Table 1's 23n accesses / 17n ops.
    """
    active = n // stride
    ctx.set_active(active)
    tid = ctx.lanes
    i = stride * (tid + 1) - 1
    s = stride // 2
    left = i - s
    right = np.minimum(i + s, n - 1)  # clamp: c[n-1] == 0 kills the term
    cost = (lambda real: tid) if conflict_free_timing else (
        lambda real: None)   # None: let the access cost its own pattern

    av, bv, cv, dv = ctx.sload_multi((sa, sb, sc, sd), i, cost(i))
    al, bl, cl, dl = ctx.sload_multi((sa, sb, sc, sd), left, cost(left))
    ar, br, cr, dr = ctx.sload_multi((sa, sb, sc, sd), right, cost(right))

    with np.errstate(divide="ignore", invalid="ignore"):
        k1 = av / bl
        k2 = cv / br
    new_a = -al * k1
    new_b = bv - cl * k1 - ar * k2
    new_c = -cr * k2
    new_d = dv - dl * k1 - dr * k2
    ctx.ops(12, divs=2)

    ctx.sstore_multi((sa, sb, sc, sd), i, (new_a, new_b, new_c, new_d),
                     cost(i))
    ctx.sync()


def solve_two_unknowns_step(ctx: BlockContext, sa, sb, sc, sd, sx,
                            i1: int, i2: int) -> None:
    """Solve the 2x2 system at indices (i1, i2) with one thread."""
    ctx.set_active(1)
    one = np.array([0], dtype=np.int64)
    idx1 = one + i1
    idx2 = one + i2
    b1, c1, d1 = ctx.sload_multi((sb, sc, sd), idx1)
    a2, b2, d2 = ctx.sload_multi((sa, sb, sd), idx2)
    det = b1 * b2 - c1 * a2
    with np.errstate(divide="ignore", invalid="ignore"):
        x1 = (d1 * b2 - c1 * d2) / det
        x2 = (b1 * d2 - d1 * a2) / det
    ctx.ops(11, divs=2)
    ctx.sstore(sx, idx1, x1)
    ctx.sstore(sx, idx2, x2)
    ctx.sync()


def backward_substitution_step(ctx: BlockContext, sa, sb, sc, sd, sx,
                               n: int, stride: int,
                               conflict_free_timing: bool) -> None:
    """One CR backward-substitution step: solve the skipped unknowns at
    level ``stride`` from their already-solved neighbours.

    6 loads + 1 store and 5 ops (1 division) per active thread.
    """
    half = stride // 2
    active = n // stride
    ctx.set_active(active)
    tid = ctx.lanes
    i = half - 1 + stride * tid
    left = np.maximum(i - half, 0)  # clamp: a[leftmost] == 0 kills the term
    right = i + half
    cost = (lambda real: tid) if conflict_free_timing else (
        lambda real: None)   # None: let the access cost its own pattern

    av, bv, cv, dv = ctx.sload_multi((sa, sb, sc, sd), i, cost(i))
    xl = ctx.sload(sx, left, cost(left))
    xr = ctx.sload(sx, right, cost(right))
    with np.errstate(divide="ignore", invalid="ignore"):
        xv = (dv - av * xl - cv * xr) / bv
    ctx.ops(5, divs=1)
    ctx.sstore(sx, i, xv, cost(i))
    ctx.sync()


def cr_kernel(ctx: BlockContext, gmem: GlobalSystemArrays,
              conflict_free_timing: bool = False) -> None:
    """Cyclic reduction, one system per block (Fig 1 dataflow)."""
    n = gmem.n
    levels = log2_int(n)
    sa = ctx.shared(n)
    sb = ctx.shared(n)
    sc = ctx.shared(n)
    sd = ctx.shared(n)
    sx = ctx.shared(n)

    with ctx.phase(PHASE_GLOBAL_LOAD):
        ctx.set_active(n // 2)
        stage_inputs_to_shared(ctx, gmem, (sa, sb, sc, sd),
                               elems_per_thread=2)

    with ctx.phase(PHASE_FORWARD):
        stride = 1
        for _ in range(levels - 1):
            stride *= 2
            with ctx.step():
                forward_reduction_step(ctx, sa, sb, sc, sd, n, stride,
                                       conflict_free_timing)

    with ctx.phase(PHASE_SOLVE_TWO):
        with ctx.step():
            if n == 2:
                solve_two_unknowns_step(ctx, sa, sb, sc, sd, sx, 0, 1)
            else:
                solve_two_unknowns_step(ctx, sa, sb, sc, sd, sx,
                                        n // 2 - 1, n - 1)

    with ctx.phase(PHASE_BACKWARD):
        stride = n // 2
        while stride > 1:
            with ctx.step():
                backward_substitution_step(ctx, sa, sb, sc, sd, sx, n,
                                           stride, conflict_free_timing)
            stride //= 2

    with ctx.phase(PHASE_GLOBAL_STORE):
        ctx.set_active(n // 2)
        store_solution_from_shared(ctx, gmem, sx, elems_per_thread=2)
