"""The paper's GPU kernels, written against the gpusim kernel DSL.

Running a kernel yields both the float32 solution and an architectural
trace (bank conflicts, warp issues, per-step counters) that the
calibrated cost model turns into GTX 280 milliseconds.
"""

from .api import (KERNEL_RUNNERS, LAYOUT_AWARE_KERNELS, run_cr,
                  run_cr_global, run_cr_pcr, run_cr_rd, run_cr_split,
                  run_kernel, run_pcr, run_pcr_pingpong, run_rd,
                  run_rd_full, run_thomas)
from .common import GlobalSystemArrays
from .pcr_packed_kernel import run_pcr_packed
from .thomas_kernel import run_thomas_batch, run_thomas_per_thread

__all__ = ["KERNEL_RUNNERS", "LAYOUT_AWARE_KERNELS",
           "run_cr", "run_cr_global", "run_cr_pcr", "run_cr_rd",
           "run_cr_split", "run_kernel", "run_pcr", "run_pcr_pingpong", "run_rd",
           "run_rd_full", "run_pcr_packed", "run_thomas",
           "GlobalSystemArrays",
           "run_thomas_batch", "run_thomas_per_thread"]
