"""Packed PCR: several small systems per block.

The paper maps one system per block (§4), which at small system sizes
leaves blocks tiny (a 64-unknown PCR block is just two warps) and
leans entirely on block-level parallelism.  The standard production
refinement packs ``P`` systems into one block: lanes ``p*n .. p*n+n-1``
own system ``p``, every segment's accesses stay unit-stride (still
conflict-free), and blocks become full-width -- more resident warps
per SM, better latency hiding, fewer blocks to schedule.

This kernel exists to *measure* that refinement against the paper's
design point (``bench_ablation_packed_small_systems.py``); results are
bit-identical to plain PCR.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim import BlockContext, KernelError

from .common import GlobalSystemArrays, log2_int

PHASE_GLOBAL_LOAD = "global_load"
PHASE_FORWARD = "forward_reduction"
PHASE_SOLVE_TWO = "solve_two"
PHASE_GLOBAL_STORE = "global_store"


def pcr_packed_kernel(ctx: BlockContext, gmem: GlobalSystemArrays,
                      systems_per_block: int) -> None:
    """PCR with ``systems_per_block`` systems packed per block.

    The grid has ``num_systems / systems_per_block`` blocks; block g
    owns systems ``g*P .. g*P+P-1`` laid out contiguously in shared
    memory.  The simulator's block batch dimension runs over *blocks*,
    so the global bases address P systems per block.
    """
    n = gmem.n
    P = int(systems_per_block)
    levels = log2_int(n)
    width = P * n
    if width > ctx.threads_per_block:
        raise KernelError(
            f"{P} systems of {n} need {width} threads per block")

    sa = ctx.shared(width)
    sb = ctx.shared(width)
    sc = ctx.shared(width)
    sd = ctx.shared(width)
    sx = ctx.shared(width)

    num_blocks = gmem.num_systems // P
    bases = np.arange(num_blocks, dtype=np.int64) * width

    with ctx.phase(PHASE_GLOBAL_LOAD):
        ctx.set_active(width)
        i = ctx.lanes
        vals = ctx.gload_multi((gmem.a, gmem.b, gmem.c, gmem.d), bases, i)
        ctx.sstore_multi((sa, sb, sc, sd), i, vals)
        ctx.sync()

    # Per-lane segment geometry.
    lane = np.arange(width, dtype=np.int64)
    seg = lane // n
    pos = lane % n
    seg_base = seg * n

    with ctx.phase(PHASE_FORWARD):
        stride = 1
        for _ in range(levels - 1):
            with ctx.step():
                ctx.set_active(width)
                i = ctx.lanes
                left = seg_base + np.maximum(pos - stride, 0)
                right = seg_base + np.minimum(pos + stride, n - 1)
                av, bv, cv, dv = ctx.sload_multi((sa, sb, sc, sd), i)
                al, bl, cl, dl = ctx.sload_multi((sa, sb, sc, sd), left)
                ar, br, cr, dr = ctx.sload_multi((sa, sb, sc, sd), right)
                with np.errstate(divide="ignore", invalid="ignore"):
                    k1 = av / bl
                    k2 = cv / br
                ctx.ops(12, divs=2)
                ctx.sync()
                ctx.sstore_multi((sa, sb, sc, sd), i,
                                 (-al * k1,
                                  bv - cl * k1 - ar * k2,
                                  -cr * k2,
                                  dv - dl * k1 - dr * k2))
                ctx.sync()
            stride *= 2

    with ctx.phase(PHASE_SOLVE_TWO):
        with ctx.step():
            half = n // 2
            ctx.set_active(P * half)
            k = ctx.lanes
            s_of = k // half
            r_of = k % half
            i1 = s_of * n + r_of
            i2 = i1 + half
            b1, c1, d1 = ctx.sload_multi((sb, sc, sd), i1)
            a2, b2, d2 = ctx.sload_multi((sa, sb, sd), i2)
            det = b1 * b2 - c1 * a2
            with np.errstate(divide="ignore", invalid="ignore"):
                x1 = (d1 * b2 - c1 * d2) / det
                x2 = (b1 * d2 - d1 * a2) / det
            ctx.ops(11, divs=2)
            ctx.sstore(sx, i1, x1)
            ctx.sstore(sx, i2, x2)
            ctx.sync()

    with ctx.phase(PHASE_GLOBAL_STORE):
        ctx.set_active(width)
        i = ctx.lanes
        ctx.gstore(gmem.x, bases, i, ctx.sload(sx, i))


def run_pcr_packed(systems, systems_per_block: int, device=None):
    """Driver: pack ``systems_per_block`` systems per block.

    Returns ``(solution, LaunchResult)`` like the other runners."""
    from repro.gpusim import GTX280, launch
    from repro.solvers.validate import require_power_of_two

    device = device or GTX280
    S, n = systems.shape
    P = int(systems_per_block)
    require_power_of_two(n, "run_pcr_packed")
    if P < 1 or S % P:
        raise ValueError(
            f"batch of {S} not divisible into blocks of {P} systems")
    gmem = GlobalSystemArrays.from_systems(systems)
    result = launch(pcr_packed_kernel, num_blocks=S // P,
                    threads_per_block=P * n, device=device, gmem=gmem,
                    systems_per_block=P)
    return gmem.solution(), result
