"""Split-storage (Göddeke-style) cyclic reduction: bank-conflict-free
CR at the price of extra shared memory.

Paper footnote 1: "One method to avoid bank conflicts is to store the
even-indexed and odd-indexed equations of all reduced systems
separately, at the cost of extra shared memory usage and more
complicated addressing.  ... Göddeke and Strzodka proposed the same
technique, and showed that it achieves similar performance as our
hybrid CR+PCR solver, at the cost of 50% more shared memory usage."

Layout here: every reduction level gets its own contiguous segment per
array, internally split into an even half and an odd half (with an
8-word pad between the halves whenever the half size is a multiple of
the bank count, so the parity-split stores hit disjoint banks).  All
loads and stores become unit-stride or bank-disjoint -- the trace
shows conflict degree ~1 everywhere, against in-place CR's 16-way
peaks.

Trade-off made explicit: persisting every level costs ~2x the in-place
footprint in this straightforward layout (the footnote's 50% figure
relies on overlaying scratch that we keep separate for clarity), so
the kernel fits systems up to n = 256 on the GT200's 16 KiB.  The
ablation bench compares it against in-place CR and the hybrid at that
size.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim import BlockContext

from .common import (PHASE_GLOBAL_LOAD, PHASE_GLOBAL_STORE,
                     GlobalSystemArrays, log2_int)

PHASE_FORWARD = "forward_reduction"
PHASE_SOLVE_TWO = "solve_two"
PHASE_BACKWARD = "backward_substitution"


class _LevelLayout:
    """Per-level segments with padded even/odd halves.

    Level ell holds the full reduced system of size ``n / 2**ell``:
    even equations in ``[0, half)``, odd in ``[half + pad, ...)``.
    """

    def __init__(self, n: int, banks: int = 16, pad_words: int = 8):
        self.sizes = []
        m = n
        while m >= 2:
            self.sizes.append(m)
            m //= 2
        self.offsets = []
        self.pads = []
        off = 0
        for m in self.sizes:
            half = m // 2
            pad = pad_words if (half % banks == 0 and half >= banks) else 0
            self.offsets.append(off)
            self.pads.append(pad)
            off += m + pad
        self.total_words = off

    def even(self, level: int, k: np.ndarray) -> np.ndarray:
        return self.offsets[level] + k

    def odd(self, level: int, k: np.ndarray) -> np.ndarray:
        half = self.sizes[level] // 2
        return self.offsets[level] + half + self.pads[level] + k


def cr_split_kernel(ctx: BlockContext, gmem: GlobalSystemArrays) -> None:
    """Conflict-free CR with per-level even/odd split storage."""
    n = gmem.n
    levels = log2_int(n)  # level sizes n, n/2, ..., 2
    lay = _LevelLayout(n, banks=ctx.device.shared_mem_banks)
    sa = ctx.shared(lay.total_words)
    sb = ctx.shared(lay.total_words)
    sc = ctx.shared(lay.total_words)
    sd = ctx.shared(lay.total_words)
    sx = ctx.shared(lay.total_words)
    bases = gmem.block_bases

    # ------------------------------------------------------------------
    # Stage the inputs directly into level-0 split layout: lane i loads
    # global element i and stores it to even/odd by parity -- the
    # arithmetic-select addressing of the footnote ("more complicated
    # addressing"), no divergence.
    with ctx.phase(PHASE_GLOBAL_LOAD):
        ctx.set_active(n // 2)
        lanes = ctx.lanes
        for chunk in (0, 1):
            i = lanes + chunk * (n // 2)
            dest = np.where(i % 2 == 0, lay.even(0, i // 2),
                            lay.odd(0, i // 2))
            vals = ctx.gload_multi((gmem.a, gmem.b, gmem.c, gmem.d),
                                   bases, i)
            ctx.sstore_multi((sa, sb, sc, sd), dest, vals)
        ctx.sync()

    # ------------------------------------------------------------------
    # Forward reduction: level ell -> ell+1.  Equation k of the new
    # level is the update of odd equation k of level ell, with
    # neighbours even[k] and even[k+1] (clamped; c == 0 kills the
    # overhang).  All reads unit-stride within their halves.
    with ctx.phase(PHASE_FORWARD):
        for ell in range(levels - 1):
            m_next = lay.sizes[ell + 1]
            with ctx.step():
                ctx.set_active(m_next)
                k = ctx.lanes
                half = lay.sizes[ell] // 2
                right = np.minimum(k + 1, half - 1)

                own = lay.odd(ell, k)
                av, bv, cv, dv = ctx.sload_multi((sa, sb, sc, sd), own)
                lft = lay.even(ell, k)
                al, bl, cl, dl = ctx.sload_multi((sa, sb, sc, sd), lft)
                rgt = lay.even(ell, right)
                ar, br, cr, dr = ctx.sload_multi((sa, sb, sc, sd), rgt)

                with np.errstate(divide="ignore", invalid="ignore"):
                    k1 = av / bl
                    k2 = cv / br
                new_a = -al * k1
                new_b = bv - cl * k1 - ar * k2
                new_c = -cr * k2
                new_d = dv - dl * k1 - dr * k2
                ctx.ops(12, divs=2)
                ctx.sync()

                # Parity-split store into the next level's segment.
                dest = np.where(k % 2 == 0, lay.even(ell + 1, k // 2),
                                lay.odd(ell + 1, k // 2))
                ctx.sstore_multi((sa, sb, sc, sd), dest,
                                 (new_a, new_b, new_c, new_d))
                ctx.sync()

    # ------------------------------------------------------------------
    # Final 2-unknown system lives at the last level's (even, odd).
    last = levels - 1
    with ctx.phase(PHASE_SOLVE_TWO):
        with ctx.step():
            ctx.set_active(1)
            one = np.array([0], dtype=np.int64)
            i1 = lay.even(last, one)
            i2 = lay.odd(last, one)
            b1, c1, d1 = ctx.sload_multi((sb, sc, sd), i1)
            a2, b2, d2 = ctx.sload_multi((sa, sb, sd), i2)
            det = b1 * b2 - c1 * a2
            with np.errstate(divide="ignore", invalid="ignore"):
                x1 = (d1 * b2 - c1 * d2) / det
                x2 = (b1 * d2 - d1 * a2) / det
            ctx.ops(11, divs=2)
            ctx.sstore(sx, i1, x1)
            ctx.sstore(sx, i2, x2)
            ctx.sync()

    # ------------------------------------------------------------------
    # Backward: level ell's odd x values equal level ell+1's x; the
    # even ones substitute into the even equations:
    #   x_even[k] = (d - a * x_odd[k-1] - c * x_odd[k]) / b
    # (x_odd here = level ell+1 x in its split layout order mapped back:
    # level ell+1 element k corresponds to level ell odd equation k.)
    with ctx.phase(PHASE_BACKWARD):
        for ell in range(levels - 2, -1, -1):
            m = lay.sizes[ell]
            half = m // 2
            with ctx.step():
                # Copy level ell+1 x into level ell's odd slots.
                ctx.set_active(half)
                k = ctx.lanes
                src = np.where(k % 2 == 0,
                               lay.even(ell + 1, k // 2),
                               lay.odd(ell + 1, k // 2))
                xv_odd = ctx.sload(sx, src)
                ctx.sstore(sx, lay.odd(ell, k), xv_odd)
                ctx.sync()

                left = np.maximum(k - 1, 0)  # a == 0 kills the overhang
                ev = lay.even(ell, k)
                av, bv, cv, dv = ctx.sload_multi((sa, sb, sc, sd), ev)
                xl = ctx.sload(sx, lay.odd(ell, left))
                xr = xv_odd
                with np.errstate(divide="ignore", invalid="ignore"):
                    xe = (dv - av * xl - cv * xr) / bv
                ctx.ops(5, divs=1)
                ctx.sstore(sx, lay.even(ell, k), xe)
                ctx.sync()

    # ------------------------------------------------------------------
    # Write back: de-split level-0 x to the natural order.
    with ctx.phase(PHASE_GLOBAL_STORE):
        ctx.set_active(n // 2)
        lanes = ctx.lanes
        for chunk in (0, 1):
            i = lanes + chunk * (n // 2)
            src = np.where(i % 2 == 0, lay.even(0, i // 2),
                           lay.odd(0, i // 2))
            vals = ctx.sload(sx, src)
            ctx.gstore(gmem.x, bases, i, vals)


def split_footprint_words(n: int, banks: int = 16) -> int:
    """Shared words per array for the split layout (for documentation
    and occupancy maths)."""
    return _LevelLayout(n, banks=banks).total_words
