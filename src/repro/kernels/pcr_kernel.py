"""Instrumented parallel-cyclic-reduction kernel (§4, Fig 2 dataflow).

One block per system, ``n`` threads, all active in every step -- PCR's
defining property.  All accesses are unit-stride across the thread
front, so the kernel is bank-conflict free (§5.3.2); this is visible
in the trace as ``conflict_degree == 1.0``.

Phases:

- ``global_load``       stage a, b, c, d into shared memory
- ``forward_reduction`` log2(n) - 1 all-threads reduction steps
- ``solve_two``         n/2 independent 2-unknown systems
- ``global_store``      write x back
"""

from __future__ import annotations

import numpy as np

from repro.gpusim import BlockContext

from .common import (PHASE_GLOBAL_LOAD, PHASE_GLOBAL_STORE,
                     GlobalSystemArrays, log2_int, stage_inputs_to_shared,
                     store_solution_from_shared)

PHASE_FORWARD = "forward_reduction"
PHASE_SOLVE_TWO = "solve_two"

PHASES = (PHASE_GLOBAL_LOAD, PHASE_FORWARD, PHASE_SOLVE_TWO,
          PHASE_GLOBAL_STORE)


def pcr_reduction_step(ctx: BlockContext, sa, sb, sc, sd, n: int,
                       stride: int) -> None:
    """One PCR step: every equation eliminates against both neighbours
    at distance ``stride``.  In-place with a barrier between the
    gather and the scatter (the kernel's read-sync-write idiom).
    """
    ctx.set_active(n)
    i = ctx.lanes
    left = np.maximum(i - stride, 0)
    right = np.minimum(i + stride, n - 1)

    av, bv, cv, dv = ctx.sload_multi((sa, sb, sc, sd), i)
    al, bl, cl, dl = ctx.sload_multi((sa, sb, sc, sd), left)
    ar, br, cr, dr = ctx.sload_multi((sa, sb, sc, sd), right)

    with np.errstate(divide="ignore", invalid="ignore"):
        k1 = av / bl
        k2 = cv / br
    new_a = -al * k1
    new_b = bv - cl * k1 - ar * k2
    new_c = -cr * k2
    new_d = dv - dl * k1 - dr * k2
    ctx.ops(12, divs=2)
    ctx.sync()  # all reads complete before any in-place write

    ctx.sstore_multi((sa, sb, sc, sd), i, (new_a, new_b, new_c, new_d))
    ctx.sync()


def pcr_solve_two_step(ctx: BlockContext, sa, sb, sc, sd, sx, n: int,
                       out_index=None) -> None:
    """Solve the n/2 independent 2-unknown systems (pairs i, i + n/2).

    ``out_index`` optionally remaps where solutions are stored (the
    hybrid kernel scatters them back into the full-size x array).
    """
    half = n // 2
    ctx.set_active(half)
    i1 = ctx.lanes
    i2 = i1 + half
    b1, c1, d1 = ctx.sload_multi((sb, sc, sd), i1)
    a2, b2, d2 = ctx.sload_multi((sa, sb, sd), i2)
    det = b1 * b2 - c1 * a2
    with np.errstate(divide="ignore", invalid="ignore"):
        x1 = (d1 * b2 - c1 * d2) / det
        x2 = (b1 * d2 - d1 * a2) / det
    ctx.ops(11, divs=2)
    if out_index is None:
        o1, o2 = i1, i2
    else:
        o1, o2 = out_index(i1), out_index(i2)
    ctx.sstore(sx, o1, x1)
    ctx.sstore(sx, o2, x2)
    ctx.sync()


def pcr_kernel(ctx: BlockContext, gmem: GlobalSystemArrays) -> None:
    """Parallel cyclic reduction, one system per block."""
    n = gmem.n
    levels = log2_int(n)
    sa = ctx.shared(n)
    sb = ctx.shared(n)
    sc = ctx.shared(n)
    sd = ctx.shared(n)
    sx = ctx.shared(n)

    with ctx.phase(PHASE_GLOBAL_LOAD):
        ctx.set_active(n)
        stage_inputs_to_shared(ctx, gmem, (sa, sb, sc, sd),
                               elems_per_thread=1)

    with ctx.phase(PHASE_FORWARD):
        stride = 1
        for _ in range(levels - 1):
            with ctx.step():
                pcr_reduction_step(ctx, sa, sb, sc, sd, n, stride)
            stride *= 2

    with ctx.phase(PHASE_SOLVE_TWO):
        with ctx.step():
            pcr_solve_two_step(ctx, sa, sb, sc, sd, sx, n)

    with ctx.phase(PHASE_GLOBAL_STORE):
        ctx.set_active(n)
        store_solution_from_shared(ctx, gmem, sx, elems_per_thread=1)
