"""Block-tridiagonal solvers (the paper's future-work generalisation)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.numerics.generators import diagonally_dominant_fluid
from repro.solvers.block import (BlockTridiagonalSystems,
                                 block_cyclic_reduction, block_pcr,
                                 block_thomas, solve_block)
from repro.solvers.thomas import thomas_batched


def random_block_dominant(S, n, k, seed=0, dtype=np.float64):
    """Block-diagonally-dominant batch: B = (||A|| + ||C|| + margin) I
    + small random, guaranteeing invertibility and stability."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(-0.5, 0.5, (S, n, k, k))
    c = rng.uniform(-0.5, 0.5, (S, n, k, k))
    b = rng.uniform(-0.2, 0.2, (S, n, k, k))
    eye = np.eye(k)
    norm_a = np.linalg.norm(a, axis=(2, 3))
    norm_c = np.linalg.norm(c, axis=(2, 3))
    b += (norm_a + norm_c + 1.5)[..., None, None] * eye
    d = rng.uniform(-1, 1, (S, n, k))
    return BlockTridiagonalSystems(a.astype(dtype), b.astype(dtype),
                                   c.astype(dtype), d.astype(dtype))


def dense_reference(systems):
    dense = systems.to_dense()
    rhs = systems.d.reshape(systems.num_systems, -1)
    x = np.linalg.solve(dense, rhs[..., None])[..., 0]
    return x.reshape(systems.d.shape)


class TestContainer:
    def test_shapes(self):
        s = random_block_dominant(3, 8, 2)
        assert (s.num_systems, s.n, s.k) == (3, 8, 2)

    def test_bad_shapes(self):
        with pytest.raises(ValueError, match="S, n, k, k"):
            BlockTridiagonalSystems(np.zeros((2, 4, 2, 3)),
                                    np.zeros((2, 4, 2, 3)),
                                    np.zeros((2, 4, 2, 3)),
                                    np.zeros((2, 4, 2)))
        with pytest.raises(ValueError, match="d must be"):
            BlockTridiagonalSystems(np.zeros((2, 4, 2, 2)),
                                    np.zeros((2, 4, 2, 2)),
                                    np.zeros((2, 4, 2, 2)),
                                    np.zeros((2, 4, 3)))

    def test_matvec_matches_dense(self):
        s = random_block_dominant(2, 4, 3, seed=1)
        x = np.random.default_rng(2).uniform(-1, 1, s.d.shape)
        via_dense = np.einsum(
            "sij,sj->si", s.to_dense(),
            x.reshape(2, -1)).reshape(x.shape)
        np.testing.assert_allclose(s.matvec(x), via_dense, rtol=1e-12)

    def test_out_of_band_blocks_zeroed(self):
        s = random_block_dominant(1, 4, 2)
        assert np.all(s.a[:, 0] == 0)
        assert np.all(s.c[:, -1] == 0)


class TestBlockThomas:
    @pytest.mark.parametrize("n,k", [(4, 1), (8, 2), (16, 3), (5, 2)])
    def test_matches_dense_solve(self, n, k):
        s = random_block_dominant(3, n, k, seed=n * 10 + k)
        x = block_thomas(s)
        np.testing.assert_allclose(x, dense_reference(s), rtol=1e-9,
                                   atol=1e-11)

    def test_k1_matches_scalar_thomas(self):
        scalar = diagonally_dominant_fluid(4, 16, seed=0, dtype=np.float64)
        lifted = BlockTridiagonalSystems.from_scalar(scalar)
        x_block = block_thomas(lifted)[..., 0]
        np.testing.assert_allclose(x_block, thomas_batched(scalar),
                                   rtol=1e-12)


class TestBlockCR:
    @pytest.mark.parametrize("n,k", [(2, 2), (4, 2), (8, 3), (32, 2)])
    def test_matches_block_thomas(self, n, k):
        s = random_block_dominant(3, n, k, seed=n + k)
        np.testing.assert_allclose(block_cyclic_reduction(s),
                                   block_thomas(s), rtol=1e-8, atol=1e-10)

    def test_k1_matches_scalar_cr(self):
        from repro.solvers.cr import cyclic_reduction
        scalar = diagonally_dominant_fluid(4, 32, seed=1, dtype=np.float64)
        lifted = BlockTridiagonalSystems.from_scalar(scalar)
        x_block = block_cyclic_reduction(lifted)[..., 0]
        np.testing.assert_allclose(x_block, cyclic_reduction(scalar),
                                   rtol=1e-9, atol=1e-11)

    def test_non_power_of_two_rejected(self):
        s = random_block_dominant(1, 6, 2)
        with pytest.raises(ValueError, match="power-of-two"):
            block_cyclic_reduction(s)


class TestBlockPCR:
    @pytest.mark.parametrize("n,k", [(2, 2), (8, 2), (16, 3)])
    def test_matches_block_thomas(self, n, k):
        s = random_block_dominant(3, n, k, seed=n * 3 + k)
        np.testing.assert_allclose(block_pcr(s), block_thomas(s),
                                   rtol=1e-8, atol=1e-10)

    def test_k1_matches_scalar_pcr(self):
        from repro.solvers.pcr import parallel_cyclic_reduction
        scalar = diagonally_dominant_fluid(4, 16, seed=2, dtype=np.float64)
        lifted = BlockTridiagonalSystems.from_scalar(scalar)
        x_block = block_pcr(lifted)[..., 0]
        np.testing.assert_allclose(x_block,
                                   parallel_cyclic_reduction(scalar),
                                   rtol=1e-9, atol=1e-11)


class TestSolveBlockAPI:
    def test_unbatched(self):
        s = random_block_dominant(1, 8, 2, seed=5)
        x = solve_block(s.a[0], s.b[0], s.c[0], s.d[0], method="cr")
        assert x.shape == (8, 2)
        np.testing.assert_allclose(x, block_thomas(s)[0], rtol=1e-8)

    def test_unknown_method(self):
        s = random_block_dominant(1, 4, 2)
        with pytest.raises(ValueError, match="unknown block method"):
            solve_block(s.a, s.b, s.c, s.d, method="rd")

    def test_residual_small(self):
        s = random_block_dominant(4, 16, 2, seed=6)
        for method in ("thomas", "cr", "pcr"):
            x = solve_block(s.a, s.b, s.c, s.d, method=method)
            assert s.residual(x).max() < 1e-10, method


@settings(max_examples=20, deadline=None)
@given(n=st.sampled_from([2, 4, 8]), k=st.integers(min_value=1, max_value=4),
       seed=st.integers(min_value=0, max_value=10_000))
def test_property_block_cr_pcr_thomas_agree(n, k, seed):
    s = random_block_dominant(2, n, k, seed=seed)
    ref = block_thomas(s)
    np.testing.assert_allclose(block_cyclic_reduction(s), ref,
                               rtol=1e-7, atol=1e-9)
    np.testing.assert_allclose(block_pcr(s), ref, rtol=1e-7, atol=1e-9)
