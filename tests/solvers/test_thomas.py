"""Thomas algorithm vs SciPy's banded solver, single vs batched."""

import numpy as np
import pytest
from scipy.linalg import solve_banded

from repro.numerics.generators import diagonally_dominant_fluid
from repro.solvers.thomas import (operation_count, step_count,
                                  thomas_batched, thomas_single)


def scipy_reference(systems):
    out = np.empty(systems.shape, dtype=np.float64)
    for s in range(systems.num_systems):
        ab = np.zeros((3, systems.n))
        ab[0, 1:] = systems.c[s, :-1]
        ab[1] = systems.b[s]
        ab[2, :-1] = systems.a[s, 1:]
        out[s] = solve_banded((1, 1), ab, systems.d[s])
    return out


class TestSingle:
    def test_matches_scipy(self):
        s = diagonally_dominant_fluid(1, 17, seed=0, dtype=np.float64)
        x = thomas_single(s.a[0], s.b[0], s.c[0], s.d[0])
        np.testing.assert_allclose(x, scipy_reference(s)[0], rtol=1e-10)

    def test_two_unknowns(self):
        # [[2, 1], [1, 3]] x = [3, 4] -> x = [1, 1]
        x = thomas_single(np.array([0.0, 1.0]), np.array([2.0, 3.0]),
                          np.array([1.0, 0.0]), np.array([3.0, 4.0]))
        np.testing.assert_allclose(x, [1.0, 1.0], rtol=1e-12)

    def test_float32_stays_float32(self):
        s = diagonally_dominant_fluid(1, 8, seed=1)
        x = thomas_single(s.a[0], s.b[0], s.c[0], s.d[0])
        assert x.dtype == np.float32

    def test_non_power_of_two_sizes(self):
        for n in (3, 5, 13, 100):
            s = diagonally_dominant_fluid(1, n, seed=n, dtype=np.float64)
            x = thomas_single(s.a[0], s.b[0], s.c[0], s.d[0])
            assert s.residual(x[None])[0] < 1e-10


class TestBatched:
    def test_matches_single(self, dominant_batch):
        xb = thomas_batched(dominant_batch)
        for s in range(dominant_batch.num_systems):
            xs = thomas_single(dominant_batch.a[s], dominant_batch.b[s],
                               dominant_batch.c[s], dominant_batch.d[s])
            np.testing.assert_array_equal(xb[s], xs)

    def test_matches_scipy_float64(self):
        s = diagonally_dominant_fluid(5, 33, seed=2, dtype=np.float64)
        np.testing.assert_allclose(thomas_batched(s), scipy_reference(s),
                                   rtol=1e-10)

    def test_small_residual_float32(self, dominant_batch):
        x = thomas_batched(dominant_batch)
        assert dominant_batch.residual(x).max() < 1e-4

    def test_independent_systems(self, dominant_batch):
        """Solving a sub-batch gives identical answers (no coupling)."""
        x_all = thomas_batched(dominant_batch)
        sub = type(dominant_batch)(dominant_batch.a[3:5],
                                   dominant_batch.b[3:5],
                                   dominant_batch.c[3:5],
                                   dominant_batch.d[3:5])
        np.testing.assert_array_equal(thomas_batched(sub), x_all[3:5])


class TestComplexity:
    def test_paper_counts(self):
        assert operation_count(512) == 8 * 512
        assert step_count(512) == 1024
