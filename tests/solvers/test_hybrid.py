"""Hybrid CR+PCR / CR+RD: endpoint equivalences and correctness."""

import numpy as np
import pytest

from repro.numerics.generators import close_values, diagonally_dominant_fluid
from repro.solvers.cr import cyclic_reduction
from repro.solvers.hybrid import (cr_pcr, cr_rd, default_intermediate_size,
                                  hybrid_solve, operation_count, step_count)
from repro.solvers.pcr import parallel_cyclic_reduction
from repro.solvers.rd import recursive_doubling
from repro.solvers.thomas import thomas_batched


class TestCorrectness:
    @pytest.mark.parametrize("n,m", [(8, 2), (8, 4), (8, 8),
                                     (64, 2), (64, 8), (64, 32), (64, 64)])
    def test_cr_pcr_matches_thomas(self, n, m):
        s = diagonally_dominant_fluid(4, n, seed=n + m, dtype=np.float64)
        x = cr_pcr(s, intermediate_size=m)
        np.testing.assert_allclose(x, thomas_batched(s), rtol=1e-8,
                                   atol=1e-10)

    @pytest.mark.parametrize("n,m", [(64, 4), (64, 16), (64, 64)])
    def test_cr_rd_matches_thomas_close_values(self, n, m):
        s = close_values(4, n, seed=n + m, dtype=np.float64)
        x = cr_rd(s, intermediate_size=m)
        np.testing.assert_allclose(x, thomas_batched(s), rtol=1e-5,
                                   atol=1e-7)

    def test_cr_rd_overflows_on_dominant_like_rd(self):
        """Fig 18 shows *both* RD and CR+RD overflow on diagonally
        dominant systems: CR forward reduction amplifies the dominance
        ratio (that is exactly why CR is stable), so the intermediate
        system fed to RD has astronomically large |b/c| and the scan
        blows up even for small intermediate sizes."""
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            s = diagonally_dominant_fluid(4, 256, seed=9, dtype=np.float32)
            x = cr_rd(s, intermediate_size=128)
        assert not np.isfinite(x).all()

    def test_cr_amplifies_dominance_ratio(self):
        """The mechanism behind the previous test: each CR level grows
        the reduced system's dominance ratio |b| / (|a|+|c|)."""
        from repro.solvers.cr import forward_reduce_to
        s = diagonally_dominant_fluid(2, 64, seed=10, dtype=np.float64)
        w = s.copy()
        ratio_before = np.min(np.abs(s.b) / (np.abs(s.a) + np.abs(s.c)
                                             + 1e-300))
        idx = forward_reduce_to((w.a, w.b, w.c, w.d), 64, 8)
        off = np.abs(w.a[:, idx]) + np.abs(w.c[:, idx])
        ratio_after = np.min(np.abs(w.b[:, idx]) / (off + 1e-300))
        assert ratio_after > ratio_before ** 2

    def test_default_intermediate_sizes(self):
        assert default_intermediate_size(512, "pcr") == 256
        assert default_intermediate_size(512, "rd") == 128
        assert default_intermediate_size(4, "rd") == 2

    def test_float32(self, dominant_batch):
        x = cr_pcr(dominant_batch)
        assert x.dtype == np.float32
        assert dominant_batch.residual(x).max() < 1e-4


class TestEndpoints:
    def test_m_equals_2_matches_cr(self, dominant_batch):
        """m = 2: the inner solver sees the same 2-unknown system CR's
        middle stage solves, so results agree to rounding."""
        x_h = hybrid_solve(dominant_batch, "pcr", intermediate_size=2)
        x_cr = cyclic_reduction(dominant_batch)
        np.testing.assert_allclose(x_h, x_cr, rtol=1e-5, atol=1e-6)

    def test_m_equals_n_matches_pcr(self, dominant_batch):
        x_h = hybrid_solve(dominant_batch, "pcr",
                           intermediate_size=dominant_batch.n)
        x_pcr = parallel_cyclic_reduction(dominant_batch)
        np.testing.assert_array_equal(x_h, x_pcr)

    def test_m_equals_n_matches_rd(self, close_batch):
        x_h = hybrid_solve(close_batch, "rd",
                           intermediate_size=close_batch.n)
        x_rd = recursive_doubling(close_batch)
        np.testing.assert_array_equal(x_h, x_rd)


class TestValidation:
    def test_unknown_inner_rejected(self, dominant_small):
        with pytest.raises(ValueError, match="inner"):
            hybrid_solve(dominant_small, "thomas")

    def test_bad_intermediate_size(self, dominant_small):
        with pytest.raises(ValueError):
            hybrid_solve(dominant_small, "pcr", intermediate_size=3)
        with pytest.raises(ValueError):
            hybrid_solve(dominant_small, "pcr",
                         intermediate_size=dominant_small.n * 2)

    def test_non_power_of_two_rejected(self):
        s = diagonally_dominant_fluid(1, 20, seed=0)
        with pytest.raises(ValueError, match="power-of-two"):
            cr_pcr(s)


class TestComplexity:
    def test_table1_rows(self):
        # CR+PCR at n=512, m=256
        assert operation_count(512, 256, "pcr") == 17 * 256 + 12 * 256 * 8
        assert step_count(512, 256, "pcr") == 2 * 9 - 8 - 1
        # CR+RD at n=512, m=128
        assert operation_count(512, 128, "rd") == 17 * 384 + 20 * 128 * 7
        assert step_count(512, 128, "rd") == 2 * 9 - 7 + 1

    def test_hybrid_does_less_work_than_pcr(self):
        """Table 1's motivation: CR+PCR's op count is below PCR's for
        any m < n."""
        from repro.solvers.pcr import operation_count as pcr_ops
        n = 512
        for m in (2, 8, 64, 256):
            assert operation_count(n, m, "pcr") < pcr_ops(n)
