"""Reusable factorizations (Thomas LU, PCR reduction plans)."""

import numpy as np
import pytest

from repro.numerics.generators import diagonally_dominant_fluid
from repro.solvers.factorize import (PCRPlan, ThomasFactorization,
                                     pcr_factorize, thomas_factorize)
from repro.solvers.pcr import parallel_cyclic_reduction
from repro.solvers.systems import TridiagonalSystems
from repro.solvers.thomas import thomas_batched


@pytest.fixture(scope="module")
def batch():
    return diagonally_dominant_fluid(6, 32, seed=0, dtype=np.float64)


class TestThomasFactorization:
    def test_solve_matches_thomas(self, batch):
        F = thomas_factorize(batch)
        np.testing.assert_array_equal(F.solve(batch.d),
                                      thomas_batched(batch))

    def test_reuse_with_new_rhs(self, batch):
        F = thomas_factorize(batch)
        rng = np.random.default_rng(1)
        for _ in range(3):
            d = rng.uniform(-1, 1, batch.shape)
            s2 = TridiagonalSystems(batch.a, batch.b, batch.c, d)
            np.testing.assert_allclose(F.solve(d), thomas_batched(s2),
                                       rtol=1e-13)

    def test_multiple_rhs_stack(self, batch):
        F = thomas_factorize(batch)
        rng = np.random.default_rng(2)
        D = rng.uniform(-1, 1, (*batch.shape, 3))
        X = F.solve(D)
        assert X.shape == D.shape
        for k in range(3):
            s2 = TridiagonalSystems(batch.a, batch.b, batch.c, D[..., k])
            np.testing.assert_allclose(X[..., k], thomas_batched(s2),
                                       rtol=1e-13)

    def test_rhs_shape_mismatch(self, batch):
        F = thomas_factorize(batch)
        with pytest.raises(ValueError, match="rhs shape"):
            F.solve(np.zeros((2, 8)))

    def test_determinant_diagnostics(self):
        # diag(2) of size 4: det = 16.
        s = TridiagonalSystems(np.zeros((1, 4)), np.full((1, 4), 2.0),
                               np.zeros((1, 4)), np.ones((1, 4)))
        sign, logabs = thomas_factorize(s).determinant_sign_and_logabs()
        assert sign[0] == 1.0
        assert logabs[0] == pytest.approx(np.log(16.0))


class TestPCRPlan:
    def test_solve_matches_pcr(self, batch):
        plan = pcr_factorize(batch)
        np.testing.assert_allclose(plan.solve(batch.d),
                                   parallel_cyclic_reduction(batch),
                                   rtol=1e-12, atol=1e-13)

    def test_reuse_with_new_rhs(self, batch):
        plan = pcr_factorize(batch)
        rng = np.random.default_rng(3)
        d = rng.uniform(-1, 1, batch.shape)
        s2 = TridiagonalSystems(batch.a, batch.b, batch.c, d)
        np.testing.assert_allclose(plan.solve(d),
                                   parallel_cyclic_reduction(s2),
                                   rtol=1e-12, atol=1e-13)

    def test_requires_power_of_two(self):
        s = diagonally_dominant_fluid(1, 12, seed=4, dtype=np.float64)
        with pytest.raises(ValueError):
            pcr_factorize(s)

    def test_level_count(self, batch):
        plan = pcr_factorize(batch)
        assert len(plan.levels) == int(np.log2(batch.n)) - 1
