"""Periodic tridiagonal systems (Sherman-Morrison reduction)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.solvers.periodic import (PeriodicTridiagonalSystems,
                                    solve_periodic)


def random_periodic(S, n, seed=0, dtype=np.float64):
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1, 1, (S, n)).astype(dtype)
    c = rng.uniform(-1, 1, (S, n)).astype(dtype)
    b = (np.abs(a) + np.abs(c) + rng.uniform(0.5, 2.0, (S, n))).astype(dtype)
    d = rng.uniform(-1, 1, (S, n)).astype(dtype)
    return a, b, c, d


class TestContainer:
    def test_corners_preserved(self):
        a, b, c, d = random_periodic(2, 8)
        s = PeriodicTridiagonalSystems(a, b, c, d)
        assert np.all(s.a[:, 0] == a[:, 0])      # not zeroed!
        assert np.all(s.c[:, -1] == c[:, -1])

    def test_matvec_matches_dense(self):
        a, b, c, d = random_periodic(2, 6, seed=1)
        s = PeriodicTridiagonalSystems(a, b, c, d)
        x = np.random.default_rng(2).uniform(-1, 1, (2, 6))
        via_dense = np.einsum("sij,sj->si", s.to_dense(), x)
        np.testing.assert_allclose(s.matvec(x), via_dense, rtol=1e-13)

    def test_too_small(self):
        with pytest.raises(ValueError, match="n >= 3"):
            PeriodicTridiagonalSystems(np.zeros((1, 2)), np.ones((1, 2)),
                                       np.zeros((1, 2)), np.zeros((1, 2)))


class TestSolve:
    @pytest.mark.parametrize("method", ["thomas", "gep", "qr", "cr",
                                        "pcr", "cr_pcr"])
    def test_matches_dense(self, method):
        a, b, c, d = random_periodic(3, 16, seed=3)
        s = PeriodicTridiagonalSystems(a, b, c, d)
        x = solve_periodic(a, b, c, d, method=method)
        ref = np.linalg.solve(s.to_dense(), s.d[..., None])[..., 0]
        np.testing.assert_allclose(x, ref, rtol=1e-8, atol=1e-10)

    def test_single_system(self):
        a, b, c, d = random_periodic(1, 12, seed=4)
        x = solve_periodic(a[0], b[0], c[0], d[0])
        assert x.shape == (12,)
        s = PeriodicTridiagonalSystems(a, b, c, d)
        assert s.residual(x[None])[0] < 1e-10

    def test_non_power_of_two(self):
        a, b, c, d = random_periodic(2, 13, seed=5)
        x = solve_periodic(a, b, c, d, method="cr")  # pads internally
        s = PeriodicTridiagonalSystems(a, b, c, d)
        assert s.residual(x).max() < 1e-8

    def test_zero_corners_reduce_to_open_system(self):
        """With zero corner entries the periodic solve equals the
        ordinary tridiagonal solve."""
        from repro.solvers.thomas import thomas_batched
        from repro.solvers.systems import TridiagonalSystems
        a, b, c, d = random_periodic(2, 16, seed=6)
        a[:, 0] = 0
        c[:, -1] = 0
        x = solve_periodic(a, b, c, d, method="thomas")
        ref = thomas_batched(TridiagonalSystems(a, b, c, d))
        np.testing.assert_allclose(x, ref, rtol=1e-10, atol=1e-12)

    def test_circulant_analytic(self):
        """Constant circulant (b, c, a) = (4, 1, 1): solving against
        e_0's column gives the known symmetric decay."""
        n = 8
        a = np.ones((1, n))
        b = np.full((1, n), 4.0)
        c = np.ones((1, n))
        d = np.zeros((1, n))
        d[0, 0] = 1.0
        x = solve_periodic(a, b, c, d)[0]
        # Circulant symmetry: x[k] == x[n-k]
        np.testing.assert_allclose(x[1:], x[1:][::-1], rtol=1e-10)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=3, max_value=24),
       seed=st.integers(min_value=0, max_value=10**6))
def test_property_matches_dense(n, seed):
    a, b, c, d = random_periodic(2, n, seed=seed)
    s = PeriodicTridiagonalSystems(a, b, c, d)
    x = solve_periodic(a, b, c, d)
    ref = np.linalg.solve(s.to_dense(), s.d[..., None])[..., 0]
    np.testing.assert_allclose(x, ref, rtol=1e-7, atol=1e-9)
