"""Parallel cyclic reduction: correctness and structural properties."""

import numpy as np
import pytest

from repro.numerics.generators import diagonally_dominant_fluid
from repro.solvers.pcr import (operation_count, parallel_cyclic_reduction,
                               pcr_on_arrays, pcr_reduction_step, step_count)
from repro.solvers.thomas import thomas_batched


class TestCorrectness:
    @pytest.mark.parametrize("n", [2, 4, 8, 32, 128])
    def test_matches_thomas(self, n):
        s = diagonally_dominant_fluid(4, n, seed=n, dtype=np.float64)
        np.testing.assert_allclose(parallel_cyclic_reduction(s),
                                   thomas_batched(s), rtol=1e-8, atol=1e-10)

    def test_float32_residual(self, dominant_batch):
        x = parallel_cyclic_reduction(dominant_batch)
        assert dominant_batch.residual(x).max() < 1e-4

    def test_non_power_of_two_rejected(self):
        s = diagonally_dominant_fluid(1, 12, seed=0)
        with pytest.raises(ValueError, match="power-of-two"):
            parallel_cyclic_reduction(s)

    def test_matches_cr(self, dominant_batch):
        from repro.solvers.cr import cyclic_reduction
        x_pcr = parallel_cyclic_reduction(dominant_batch)
        x_cr = cyclic_reduction(dominant_batch)
        np.testing.assert_allclose(x_pcr, x_cr, rtol=1e-3, atol=1e-4)


class TestReductionStep:
    def test_splits_into_decoupled_subsystems(self):
        """After one PCR step with stride 1, even- and odd-indexed
        equations no longer reference each other (Fig 2: the system
        splits into two half-size systems)."""
        s = diagonally_dominant_fluid(2, 16, seed=1, dtype=np.float64)
        w = s.copy()
        pcr_reduction_step(w.a, w.b, w.c, w.d, 1, 16)
        # Each equation i now couples i-2 and i+2: solve the even and
        # odd subsystems independently and compare with the truth.
        ref = thomas_batched(s)
        for parity in (0, 1):
            idx = np.arange(parity, 16, 2)
            sub = type(s)(w.a[:, idx], w.b[:, idx], w.c[:, idx],
                          w.d[:, idx])
            xs = thomas_batched(sub)
            np.testing.assert_allclose(xs, ref[:, idx], rtol=1e-8,
                                       atol=1e-10)

    def test_invariant_zero_boundaries_grow(self):
        """After k steps, a[i] == 0 for i < 2^k and c[i] == 0 for
        i >= n - 2^k (the index-clamping invariant)."""
        s = diagonally_dominant_fluid(2, 32, seed=2, dtype=np.float64)
        w = s.copy()
        stride = 1
        for k in range(1, 5):
            pcr_reduction_step(w.a, w.b, w.c, w.d, stride, 32)
            stride *= 2
            assert np.all(w.a[:, :stride] == 0), f"step {k}"
            assert np.all(w.c[:, -stride:] == 0), f"step {k}"


class TestOnArrays:
    def test_matches_wrapper(self, dominant_small):
        w = dominant_small.copy()
        x = pcr_on_arrays(w.a, w.b, w.c, w.d)
        np.testing.assert_array_equal(
            x, parallel_cyclic_reduction(dominant_small))

    def test_two_unknown_case(self):
        a = np.array([[0.0, 1.0]]); b = np.array([[2.0, 3.0]])
        c = np.array([[1.0, 0.0]]); d = np.array([[3.0, 4.0]])
        x = pcr_on_arrays(a, b, c, d)
        np.testing.assert_allclose(x, [[1.0, 1.0]])


class TestComplexity:
    def test_paper_counts(self):
        assert operation_count(512) == 12 * 512 * 9
        assert step_count(512) == 9
