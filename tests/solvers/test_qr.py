"""Givens-QR tridiagonal solver (pivoting-free stability)."""

import numpy as np
import pytest

from repro.numerics.generators import (close_values,
                                       diagonally_dominant_fluid,
                                       ill_conditioned)
from repro.solvers.gauss import gep_batched
from repro.solvers.qr import (givens_qr_batched, givens_qr_single,
                              orthogonality_certificate)
from repro.solvers.thomas import thomas_batched


class TestSingle:
    def test_matches_thomas_on_dominant(self):
        s = diagonally_dominant_fluid(1, 23, seed=0, dtype=np.float64)
        x = givens_qr_single(s.a[0], s.b[0], s.c[0], s.d[0])
        np.testing.assert_allclose(x, thomas_batched(s)[0], rtol=1e-10)

    def test_tiny_pivot_no_breakdown(self):
        """Zero leading pivot kills Thomas; QR sails through."""
        n = 6
        a = np.zeros(n); b = np.ones(n); c = np.zeros(n); d = np.ones(n)
        b[0] = 0.0
        a[1:] = 1.0
        c[:-1] = 1.0
        from repro.solvers.systems import TridiagonalSystems
        s = TridiagonalSystems.from_single(a, b, c, d)
        x = givens_qr_single(a, b, c, d)
        assert s.residual(np.atleast_2d(x))[0] < 1e-12

    def test_two_unknowns(self):
        x = givens_qr_single(np.array([0.0, 1.0]), np.array([2.0, 3.0]),
                             np.array([1.0, 0.0]), np.array([3.0, 4.0]))
        np.testing.assert_allclose(x, [1.0, 1.0], rtol=1e-13)


class TestBatched:
    @pytest.mark.parametrize("gen,seed", [
        (diagonally_dominant_fluid, 0), (close_values, 1),
        (ill_conditioned, 2)])
    def test_matches_single(self, gen, seed):
        s = gen(5, 17, seed=seed, dtype=np.float64)
        xb = givens_qr_batched(s)
        for i in range(5):
            xs = givens_qr_single(s.a[i], s.b[i], s.c[i], s.d[i])
            np.testing.assert_allclose(xb[i], xs, rtol=1e-10, atol=1e-12)

    def test_accuracy_on_ill_conditioned_matches_gep(self):
        s = ill_conditioned(16, 64, seed=3, dtype=np.float64)
        r_qr = s.residual(givens_qr_batched(s))
        r_gep = s.residual(gep_batched(s))
        assert np.median(r_qr) < 100 * max(np.median(r_gep), 1e-16)
        assert r_qr.max() < 1e-10

    def test_float32(self):
        s = close_values(4, 32, seed=4)
        x = givens_qr_batched(s)
        assert x.dtype == np.float32
        assert s.residual(x).max() < 1e-3

    def test_via_public_api(self):
        from repro.solvers.api import solve
        s = close_values(3, 19, seed=5, dtype=np.float64)
        x = solve(s.a, s.b, s.c, s.d, method="qr")
        assert s.residual(x).max() < 1e-11

    def test_certificate_small(self):
        s = close_values(4, 32, seed=6, dtype=np.float64)
        cert = orthogonality_certificate(s, givens_qr_batched(s))
        assert cert.max() < 1e-12
