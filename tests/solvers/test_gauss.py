"""Gaussian elimination with partial pivoting (GEP) vs LAPACK gtsv."""

import numpy as np
import pytest

from repro.numerics.generators import (close_values,
                                       diagonally_dominant_fluid,
                                       ill_conditioned)
from repro.solvers.gauss import gep_batched, gep_single, lapack_gtsv
from repro.solvers.systems import TridiagonalSystems


class TestSingle:
    def test_dominant_system(self):
        s = diagonally_dominant_fluid(1, 19, seed=0, dtype=np.float64)
        x = gep_single(s.a[0], s.b[0], s.c[0], s.d[0])
        assert s.residual(x[None])[0] < 1e-12

    def test_requires_pivoting(self):
        """A matrix whose leading pivot is tiny: plain GE loses badly,
        GEP stays accurate."""
        n = 8
        a = np.zeros(n); b = np.ones(n); c = np.zeros(n); d = np.ones(n)
        b[0] = 1e-12
        a[1:] = 1.0
        c[:-1] = 1.0
        s = TridiagonalSystems.from_single(a, b, c, d)
        x = gep_single(a, b, c, d)
        assert s.residual(np.atleast_2d(x))[0] < 1e-9

    def test_zero_pivot_raises(self):
        # Both the diagonal and the sub-diagonal are 0 -> singular.
        with pytest.raises(ZeroDivisionError):
            gep_single(np.zeros(3), np.zeros(3), np.ones(3), np.ones(3))

    def test_matches_lapack_on_close_values(self):
        s = close_values(1, 16, seed=3, dtype=np.float64)
        x = gep_single(s.a[0], s.b[0], s.c[0], s.d[0])
        x_ref = lapack_gtsv(s)[0]
        np.testing.assert_allclose(x, x_ref, rtol=1e-8)


class TestBatched:
    @pytest.mark.parametrize("gen,seed", [
        (diagonally_dominant_fluid, 0),
        (close_values, 1),
        (ill_conditioned, 2),
    ])
    def test_matches_single(self, gen, seed):
        s = gen(6, 24, seed=seed, dtype=np.float64)
        xb = gep_batched(s)
        for i in range(s.num_systems):
            xs = gep_single(s.a[i], s.b[i], s.c[i], s.d[i])
            np.testing.assert_allclose(xb[i], xs, rtol=1e-10, atol=1e-12)

    def test_matches_lapack(self):
        s = close_values(5, 32, seed=4, dtype=np.float64)
        np.testing.assert_allclose(gep_batched(s), lapack_gtsv(s),
                                   rtol=1e-8, atol=1e-10)

    def test_float32(self):
        s = diagonally_dominant_fluid(4, 32, seed=5)
        x = gep_batched(s)
        assert x.dtype == np.float32
        assert s.residual(x).max() < 1e-4

    def test_best_accuracy_on_ill_conditioned(self):
        """GEP beats no-pivoting Thomas on matrices with tiny pivots
        (the Fig 18 'GEP always has the best accuracy' claim)."""
        from repro.solvers.thomas import thomas_batched
        s = ill_conditioned(8, 32, seed=6, dtype=np.float32)
        r_gep = s.residual(gep_batched(s))
        x_ge = thomas_batched(s)
        finite = np.all(np.isfinite(x_ge), axis=1)
        r_ge = np.where(finite, s.residual(np.nan_to_num(x_ge)), np.inf)
        assert np.median(r_gep) <= np.median(r_ge)
