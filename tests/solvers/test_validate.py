"""Validation and padding helpers."""

import numpy as np
import pytest

from repro.numerics.generators import diagonally_dominant_fluid
from repro.solvers.thomas import thomas_batched
from repro.solvers.validate import (InputValidationError, is_power_of_two,
                                    next_power_of_two, pad_to_power_of_two,
                                    require_power_of_two, validate_finite,
                                    validate_nonsingular_hint)


class TestPowerOfTwo:
    def test_is_power_of_two(self):
        assert all(is_power_of_two(v) for v in (1, 2, 4, 8, 1024))
        assert not any(is_power_of_two(v) for v in (0, 3, 6, 12, 1000, -4))

    def test_next_power_of_two(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(2) == 2
        assert next_power_of_two(3) == 4
        assert next_power_of_two(512) == 512
        assert next_power_of_two(513) == 1024

    def test_next_power_of_two_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)

    def test_require_raises_with_context(self):
        with pytest.raises(ValueError, match="my_solver"):
            require_power_of_two(12, "my_solver")


class TestPadding:
    def test_pad_preserves_solution(self):
        s = diagonally_dominant_fluid(3, 13, seed=0, dtype=np.float64)
        padded, n = pad_to_power_of_two(s)
        assert padded.n == 16
        assert n == 13
        x_pad = thomas_batched(padded)
        x_ref = thomas_batched(s)
        np.testing.assert_allclose(x_pad[:, :13], x_ref, rtol=1e-10)

    def test_pad_rows_are_identity(self):
        s = diagonally_dominant_fluid(1, 5, seed=1)
        padded, _ = pad_to_power_of_two(s)
        assert np.all(padded.b[:, 5:] == 1)
        assert np.all(padded.d[:, 5:] == 0)
        assert np.all(padded.a[:, 5:] == 0)
        # Decoupled from the original block:
        assert np.all(padded.c[:, 4] == 0)

    def test_already_power_of_two_is_noop(self):
        s = diagonally_dominant_fluid(1, 16, seed=2)
        padded, n = pad_to_power_of_two(s)
        assert padded is s
        assert n == 16


class TestValidateFinite:
    def test_clean_batch_passes(self, dominant_small):
        validate_finite(dominant_small)     # no raise

    def test_nan_names_array_and_system(self, dominant_small):
        s = dominant_small.copy()
        s.d[3, 7] = np.nan
        with pytest.raises(InputValidationError,
                           match=r"'d'.*system index 3"):
            validate_finite(s)

    def test_inf_caught_too(self, dominant_small):
        s = dominant_small.copy()
        s.a[1, 0] = np.inf
        with pytest.raises(InputValidationError, match="'a'"):
            validate_finite(s)

    def test_counts_all_bad_entries(self, dominant_small):
        s = dominant_small.copy()
        s.b[2, 4] = np.nan
        s.b[5, 9] = np.inf
        with pytest.raises(InputValidationError,
                           match=r"2 entries across 2 system"):
            validate_finite(s)

    def test_message_names_caller_and_escape_hatch(self, dominant_small):
        s = dominant_small.copy()
        s.c[0, 0] = np.nan
        with pytest.raises(InputValidationError,
                           match=r"my_api:.*check_finite=False"):
            validate_finite(s, who="my_api")

    def test_is_a_value_error(self):
        # Existing `except ValueError` call sites must keep working.
        assert issubclass(InputValidationError, ValueError)


class TestHints:
    def test_clean_system_no_warnings(self, dominant_small):
        assert validate_nonsingular_hint(dominant_small) == []

    def test_zero_diagonal_flagged(self, dominant_small):
        s = dominant_small.copy()
        s.b[0, 3] = 0.0
        msgs = validate_nonsingular_hint(s)
        assert any("zero on the main diagonal" in m for m in msgs)

    def test_non_dominant_flagged(self, close_batch):
        msgs = validate_nonsingular_hint(close_batch)
        assert any("diagonally dominant" in m for m in msgs)

    def test_zero_super_diagonal_flagged(self, dominant_small):
        s = dominant_small.copy()
        s.c[0, 5] = 0.0
        msgs = validate_nonsingular_hint(s)
        assert any("recursive doubling" in m for m in msgs)
