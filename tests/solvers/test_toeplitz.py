"""Spectral (DST) Toeplitz tridiagonal solver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.numerics.generators import diagonally_dominant_fluid, toeplitz_spd
from repro.solvers.thomas import thomas_batched
from repro.solvers.toeplitz import (is_symmetric_toeplitz,
                                    solve_toeplitz_systems,
                                    toeplitz_eigenvalues, toeplitz_solve)


class TestStructureCheck:
    def test_accepts_toeplitz(self):
        s = toeplitz_spd(3, 16, seed=0, dtype=np.float64)
        assert is_symmetric_toeplitz(s).all()

    def test_rejects_general(self):
        s = diagonally_dominant_fluid(3, 16, seed=1, dtype=np.float64)
        assert not is_symmetric_toeplitz(s).any()

    def test_front_end_raises_on_general(self):
        s = diagonally_dominant_fluid(1, 16, seed=2, dtype=np.float64)
        with pytest.raises(ValueError, match="not symmetric Toeplitz"):
            solve_toeplitz_systems(s)


class TestSpectralSolve:
    @pytest.mark.parametrize("n", [2, 5, 16, 31, 128])
    def test_matches_thomas(self, n):
        s = toeplitz_spd(4, n, seed=n, dtype=np.float64)
        np.testing.assert_allclose(solve_toeplitz_systems(s),
                                   thomas_batched(s), rtol=1e-9,
                                   atol=1e-11)

    def test_poisson_stencil(self):
        rng = np.random.default_rng(3)
        d = rng.standard_normal((2, 64))
        x = toeplitz_solve(d, 2.0, -1.0)
        # Verify by applying the operator.
        r = 2.0 * x
        r[:, 1:] += -1.0 * x[:, :-1]
        r[:, :-1] += -1.0 * x[:, 1:]
        np.testing.assert_allclose(r, d, rtol=1e-9, atol=1e-11)

    def test_single_rhs_shape(self):
        x = toeplitz_solve(np.ones(8), 4.0, 1.0)
        assert x.shape == (8,)

    def test_eigenvalues_analytic(self):
        lam = toeplitz_eigenvalues(7, 2.0, -1.0)
        k = np.arange(1, 8)
        np.testing.assert_allclose(
            lam, 2.0 - 2.0 * np.cos(np.pi * k / 8), rtol=1e-13)

    def test_singular_detected(self):
        # diag = -2*off*cos(pi/(n+1)) makes mode 1 singular.
        n = 7
        diag = 2.0 * np.cos(np.pi / (n + 1))
        with pytest.raises(np.linalg.LinAlgError, match="singular"):
            toeplitz_solve(np.ones(n), diag, -1.0)

    def test_mixed_stencil_batch_grouped(self):
        """A batch mixing two stencils solves each group correctly."""
        from repro.solvers.systems import TridiagonalSystems
        rng = np.random.default_rng(4)
        S, n = 6, 32
        diags = np.where(np.arange(S) % 2 == 0, 4.0, 3.0)
        a = np.full((S, n), -1.0)
        c = np.full((S, n), -1.0)
        b = np.tile(diags[:, None], (1, n))
        d = rng.standard_normal((S, n))
        s = TridiagonalSystems(a, b, c, d)
        np.testing.assert_allclose(solve_toeplitz_systems(s),
                                   thomas_batched(s), rtol=1e-9,
                                   atol=1e-11)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=2, max_value=64),
       diag=st.floats(min_value=2.2, max_value=6.0),
       seed=st.integers(min_value=0, max_value=10**6))
def test_property_independent_oracle(n, diag, seed):
    """The spectral solver shares no code with Thomas: agreement is a
    strong cross-check of both."""
    rng = np.random.default_rng(seed)
    d = rng.standard_normal((2, n))
    x = toeplitz_solve(d, diag, -1.0)
    from repro.solvers.systems import TridiagonalSystems
    s = TridiagonalSystems(np.full((2, n), -1.0), np.full((2, n), diag),
                           np.full((2, n), -1.0), d)
    np.testing.assert_allclose(x, thomas_batched(s), rtol=1e-8,
                               atol=1e-10)
