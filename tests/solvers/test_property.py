"""Property-based tests (hypothesis) on the solver core.

Strategy: generate random diagonally dominant batches (where every
no-pivoting algorithm is provably stable) and check solver invariants
against the Thomas reference, plus structural properties of the scan
algebra and padding.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.solvers.cr import cyclic_reduction
from repro.solvers.gauss import gep_batched
from repro.solvers.hybrid import hybrid_solve
from repro.solvers.pcr import parallel_cyclic_reduction
from repro.solvers.rd import combine, inclusive_scan, recursive_doubling
from repro.solvers.systems import TridiagonalSystems
from repro.solvers.thomas import thomas_batched
from repro.solvers.validate import pad_to_power_of_two

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

sizes = st.sampled_from([2, 4, 8, 16, 32])
batch_sizes = st.integers(min_value=1, max_value=5)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def dominant_batch(S: int, n: int, seed: int) -> TridiagonalSystems:
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1, 1, (S, n))
    c = rng.uniform(-1, 1, (S, n))
    bump = rng.uniform(0.5, 2.0, (S, n))
    b = np.abs(a) + np.abs(c) + bump
    d = rng.uniform(-1, 1, (S, n))
    return TridiagonalSystems(a, b, c, d)


# ---------------------------------------------------------------------------
# Solver equivalence properties
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(n=sizes, S=batch_sizes, seed=seeds)
def test_cr_matches_thomas_on_dominant(n, S, seed):
    s = dominant_batch(S, n, seed)
    np.testing.assert_allclose(cyclic_reduction(s), thomas_batched(s),
                               rtol=1e-7, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(n=sizes, S=batch_sizes, seed=seeds)
def test_pcr_matches_thomas_on_dominant(n, S, seed):
    s = dominant_batch(S, n, seed)
    np.testing.assert_allclose(parallel_cyclic_reduction(s),
                               thomas_batched(s), rtol=1e-7, atol=1e-8)


@settings(max_examples=30, deadline=None)
@given(n=st.sampled_from([4, 8, 16]), S=batch_sizes, seed=seeds,
       m_exp=st.integers(min_value=1, max_value=4))
def test_hybrid_matches_thomas_for_any_switch_point(n, S, seed, m_exp):
    m = min(2 ** m_exp, n)
    s = dominant_batch(S, n, seed)
    x = hybrid_solve(s, "pcr", intermediate_size=m)
    np.testing.assert_allclose(x, thomas_batched(s), rtol=1e-7, atol=1e-8)


@settings(max_examples=25, deadline=None)
@given(n=st.sampled_from([2, 4, 8]), S=batch_sizes, seed=seeds)
def test_rd_matches_thomas_on_small_dominant(n, S, seed):
    """RD is stable for small dominant systems (growth bounded)."""
    s = dominant_batch(S, n, seed)
    np.testing.assert_allclose(recursive_doubling(s), thomas_batched(s),
                               rtol=1e-5, atol=1e-6)


@settings(max_examples=30, deadline=None)
@given(n=sizes, S=batch_sizes, seed=seeds)
def test_gep_residual_small(n, S, seed):
    s = dominant_batch(S, n, seed)
    x = gep_batched(s)
    assert s.residual(x).max() < 1e-8 * n


# ---------------------------------------------------------------------------
# Structural properties
# ---------------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(S=batch_sizes, seed=seeds)
def test_batch_permutation_equivariance(S, seed):
    """Permuting systems within a batch permutes the solutions --
    no cross-system coupling anywhere in the implementation."""
    s = dominant_batch(S, 16, seed)
    perm = np.random.default_rng(seed).permutation(S)
    s_perm = TridiagonalSystems(s.a[perm], s.b[perm], s.c[perm], s.d[perm])
    np.testing.assert_array_equal(cyclic_reduction(s)[perm],
                                  cyclic_reduction(s_perm))


@settings(max_examples=30, deadline=None)
@given(S=batch_sizes, seed=seeds, scale=st.floats(min_value=0.25,
                                                  max_value=8.0))
def test_rhs_linearity(S, seed, scale):
    """x(alpha * d) == alpha * x(d): the solve is linear in d."""
    s = dominant_batch(S, 8, seed)
    x1 = parallel_cyclic_reduction(s)
    s2 = TridiagonalSystems(s.a, s.b, s.c, scale * s.d)
    x2 = parallel_cyclic_reduction(s2)
    np.testing.assert_allclose(x2, scale * x1, rtol=1e-7, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(seed=seeds, n=st.integers(min_value=2, max_value=40))
def test_padding_preserves_solution(seed, n):
    s = dominant_batch(2, n, seed)
    padded, orig = pad_to_power_of_two(s)
    assert orig == n
    x_ref = thomas_batched(s)
    x_pad = thomas_batched(padded)[:, :n]
    np.testing.assert_allclose(x_pad, x_ref, rtol=1e-9, atol=1e-11)


# ---------------------------------------------------------------------------
# Scan algebra properties
# ---------------------------------------------------------------------------

mat_entries = st.floats(min_value=-2.0, max_value=2.0,
                        allow_nan=False, allow_infinity=False)


@settings(max_examples=40, deadline=None)
@given(seed=seeds, n=st.sampled_from([2, 4, 8, 16]))
def test_scan_equals_serial_product(seed, n):
    rng = np.random.default_rng(seed)
    mats = rng.uniform(-1, 1, (1, n, 6))
    scanned = inclusive_scan(mats)
    serial = mats[:, 0]
    for i in range(1, n):
        serial = combine(mats[:, i], serial)
    np.testing.assert_allclose(scanned[:, -1], serial, rtol=1e-9,
                               atol=1e-11)


@settings(max_examples=40, deadline=None)
@given(seed=seeds)
def test_combine_associativity(seed):
    rng = np.random.default_rng(seed)
    a, b, c = (rng.uniform(-1.5, 1.5, (1, 4, 6)) for _ in range(3))
    np.testing.assert_allclose(combine(combine(a, b), c),
                               combine(a, combine(b, c)),
                               rtol=1e-9, atol=1e-10)


# ---------------------------------------------------------------------------
# Residual sanity across dtypes
# ---------------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(seed=seeds, n=st.sampled_from([8, 16, 32]))
def test_float32_residual_bounded(seed, n):
    s = dominant_batch(3, n, seed).astype(np.float32)
    for solver in (cyclic_reduction, parallel_cyclic_reduction):
        x = solver(s)
        # float32 eps * condition-ish bound, generous
        assert s.residual(x).max() < 1e-3
