"""Two-way Gaussian elimination (Ho & Johnsson, the paper's ref [15])."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.numerics.generators import (close_values,
                                       diagonally_dominant_fluid)
from repro.solvers.thomas import thomas_batched
from repro.solvers.twoway import (parallelism, serial_step_count,
                                  two_way_elimination)


class TestCorrectness:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 16, 33, 64, 100])
    def test_matches_thomas(self, n):
        s = diagonally_dominant_fluid(4, n, seed=n, dtype=np.float64)
        np.testing.assert_allclose(two_way_elimination(s),
                                   thomas_batched(s), rtol=1e-12,
                                   atol=1e-13)

    def test_close_values(self):
        s = close_values(4, 32, seed=1, dtype=np.float64)
        x = two_way_elimination(s)
        assert s.residual(x).max() < 1e-9

    def test_float32(self):
        s = diagonally_dominant_fluid(4, 64, seed=2)
        x = two_way_elimination(s)
        assert x.dtype == np.float32
        assert s.residual(x).max() < 1e-3


class TestStructure:
    def test_half_the_serial_steps(self):
        from repro.solvers.thomas import step_count
        assert serial_step_count(512) == step_count(512) // 2

    def test_two_fronts(self):
        assert parallelism() == 2


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=2, max_value=40),
       seed=st.integers(min_value=0, max_value=10**6))
def test_property_matches_thomas(n, seed):
    s = diagonally_dominant_fluid(2, n, seed=seed, dtype=np.float64)
    np.testing.assert_allclose(two_way_elimination(s), thomas_batched(s),
                               rtol=1e-10, atol=1e-12)
