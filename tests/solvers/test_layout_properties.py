"""Property tests for the batch layout conversions (hypothesis).

The layout module is the host-side half of the interleaved-batch
feature: every conversion must be an exact bijection (bitwise, any
dtype, any memory order) because the sim kernels and the differential
harness assume converting a batch and converting it back is the
identity.  Also pins the ``num_systems`` validation added for the
ZeroDivisionError-on-empty-batch bug.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.solvers.layout import (deinterleave, from_strided,
                                  gtsv_interleaved_batch,
                                  gtsv_strided_batch, interleave,
                                  to_strided)

DTYPES = (np.float32, np.float64, np.int32)


def _batch(S, n, seed, dtype):
    rng = np.random.default_rng(seed)
    b = rng.uniform(-100, 100, (S, n))
    return b.astype(dtype)


class TestInterleaveRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(S=st.integers(1, 12), n=st.integers(1, 24),
           seed=st.integers(0, 10**6), di=st.integers(0, len(DTYPES) - 1))
    def test_roundtrip_bitwise_and_dtype(self, S, n, seed, di):
        b = _batch(S, n, seed, DTYPES[di])
        flat = interleave(b)
        assert flat.dtype == b.dtype
        back = deinterleave(flat, S)
        assert back.dtype == b.dtype
        np.testing.assert_array_equal(back, b)

    @settings(max_examples=40, deadline=None)
    @given(S=st.integers(1, 8), n=st.integers(1, 16),
           seed=st.integers(0, 10**6))
    def test_non_contiguous_input(self, S, n, seed):
        wide = _batch(S, 2 * n, seed, np.float64)
        view = wide[:, ::2]                    # strided, not contiguous
        assert not view.flags["C_CONTIGUOUS"] or n == 1
        np.testing.assert_array_equal(
            deinterleave(interleave(view), S), np.ascontiguousarray(view))

    @settings(max_examples=40, deadline=None)
    @given(S=st.integers(1, 8), n=st.integers(1, 16),
           seed=st.integers(0, 10**6))
    def test_deinterleave_of_transpose_ravel(self, S, n, seed):
        """interleave() is exactly the column-major flattening."""
        b = _batch(S, n, seed, np.float32)
        np.testing.assert_array_equal(interleave(b), b.T.ravel())


class TestStridedRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(S=st.integers(1, 8), n=st.integers(1, 16),
           gap=st.integers(0, 7), seed=st.integers(0, 10**6),
           di=st.integers(0, len(DTYPES) - 1))
    def test_roundtrip_with_gap(self, S, n, gap, seed, di):
        b = _batch(S, n, seed, DTYPES[di])
        stride = n + gap
        flat = to_strided(b, stride)
        assert flat.dtype == b.dtype
        np.testing.assert_array_equal(from_strided(flat, S, n, stride), b)

    @settings(max_examples=40, deadline=None)
    @given(S=st.integers(1, 6), n=st.integers(1, 12),
           gap=st.integers(1, 5), seed=st.integers(0, 10**6))
    def test_gap_words_untouched(self, S, n, gap, seed):
        """Padding between systems survives a write bitwise."""
        b = _batch(S, n, seed, np.float64)
        stride = n + gap
        size = (S - 1) * stride + n
        out = np.full(size, -77.5)
        to_strided(b, stride, out=out)
        mask = np.ones(size, dtype=bool)
        idx = (np.arange(S)[:, None] * stride + np.arange(n)[None, :])
        mask[idx.ravel()] = False
        np.testing.assert_array_equal(out[mask], -77.5)


class TestNumSystemsValidation:
    """Regression: num_systems=0 used to ZeroDivisionError inside
    deinterleave and negatives reshaped silently."""

    @pytest.mark.parametrize("bad", [0, -1, -4])
    def test_deinterleave_rejects(self, bad):
        with pytest.raises(ValueError, match="num_systems must be >= 1"):
            deinterleave(np.zeros(8), bad)

    @pytest.mark.parametrize("bad", [0, -2])
    def test_gtsv_interleaved_rejects(self, bad):
        z = np.zeros(8)
        with pytest.raises(ValueError,
                           match="gtsv_interleaved_batch.*>= 1"):
            gtsv_interleaved_batch(z, z, z, z, bad)

    @pytest.mark.parametrize("bad", [0, -3])
    def test_gtsv_strided_rejects(self, bad):
        z = np.zeros(8)
        with pytest.raises(ValueError, match="gtsv_strided_batch.*>= 1"):
            gtsv_strided_batch(z, z, z, z, 4, bad, 4)

    def test_positive_still_works(self):
        b = np.arange(8.0).reshape(2, 4)
        np.testing.assert_array_equal(deinterleave(interleave(b), 2), b)
