"""TridiagonalSystems container invariants."""

import numpy as np
import pytest

from repro.solvers.systems import TridiagonalSystems


def _simple(S=3, n=8, dtype=np.float32):
    rng = np.random.default_rng(0)
    return TridiagonalSystems(
        rng.uniform(-1, 1, (S, n)).astype(dtype),
        rng.uniform(3, 5, (S, n)).astype(dtype),
        rng.uniform(-1, 1, (S, n)).astype(dtype),
        rng.uniform(-1, 1, (S, n)).astype(dtype))


class TestConstruction:
    def test_shape_properties(self):
        s = _simple(3, 8)
        assert s.num_systems == 3
        assert s.n == 8
        assert s.shape == (3, 8)

    def test_out_of_band_entries_zeroed(self):
        s = _simple()
        assert np.all(s.a[:, 0] == 0)
        assert np.all(s.c[:, -1] == 0)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError, match="share a shape"):
            TridiagonalSystems(np.zeros((2, 8)), np.ones((2, 8)),
                               np.zeros((2, 8)), np.zeros((2, 7)))

    def test_one_dimensional_rejected(self):
        with pytest.raises(ValueError, match="num_systems"):
            TridiagonalSystems(np.zeros(8), np.ones(8), np.zeros(8),
                               np.zeros(8))

    def test_tiny_system_rejected(self):
        with pytest.raises(ValueError):
            TridiagonalSystems(np.zeros((1, 1)), np.ones((1, 1)),
                               np.zeros((1, 1)), np.zeros((1, 1)))

    def test_integer_input_promoted_to_float(self):
        s = TridiagonalSystems(np.zeros((1, 4), dtype=int),
                               np.ones((1, 4), dtype=int),
                               np.zeros((1, 4), dtype=int),
                               np.ones((1, 4), dtype=int))
        assert s.dtype.kind == "f"

    def test_from_single(self):
        s = TridiagonalSystems.from_single(
            np.zeros(4), np.ones(4), np.zeros(4), np.ones(4))
        assert s.shape == (1, 4)

    def test_construction_copies_inputs(self):
        b = np.ones((1, 4))
        s = TridiagonalSystems(np.zeros((1, 4)), b, np.zeros((1, 4)),
                               np.ones((1, 4)))
        b[0, 0] = 99
        assert s.b[0, 0] == 1


class TestDenseRoundTrip:
    def test_to_dense_from_dense(self):
        s = _simple(2, 6, dtype=np.float64)
        dense = s.to_dense()
        s2 = TridiagonalSystems.from_dense(dense, s.d)
        np.testing.assert_array_equal(s2.a, s.a)
        np.testing.assert_array_equal(s2.b, s.b)
        np.testing.assert_array_equal(s2.c, s.c)

    def test_from_dense_rejects_full_matrix(self):
        m = np.ones((1, 4, 4))
        with pytest.raises(ValueError, match="off the tridiagonal"):
            TridiagonalSystems.from_dense(m, np.ones((1, 4)))

    def test_dense_matches_matvec(self):
        s = _simple(2, 5, dtype=np.float64)
        x = np.random.default_rng(1).uniform(-1, 1, s.shape)
        dense = s.to_dense()
        expected = np.einsum("sij,sj->si", dense, x)
        np.testing.assert_allclose(s.matvec(x), expected, rtol=1e-12)


class TestMatvecResidual:
    def test_matvec_identity(self):
        n = 6
        s = TridiagonalSystems(np.zeros((1, n)), np.ones((1, n)),
                               np.zeros((1, n)), np.ones((1, n)))
        x = np.arange(n, dtype=float)[None]
        np.testing.assert_array_equal(s.matvec(x), x)

    def test_matvec_shape_mismatch(self):
        s = _simple()
        with pytest.raises(ValueError, match="shape"):
            s.matvec(np.zeros((1, 3)))

    def test_residual_zero_for_exact_solution(self):
        s = _simple(2, 8, dtype=np.float64)
        x = np.random.default_rng(2).uniform(-1, 1, s.shape)
        s2 = TridiagonalSystems(s.a, s.b, s.c, s.matvec(x))
        np.testing.assert_allclose(s2.residual(x), 0, atol=1e-12)

    def test_residual_accumulates_in_float64(self):
        s = _simple(1, 8, dtype=np.float32)
        x = np.zeros(s.shape, dtype=np.float32)
        r = s.residual(x)
        assert r.dtype == np.float64


class TestPredicates:
    def test_diagonal_dominance_true(self):
        s = _simple()  # b in [3,5], |a|+|c| <= 2
        assert s.is_diagonally_dominant().all()

    def test_diagonal_dominance_false(self):
        s = TridiagonalSystems(np.full((1, 4), 2.0), np.ones((1, 4)),
                               np.full((1, 4), 2.0), np.ones((1, 4)))
        assert not s.is_diagonally_dominant().any()

    def test_copy_is_independent(self):
        s = _simple()
        s2 = s.copy()
        s2.b[:] = 0
        assert np.all(s.b != 0)

    def test_astype(self):
        s = _simple(dtype=np.float32)
        s64 = s.astype(np.float64)
        assert s64.dtype == np.float64
        assert s.dtype == np.float32
