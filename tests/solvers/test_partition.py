"""Wang's partition method (the §3 coarse-grained family)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.numerics.generators import diagonally_dominant_fluid
from repro.solvers.partition import (operation_count, partition_solve,
                                     reduced_system_size)
from repro.solvers.thomas import thomas_batched


class TestCorrectness:
    @pytest.mark.parametrize("P", [1, 2, 4, 8, 16, 32])
    def test_matches_thomas(self, P):
        s = diagonally_dominant_fluid(4, 64, seed=P, dtype=np.float64)
        np.testing.assert_allclose(partition_solve(s, P),
                                   thomas_batched(s), rtol=1e-12,
                                   atol=1e-13)

    def test_non_power_of_two_sizes(self):
        """Unlike CR/PCR, partitioning has no power-of-two restriction."""
        s = diagonally_dominant_fluid(3, 60, seed=0, dtype=np.float64)
        for P in (2, 3, 5, 6):
            np.testing.assert_allclose(partition_solve(s, P),
                                       thomas_batched(s), rtol=1e-12,
                                       atol=1e-13)

    def test_float32(self):
        s = diagonally_dominant_fluid(4, 64, seed=1)
        x = partition_solve(s, 8)
        assert x.dtype == np.float32
        assert s.residual(x).max() < 1e-3


class TestValidation:
    def test_indivisible(self):
        s = diagonally_dominant_fluid(1, 64, seed=2)
        with pytest.raises(ValueError, match="divisible"):
            partition_solve(s, 7)

    def test_chunks_too_small(self):
        s = diagonally_dominant_fluid(1, 8, seed=3)
        with pytest.raises(ValueError, match="too small"):
            partition_solve(s, 8)

    def test_bad_partition_count(self):
        s = diagonally_dominant_fluid(1, 8, seed=4)
        with pytest.raises(ValueError):
            partition_solve(s, 0)


class TestStructure:
    def test_reduced_system_size(self):
        assert reduced_system_size(512, 16) == 32

    def test_does_about_3x_thomas_work(self):
        """Wang's method trades ~3x the arithmetic for P-way
        parallelism -- the §3 coarse-grained trade-off."""
        assert operation_count(512, 8) == pytest.approx(3 * 8 * 512,
                                                        rel=0.05)


@settings(max_examples=25, deadline=None)
@given(q=st.integers(min_value=2, max_value=8),
       P=st.integers(min_value=1, max_value=6),
       seed=st.integers(min_value=0, max_value=10**6))
def test_property_any_chunking_matches_thomas(q, P, seed):
    s = diagonally_dominant_fluid(2, q * P, seed=seed, dtype=np.float64)
    np.testing.assert_allclose(partition_solve(s, P), thomas_batched(s),
                               rtol=1e-10, atol=1e-11)
