"""Mixed-precision iterative refinement."""

import warnings

import numpy as np
import pytest

from repro.numerics.generators import close_values, diagonally_dominant_fluid
from repro.solvers.refine import refined_solve


class TestConvergence:
    @pytest.mark.parametrize("method", ["cr", "pcr", "cr_pcr", "thomas"])
    def test_reaches_float64_accuracy_on_dominant(self, method):
        s = diagonally_dominant_fluid(4, 128, seed=0)
        res = refined_solve(s, method=method)
        assert res.converged, method
        assert res.final_residual < 1e-12
        assert res.iterations <= 4

    def test_beats_plain_float32_by_orders(self):
        s = diagonally_dominant_fluid(4, 256, seed=1)
        from repro.solvers.api import SOLVERS
        x32 = SOLVERS["cr_pcr"](s.astype(np.float32),
                                intermediate_size=None)
        r32 = s.astype(np.float64).residual(x32.astype(np.float64)).max()
        res = refined_solve(s, method="cr_pcr")
        r_ref = s.astype(np.float64).residual(res.x).max()
        assert r_ref < r32 * 1e-4

    def test_residual_history_monotone_until_convergence(self):
        s = diagonally_dominant_fluid(4, 64, seed=2)
        res = refined_solve(s, method="cr")
        h = res.residual_history
        assert all(h[i + 1] <= h[i] * 1.5 for i in range(len(h) - 1))

    def test_qr_inner_handles_close_values(self):
        s = close_values(4, 64, seed=3)
        res = refined_solve(s, method="qr")
        assert res.converged
        assert res.final_residual < 1e-12


class TestFailureModes:
    def test_rd_inner_on_dominant_does_not_converge(self):
        """RD overflows on this class (§5.4): refinement must report
        the failure rather than mask it."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            s = diagonally_dominant_fluid(4, 256, seed=4)
            res = refined_solve(s, method="rd", max_iterations=3)
        assert not res.converged

    def test_unknown_method(self):
        s = diagonally_dominant_fluid(1, 16, seed=5)
        with pytest.raises(ValueError, match="unknown method"):
            refined_solve(s, method="magma")

    def test_iteration_cap_respected(self):
        s = diagonally_dominant_fluid(2, 64, seed=6)
        res = refined_solve(s, method="cr", max_iterations=1,
                            rtol=1e-30)
        assert res.iterations == 1
