"""Mixed-precision iterative refinement."""

import warnings

import numpy as np
import pytest

from repro.numerics.generators import close_values, diagonally_dominant_fluid
from repro.solvers.refine import refined_solve


class TestConvergence:
    @pytest.mark.parametrize("method", ["cr", "pcr", "cr_pcr", "thomas"])
    def test_reaches_float64_accuracy_on_dominant(self, method):
        s = diagonally_dominant_fluid(4, 128, seed=0)
        res = refined_solve(s, method=method)
        assert res.converged, method
        assert res.final_residual < 1e-12
        assert res.iterations <= 4

    def test_beats_plain_float32_by_orders(self):
        s = diagonally_dominant_fluid(4, 256, seed=1)
        from repro.solvers.api import SOLVERS
        x32 = SOLVERS["cr_pcr"](s.astype(np.float32),
                                intermediate_size=None)
        r32 = s.astype(np.float64).residual(x32.astype(np.float64)).max()
        res = refined_solve(s, method="cr_pcr")
        r_ref = s.astype(np.float64).residual(res.x).max()
        assert r_ref < r32 * 1e-4

    def test_residual_history_monotone_until_convergence(self):
        s = diagonally_dominant_fluid(4, 64, seed=2)
        res = refined_solve(s, method="cr")
        h = res.residual_history
        assert all(h[i + 1] <= h[i] * 1.5 for i in range(len(h) - 1))

    def test_qr_inner_handles_close_values(self):
        s = close_values(4, 64, seed=3)
        res = refined_solve(s, method="qr")
        assert res.converged
        assert res.final_residual < 1e-12


class TestFailureModes:
    def test_rd_inner_on_dominant_does_not_converge(self):
        """RD overflows on this class (§5.4): refinement must report
        the failure rather than mask it."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            s = diagonally_dominant_fluid(4, 256, seed=4)
            res = refined_solve(s, method="rd", max_iterations=3)
        assert not res.converged
        assert res.stop_reason == "nonfinite"

    def test_divergence_stops_early_and_keeps_best_iterate(self,
                                                           monkeypatch):
        """An inner solver that amplifies the error must trip the
        two-consecutive-growth guard, not run out the iteration
        budget compounding garbage."""
        from repro.solvers.api import SOLVERS
        from repro.solvers.thomas import thomas_batched

        def amplifying_solver(systems, intermediate_size=None):
            # 10x the true correction: each sweep multiplies the
            # residual by -9, so it grows but stays finite.
            return 10.0 * thomas_batched(systems)

        monkeypatch.setitem(SOLVERS, "amplify", amplifying_solver)
        s = diagonally_dominant_fluid(2, 32, seed=8)
        res = refined_solve(s, method="amplify", max_iterations=10)
        assert res.stop_reason == "diverged"
        assert not res.converged
        assert res.iterations < 10          # stopped early
        h = res.residual_history
        assert h[-1] > h[0]                 # it really was diverging
        # The returned x is the best iterate seen, not the last one.
        rel = (s.astype(np.float64).residual(res.x)
               / np.linalg.norm(s.d.astype(np.float64), axis=1)).max()
        assert rel <= min(h) * 1.0001

    def test_converged_stop_reason(self):
        s = diagonally_dominant_fluid(2, 64, seed=9)
        res = refined_solve(s, method="cr")
        assert res.converged
        assert res.stop_reason == "converged"

    def test_max_iterations_stop_reason(self):
        s = diagonally_dominant_fluid(2, 64, seed=6)
        res = refined_solve(s, method="cr", max_iterations=1, rtol=1e-30)
        assert res.stop_reason == "max_iterations"
        assert not res.converged

    def test_unknown_method(self):
        s = diagonally_dominant_fluid(1, 16, seed=5)
        with pytest.raises(ValueError, match="unknown method"):
            refined_solve(s, method="magma")

    def test_iteration_cap_respected(self):
        s = diagonally_dominant_fluid(2, 64, seed=6)
        res = refined_solve(s, method="cr", max_iterations=1,
                            rtol=1e-30)
        assert res.iterations == 1
