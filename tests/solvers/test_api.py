"""Public solve() API: methods, auto selection, padding, shapes."""

import numpy as np
import pytest

from repro.numerics.generators import close_values, diagonally_dominant_fluid
from repro.solvers.api import (SOLVERS, choose_method, residual, solve)
from repro.solvers.systems import TridiagonalSystems


class TestSolve:
    @pytest.mark.parametrize("method", sorted(SOLVERS))
    def test_every_method_solves_dominant_batch(self, method):
        n = 32  # small enough that even RD is stable-ish? RD needs care
        if method in ("rd", "cr_rd"):
            s = close_values(4, n, seed=1)
        else:
            s = diagonally_dominant_fluid(4, n, seed=1)
        x = solve(s.a, s.b, s.c, s.d, method=method)
        assert residual(s.a, s.b, s.c, s.d, x).max() < 1e-2

    def test_single_system_shape(self):
        s = diagonally_dominant_fluid(1, 16, seed=2)
        x = solve(s.a[0], s.b[0], s.c[0], s.d[0], method="cr")
        assert x.shape == (16,)

    def test_batch_shape(self):
        s = diagonally_dominant_fluid(5, 16, seed=3)
        x = solve(s.a, s.b, s.c, s.d, method="pcr")
        assert x.shape == (5, 16)

    def test_unknown_method(self):
        s = diagonally_dominant_fluid(1, 8, seed=4)
        with pytest.raises(ValueError, match="unknown method"):
            solve(s.a, s.b, s.c, s.d, method="cholesky")

    def test_intermediate_size_forwarded(self):
        s = diagonally_dominant_fluid(2, 64, seed=5)
        x = solve(s.a, s.b, s.c, s.d, method="cr_pcr", intermediate_size=8)
        assert residual(s.a, s.b, s.c, s.d, x).max() < 1e-3


class TestFiniteBoundary:
    def test_nan_rejected_with_system_index(self):
        from repro.solvers.validate import InputValidationError
        s = diagonally_dominant_fluid(4, 16, seed=6)
        s.d[2, 5] = np.nan
        with pytest.raises(InputValidationError, match="system index 2"):
            solve(s.a, s.b, s.c, s.d, method="cr")

    def test_check_finite_false_skips(self):
        s = diagonally_dominant_fluid(4, 16, seed=6)
        s.d[2, 5] = np.nan
        x = solve(s.a, s.b, s.c, s.d, method="cr", check_finite=False)
        assert x.shape == (4, 16)       # solver ran; garbage-in applies

    def test_robust_solve_reachable_from_top_level(self):
        import repro
        s = diagonally_dominant_fluid(2, 16, seed=7)
        report = repro.robust_solve(s.a, s.b, s.c, s.d)
        assert report.all_accepted


class TestPadding:
    @pytest.mark.parametrize("n", [3, 7, 20, 100])
    def test_non_power_of_two_padded(self, n):
        s = diagonally_dominant_fluid(3, n, seed=n)
        x = solve(s.a, s.b, s.c, s.d, method="cr")
        assert x.shape == (3, n)
        assert residual(s.a, s.b, s.c, s.d, x).max() < 1e-3

    def test_padded_matches_thomas(self):
        s = diagonally_dominant_fluid(3, 21, seed=6, dtype=np.float64)
        x_pad = solve(s.a, s.b, s.c, s.d, method="pcr")
        x_ref = solve(s.a, s.b, s.c, s.d, method="thomas")
        np.testing.assert_allclose(x_pad, x_ref, rtol=1e-8, atol=1e-10)

    def test_pad_false_raises(self):
        s = diagonally_dominant_fluid(1, 12, seed=7)
        with pytest.raises(ValueError, match="pad=False"):
            solve(s.a, s.b, s.c, s.d, method="cr", pad=False)

    def test_thomas_needs_no_padding(self):
        s = diagonally_dominant_fluid(1, 12, seed=8)
        x = solve(s.a[0], s.b[0], s.c[0], s.d[0], method="thomas",
                  pad=False)
        assert x.shape == (12,)


class TestAutoSelection:
    def test_non_dominant_gets_pivoting(self):
        s = close_values(4, 64, seed=9)
        assert choose_method(s) == "gep"

    def test_tiny_batch_gets_thomas(self):
        s = diagonally_dominant_fluid(2, 16, seed=10)
        assert choose_method(s) == "thomas"

    def test_small_systems_get_pcr(self):
        s = diagonally_dominant_fluid(64, 64, seed=11)
        assert choose_method(s) == "pcr"

    def test_large_systems_get_hybrid(self):
        s = diagonally_dominant_fluid(64, 512, seed=12)
        assert choose_method(s) == "cr_pcr"

    def test_auto_solves_correctly(self):
        s = diagonally_dominant_fluid(16, 128, seed=13)
        x = solve(s.a, s.b, s.c, s.d)  # method="auto"
        assert residual(s.a, s.b, s.c, s.d, x).max() < 1e-3


class TestResidualHelper:
    def test_single_returns_scalar(self):
        s = diagonally_dominant_fluid(1, 8, seed=14, dtype=np.float64)
        x = solve(s.a[0], s.b[0], s.c[0], s.d[0], method="thomas")
        r = residual(s.a[0], s.b[0], s.c[0], s.d[0], x)
        assert np.ndim(r) == 0
        assert r < 1e-10
