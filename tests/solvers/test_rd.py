"""Recursive doubling: scan algebra, correctness, overflow behaviour."""

import warnings

import numpy as np
import pytest

from repro.numerics.generators import (close_values,
                                       diagonally_dominant_fluid)
from repro.solvers.rd import (R00, R02, build_matrices, combine,
                              evaluate_solution, inclusive_scan,
                              operation_count, recursive_doubling,
                              step_count)
from repro.solvers.thomas import thomas_batched


def full_3x3(stored):
    """Expand the 2x3 stored representation to full 3x3 matrices."""
    *lead, six = stored.shape
    out = np.zeros((*lead, 3, 3), dtype=stored.dtype)
    out[..., 0, :] = stored[..., 0:3]
    out[..., 1, :] = stored[..., 3:6]
    out[..., 2, 2] = 1.0
    return out


class TestCombine:
    def test_matches_full_matrix_product(self, rng):
        a = rng.uniform(-1, 1, (4, 7, 6))
        b = rng.uniform(-1, 1, (4, 7, 6))
        got = full_3x3(combine(a, b))
        expected = full_3x3(a) @ full_3x3(b)
        np.testing.assert_allclose(got, expected, rtol=1e-12)

    def test_associative(self, rng):
        a, b, c = (rng.uniform(-1, 1, (2, 3, 6)) for _ in range(3))
        left = combine(combine(a, b), c)
        right = combine(a, combine(b, c))
        np.testing.assert_allclose(left, right, rtol=1e-12, atol=1e-12)

    def test_identity(self):
        ident = np.zeros((1, 1, 6))
        ident[..., 0] = 1.0   # r00
        ident[..., 4] = 1.0   # r11
        rng = np.random.default_rng(0)
        m = rng.uniform(-1, 1, (1, 1, 6))
        np.testing.assert_allclose(combine(m, ident), m, atol=1e-15)
        np.testing.assert_allclose(combine(ident, m), m, atol=1e-15)


class TestScan:
    def test_matches_serial_prefix_product(self, rng):
        mats = rng.uniform(-0.9, 0.9, (2, 8, 6))
        scanned = inclusive_scan(mats)
        running = mats[:, 0]
        for i in range(1, 8):
            running = combine(mats[:, i], running)
            np.testing.assert_allclose(scanned[:, i], running,
                                       rtol=1e-10, atol=1e-12)

    def test_first_element_unchanged(self, rng):
        mats = rng.uniform(-1, 1, (1, 16, 6))
        scanned = inclusive_scan(mats)
        np.testing.assert_array_equal(scanned[:, 0], mats[:, 0])

    def test_input_not_mutated(self, rng):
        mats = rng.uniform(-1, 1, (1, 8, 6))
        before = mats.copy()
        inclusive_scan(mats)
        np.testing.assert_array_equal(mats, before)


class TestCorrectness:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 64, 256])
    def test_matches_thomas_on_close_values(self, n):
        s = close_values(4, n, seed=n, dtype=np.float64)
        x = recursive_doubling(s)
        ref = thomas_batched(s)
        np.testing.assert_allclose(x, ref, rtol=1e-5, atol=1e-7)

    def test_small_dominant_ok(self):
        s = diagonally_dominant_fluid(4, 8, seed=1, dtype=np.float64)
        x = recursive_doubling(s)
        assert s.residual(x).max() < 1e-8

    def test_non_power_of_two_rejected(self):
        s = close_values(1, 10, seed=0)
        with pytest.raises(ValueError, match="power-of-two"):
            recursive_doubling(s)


class TestOverflow:
    def test_float32_dominant_overflows_beyond_64(self):
        """The paper's §5.4 finding: float32 RD overflows for
        diagonally dominant systems larger than ~64."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            s = diagonally_dominant_fluid(4, 256, seed=2, dtype=np.float32)
            x = recursive_doubling(s)
        assert not np.isfinite(x).all()

    def test_close_values_survive_large_n(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            s = close_values(4, 256, seed=3, dtype=np.float32)
            x = recursive_doubling(s)
        assert np.isfinite(x).all()
        # Residuals are worse than the dominant case but bounded
        # (Fig 18 right-hand cluster).
        assert s.residual(x).max() < 10.0


class TestBuildMatrices:
    def test_last_equation_formal_c(self):
        s = close_values(1, 4, seed=4, dtype=np.float64)
        m = build_matrices(s.a, s.b, s.c, s.d)
        # Last matrix built with c = 1: r00 == -b, r02 == d.
        np.testing.assert_allclose(m[0, -1, R00], -s.b[0, -1])
        np.testing.assert_allclose(m[0, -1, R02], s.d[0, -1])

    def test_evaluation_reconstructs_chain(self):
        """x_{i+1} = C_i[0,0] x0 + C_i[0,2] must satisfy each original
        equation when plugged back in."""
        s = close_values(2, 16, seed=5, dtype=np.float64)
        x = evaluate_solution(inclusive_scan(
            build_matrices(s.a, s.b, s.c, s.d)))
        assert s.residual(x).max() < 1e-7


class TestComplexity:
    def test_paper_counts(self):
        assert operation_count(512) == 20 * 512 * 9
        assert step_count(512) == 11  # log2(512) + 2
