"""Cyclic reduction: correctness, level helpers, complexity counts."""

import numpy as np
import pytest

from repro.numerics.generators import diagonally_dominant_fluid, toeplitz_spd
from repro.solvers.cr import (back_substitute_from, cyclic_reduction,
                              forward_reduce_to, operation_count,
                              solve_two_unknowns, step_count)
from repro.solvers.thomas import thomas_batched


class TestCorrectness:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 64, 256])
    def test_matches_thomas(self, n):
        s = diagonally_dominant_fluid(4, n, seed=n, dtype=np.float64)
        np.testing.assert_allclose(cyclic_reduction(s), thomas_batched(s),
                                   rtol=1e-8, atol=1e-10)

    def test_float32_residual(self, dominant_batch):
        x = cyclic_reduction(dominant_batch)
        assert dominant_batch.residual(x).max() < 1e-4

    def test_spd(self, spd_batch):
        x = cyclic_reduction(spd_batch)
        assert spd_batch.residual(x).max() < 1e-4

    def test_non_power_of_two_rejected(self):
        s = diagonally_dominant_fluid(2, 24, seed=0)
        with pytest.raises(ValueError, match="power-of-two"):
            cyclic_reduction(s)

    def test_preserves_input(self, dominant_small):
        b_before = dominant_small.b.copy()
        cyclic_reduction(dominant_small)
        np.testing.assert_array_equal(dominant_small.b, b_before)


class TestSolveTwoUnknowns:
    def test_exact_2x2(self):
        # [[2, 1], [1, 3]] [x1, x2] = [3, 4]
        x1, x2 = solve_two_unknowns(np.array(2.0), np.array(1.0),
                                    np.array(1.0), np.array(3.0),
                                    np.array(3.0), np.array(4.0))
        np.testing.assert_allclose([x1, x2], [1.0, 1.0])

    def test_vectorised(self):
        b = np.array([2.0, 4.0]); c = np.array([1.0, 1.0])
        a2 = np.array([1.0, 1.0]); b2 = np.array([3.0, 5.0])
        d = np.array([3.0, 5.0]); d2 = np.array([4.0, 6.0])
        x1, x2 = solve_two_unknowns(b, c, a2, b2, d, d2)
        np.testing.assert_allclose(b * x1 + c * x2, d)
        np.testing.assert_allclose(a2 * x1 + b2 * x2, d2)


class TestLevelHelpers:
    def test_forward_reduce_to_full_size_is_identity(self):
        s = diagonally_dominant_fluid(2, 16, seed=1, dtype=np.float64)
        w = s.copy()
        idx = forward_reduce_to((w.a, w.b, w.c, w.d), 16, 16)
        np.testing.assert_array_equal(idx, np.arange(16))
        np.testing.assert_array_equal(w.b, s.b)  # untouched

    def test_reduce_then_substitute_equals_cr(self):
        """Reducing to m, solving the intermediate exactly, and
        substituting back reproduces the full solution."""
        s = diagonally_dominant_fluid(3, 32, seed=2, dtype=np.float64)
        ref = thomas_batched(s)
        for m in (2, 4, 8, 16):
            w = s.copy()
            arrays = (w.a, w.b, w.c, w.d)
            idx = forward_reduce_to(arrays, 32, m)
            inter = type(s)(w.a[:, idx], w.b[:, idx], w.c[:, idx],
                            w.d[:, idx])
            xi = thomas_batched(inter)
            x = np.zeros(s.shape, dtype=s.dtype)
            x[:, idx] = xi
            back_substitute_from(arrays, x, 32, m)
            np.testing.assert_allclose(x, ref, rtol=1e-8, atol=1e-10)

    def test_surviving_indices_structure(self):
        s = diagonally_dominant_fluid(1, 16, seed=3, dtype=np.float64)
        w = s.copy()
        idx = forward_reduce_to((w.a, w.b, w.c, w.d), 16, 4)
        np.testing.assert_array_equal(idx, [3, 7, 11, 15])

    def test_reduced_system_is_tridiagonal_consistent(self):
        """The intermediate equations couple only adjacent survivors:
        solving them as a standalone tridiagonal system gives the true
        values of the surviving unknowns."""
        s = diagonally_dominant_fluid(2, 32, seed=4, dtype=np.float64)
        ref = thomas_batched(s)
        w = s.copy()
        idx = forward_reduce_to((w.a, w.b, w.c, w.d), 32, 8)
        inter = type(s)(w.a[:, idx], w.b[:, idx], w.c[:, idx], w.d[:, idx])
        xi = thomas_batched(inter)
        np.testing.assert_allclose(xi, ref[:, idx], rtol=1e-8, atol=1e-10)

    def test_bad_intermediate_sizes(self):
        s = diagonally_dominant_fluid(1, 16, seed=5)
        w = s.copy()
        with pytest.raises(ValueError):
            forward_reduce_to((w.a, w.b, w.c, w.d), 16, 3)
        with pytest.raises(ValueError):
            forward_reduce_to((w.a, w.b, w.c, w.d), 16, 32)


class TestComplexity:
    def test_paper_counts(self):
        assert operation_count(512) == 17 * 512
        assert step_count(512) == 17  # 2 * 9 - 1
        assert step_count(2) == 1
