"""Batch layout conversions and the cuSPARSE-shaped entry points."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.numerics.generators import diagonally_dominant_fluid
from repro.solvers.layout import (deinterleave, from_strided,
                                  gtsv_interleaved_batch,
                                  gtsv_strided_batch, interleave,
                                  to_strided)
from repro.solvers.thomas import thomas_batched


class TestInterleave:
    def test_roundtrip(self):
        b = np.arange(12.0).reshape(3, 4)
        np.testing.assert_array_equal(deinterleave(interleave(b), 3), b)

    def test_layout_is_element_major(self):
        b = np.array([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_array_equal(interleave(b), [1, 3, 2, 4])

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            interleave(np.zeros(4))
        with pytest.raises(ValueError):
            deinterleave(np.zeros(7), 2)

    @settings(max_examples=50, deadline=None)
    @given(S=st.integers(1, 8), n=st.integers(1, 16),
           seed=st.integers(0, 10**6))
    def test_property_roundtrip(self, S, n, seed):
        b = np.random.default_rng(seed).uniform(-1, 1, (S, n))
        np.testing.assert_array_equal(deinterleave(interleave(b), S), b)


class TestStrided:
    def test_roundtrip_with_padding(self):
        b = np.arange(8.0).reshape(2, 4)
        flat = to_strided(b, batch_stride=6)
        assert flat.size == 10
        np.testing.assert_array_equal(from_strided(flat, 2, 4, 6), b)

    def test_stride_too_small(self):
        with pytest.raises(ValueError, match="batch_stride"):
            to_strided(np.zeros((2, 4)), batch_stride=3)

    def test_flat_too_small(self):
        with pytest.raises(ValueError, match="too small"):
            from_strided(np.zeros(8), 2, 4, 6)


class TestGtsvAPIs:
    def _batch(self, S=4, n=16, dtype=np.float64):
        return diagonally_dominant_fluid(S, n, seed=0, dtype=dtype)

    def test_strided_batch_matches_thomas(self):
        s = self._batch()
        stride = 20
        pack = lambda v: to_strided(v, stride)           # noqa: E731
        out = gtsv_strided_batch(pack(s.a), pack(s.b), pack(s.c),
                                 pack(s.d), 16, 4, stride,
                                 method="thomas")
        got = from_strided(out, 4, 16, stride)
        np.testing.assert_allclose(got, thomas_batched(s), rtol=1e-12)

    def test_strided_batch_preserves_padding(self):
        s = self._batch()
        stride = 20
        x_in = to_strided(s.d, stride)
        x_in[16:20] = -99.0  # padding between systems
        out = gtsv_strided_batch(to_strided(s.a, stride),
                                 to_strided(s.b, stride),
                                 to_strided(s.c, stride),
                                 x_in, 16, 4, stride, method="thomas")
        np.testing.assert_array_equal(out[16:20], -99.0)
        np.testing.assert_array_equal(x_in[16:20], -99.0)  # not mutated

    def test_interleaved_batch_matches_thomas(self):
        s = self._batch()
        out = gtsv_interleaved_batch(interleave(s.a), interleave(s.b),
                                     interleave(s.c), interleave(s.d),
                                     4, method="cr")
        got = deinterleave(out, 4)
        np.testing.assert_allclose(got, thomas_batched(s), rtol=1e-7,
                                   atol=1e-9)
