"""The checked-in GT200 constants must keep reproducing the paper.

These tests run the five kernels at the paper's 512x512 configuration
(two simulated blocks -- counters are per block -- scaled to 512) and
compare modeled totals against the published Figs 6-16 numbers.  If a
simulator or kernel change breaks the calibration, this is the test
that says so; re-run ``python -m repro.gpusim.calibrate`` and refresh
``gt200.py``.
"""

import warnings

import numpy as np
import pytest

from repro.gpusim import GTX280, gt200_cost_model
from repro.gpusim.calibrate import (CALIBRATION_N, HYBRID_M,
                                    PAPER_TOTALS_MS, fit)
from repro.kernels.api import run_kernel
from repro.numerics.generators import diagonally_dominant_fluid


@pytest.fixture(scope="module")
def modeled_totals():
    cm = gt200_cost_model()
    systems = diagonally_dominant_fluid(2, CALIBRATION_N, seed=0)
    out = {}
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for name in PAPER_TOTALS_MS:
            _x, res = run_kernel(name, systems,
                                 intermediate_size=HYBRID_M.get(name))
            scale, conc, _ = cm.grid_scale(GTX280, 512, res.shared_bytes,
                                           res.threads_per_block)
            total = sum(
                cm.phase_time_block_ns(pc, blocks_per_sm=conc).total_ms
                for pc in res.ledger.phases.values()) * scale * 1e-6
            out[name] = total + cm.params.launch_overhead_ns * 1e-6
    return out


class TestPublishedTotals:
    @pytest.mark.parametrize("name", sorted(PAPER_TOTALS_MS))
    def test_total_within_tolerance(self, modeled_totals, name):
        """Each solver's modeled 512x512 total within 20 % of Fig 6."""
        target = PAPER_TOTALS_MS[name]
        assert modeled_totals[name] == pytest.approx(target, rel=0.20)

    def test_solver_ordering_matches_paper(self, modeled_totals):
        """CR+PCR < CR+RD < PCR < RD < CR at 512x512 (Fig 6 left)."""
        t = modeled_totals
        assert t["cr_pcr"] < t["cr_rd"] < t["pcr"] < t["rd"] < t["cr"]

    def test_headline_improvements(self, modeled_totals):
        """§1: hybrids improve PCR, RD, CR by 21 %, 31 %, 61 %.

        Bands are generous (half the published gain) -- the claim under
        test is that the hybrids win by a material margin.
        """
        t = modeled_totals
        assert 1 - t["cr_pcr"] / t["pcr"] > 0.10
        assert 1 - t["cr_rd"] / t["rd"] > 0.15
        assert 1 - t["cr_pcr"] / t["cr"] > 0.45

    def test_pcr_about_half_of_cr(self, modeled_totals):
        """§5.3.2: "PCR takes about half the time as CR"."""
        ratio = modeled_totals["pcr"] / modeled_totals["cr"]
        assert 0.35 <= ratio <= 0.65


class TestFitQuality:
    def test_refit_reproduces_checked_in_constants(self):
        """Running the calibration today lands near the constants in
        gt200.py (guards against silent counter drift)."""
        report = fit()
        fitted = report.params
        checked_in = gt200_cost_model().params
        for field in ("shared_cycle_ns", "shared_latency_ns",
                      "global_word_ns", "warp_issue_ns", "step_ns"):
            a = getattr(fitted, field)
            b = getattr(checked_in, field)
            assert a == pytest.approx(b, rel=0.05), field

    def test_fit_total_rows_accurate(self):
        report = fit()
        for label, target, fitted_ms in report.rows:
            if label.endswith(":total"):
                assert fitted_ms == pytest.approx(target, rel=0.20), label
