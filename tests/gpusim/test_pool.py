"""`derive_seed`: the determinism root of fuzzing and fault plans."""

import itertools

import numpy as np

from repro.gpusim.pool import derive_seed


def test_deterministic_across_calls():
    assert derive_seed(1, 2, "x") == derive_seed(1, 2, "x")


def test_fits_in_uint32():
    for parts in ((0,), (2**63, "job"), ("a", "b", "c", 7)):
        s = derive_seed(*parts)
        assert 0 <= s < 2**32


def test_order_sensitive():
    assert derive_seed(1, 2) != derive_seed(2, 1)
    assert derive_seed("gpu0", 3) != derive_seed(3, "gpu0")


def test_arity_sensitive():
    assert derive_seed(1) != derive_seed(1, 0)
    assert derive_seed("job") != derive_seed("job", "job")


def test_no_collisions_over_a_realistic_grid():
    """Every (seed, iteration, purpose) triple the fuzzer derives must
    map to a distinct stream seed -- a collision would silently repeat
    a 'random' case."""
    seeds = {derive_seed(s, i, purpose)
             for s, i, purpose in itertools.product(
                 range(8), range(64), ("fuzz-case", "data", "fault"))}
    assert len(seeds) == 8 * 64 * 3


def test_distinct_string_parts_mix_differently():
    labels = ["gpu0", "gpu1", "gpu2", "cpu", "job-a", "job-b"]
    assert len({derive_seed(lab, 0) for lab in labels}) == len(labels)


def test_usable_as_generator_seed():
    rng = np.random.default_rng(derive_seed("smoke", 1))
    x = rng.standard_normal(4)
    y = np.random.default_rng(derive_seed("smoke", 1)).standard_normal(4)
    assert np.array_equal(x, y)
