"""BlockContext: counter bookkeeping, phases, steps, error paths."""

import numpy as np
import pytest

from repro.gpusim import (GTX280, BlockContext, KernelError, StopKernel,
                          launch)


def make_ctx(blocks=2, threads=32):
    return BlockContext(GTX280, blocks, threads)


class TestConstruction:
    def test_block_too_large(self):
        with pytest.raises(KernelError, match="exceeds device limit"):
            BlockContext(GTX280, 1, 1024)

    def test_bad_sizes(self):
        with pytest.raises(KernelError):
            BlockContext(GTX280, 0, 32)


class TestActiveLanes:
    def test_prefix_activation(self):
        ctx = make_ctx()
        lanes = ctx.set_active(5)
        np.testing.assert_array_equal(lanes, np.arange(5))
        assert ctx.active_count == 5

    def test_contiguous_range_allowed(self):
        ctx = make_ctx()
        ctx.set_active(np.arange(8, 24))
        assert ctx.active_count == 16

    def test_non_contiguous_rejected(self):
        ctx = make_ctx()
        with pytest.raises(KernelError, match="non-contiguous"):
            ctx.set_active(np.array([0, 2, 4]))

    def test_non_contiguous_allowed_when_disabled(self):
        ctx = BlockContext(GTX280, 1, 32, check_contiguous_active=False)
        ctx.set_active(np.array([0, 2, 4]))
        assert ctx.active_count == 3

    def test_out_of_block_lane_rejected(self):
        ctx = make_ctx(threads=8)
        with pytest.raises(KernelError, match="outside block"):
            ctx.set_active(np.array([7, 8]))

    def test_count_out_of_range(self):
        ctx = make_ctx(threads=8)
        with pytest.raises(KernelError):
            ctx.set_active(9)


class TestSharedAccounting:
    def test_load_counts(self):
        ctx = make_ctx()
        arr = ctx.shared(64)
        ctx.set_active(16)
        ctx.sload(arr, np.arange(16))
        pc = ctx.ledger.phase("main")
        assert pc.shared_words == 16
        assert pc.shared_instructions == 1
        assert pc.shared_cycles == 1  # unit stride

    def test_strided_store_conflicts(self):
        ctx = make_ctx()
        arr = ctx.shared(512)
        ctx.set_active(16)
        ctx.sstore(arr, np.arange(16) * 16, np.zeros((2, 16)))
        pc = ctx.ledger.phase("main")
        assert pc.shared_cycles == 16  # 16-way conflict

    def test_cost_idx_overrides_cost_only(self):
        ctx = make_ctx()
        arr = ctx.shared(512)
        arr.data[:, :] = np.arange(512)[None, :]
        ctx.set_active(16)
        idx = np.arange(16) * 16
        vals = ctx.sload(arr, idx, cost_idx=np.arange(16))
        pc = ctx.ledger.phase("main")
        assert pc.shared_cycles == 1          # costed as unit stride
        np.testing.assert_array_equal(vals[0], idx)  # values are real

    def test_out_of_bounds_raises(self):
        ctx = make_ctx()
        arr = ctx.shared(8)
        ctx.set_active(4)
        with pytest.raises(KernelError, match="out of bounds"):
            ctx.sload(arr, np.array([0, 1, 2, 8]))

    def test_wrong_lane_count_raises(self):
        ctx = make_ctx()
        arr = ctx.shared(8)
        ctx.set_active(4)
        with pytest.raises(KernelError, match="does not match"):
            ctx.sload(arr, np.arange(3))

    def test_shared_overflow_raises(self):
        ctx = make_ctx()
        with pytest.raises(KernelError, match="footprint"):
            ctx.shared(5000)  # 20 KB > 16 KB

    def test_latency_units_scale_with_warps(self):
        ctx = make_ctx(threads=512)
        arr = ctx.shared(512)
        ctx.set_active(512)           # 16 warps: fully hidden
        ctx.sload(arr, np.arange(512))
        assert ctx.ledger.phase("main").latency_units == 0.0
        ctx.set_active(32)            # 1 warp: mostly exposed
        ctx.sload(arr, np.arange(32))
        assert ctx.ledger.phase("main").latency_units > 0.5


class TestOpsAccounting:
    def test_flops_scale_with_active(self):
        ctx = make_ctx()
        ctx.set_active(10)
        ctx.ops(5, divs=2)
        pc = ctx.ledger.phase("main")
        assert pc.flops == 50
        assert pc.divs == 20
        assert pc.warp_instructions == 5  # one warp

    def test_invalid_counts(self):
        ctx = make_ctx()
        with pytest.raises(KernelError):
            ctx.ops(2, divs=3)
        with pytest.raises(KernelError):
            ctx.ops(-1)


class TestPhasesAndSteps:
    def test_phase_attribution(self):
        ctx = make_ctx()
        arr = ctx.shared(32)
        ctx.set_active(8)
        with ctx.phase("alpha"):
            ctx.sload(arr, np.arange(8))
        with ctx.phase("beta"):
            ctx.ops(3)
        assert ctx.ledger.phase("alpha").shared_words == 8
        assert ctx.ledger.phase("beta").flops == 24
        assert ctx.ledger.phase("alpha").flops == 0

    def test_step_records_deltas(self):
        ctx = make_ctx()
        ctx.set_active(4)
        with ctx.phase("p"):
            with ctx.step():
                ctx.ops(2)
            with ctx.step():
                ctx.ops(3)
        steps = ctx.ledger.steps_in_phase("p")
        assert len(steps) == 2
        assert steps[0].flops == 8
        assert steps[1].flops == 12
        assert ctx.ledger.phase("p").steps == 2

    def test_steps_do_not_nest(self):
        ctx = make_ctx()
        with pytest.raises(KernelError, match="nest"):
            with ctx.step():
                with ctx.step():
                    pass

    def test_sync_counted(self):
        ctx = make_ctx()
        ctx.sync()
        ctx.sync()
        assert ctx.ledger.phase("main").syncs == 2

    def test_ledger_total_merges(self):
        ctx = make_ctx()
        ctx.set_active(4)
        with ctx.phase("a"):
            ctx.ops(1)
        with ctx.phase("b"):
            ctx.ops(2)
        assert ctx.ledger.total().flops == 12


class TestStepLimit:
    def test_stop_kernel_raised(self):
        ctx = BlockContext(GTX280, 1, 32, step_limit=2)
        with ctx.step():
            pass
        with pytest.raises(StopKernel):
            with ctx.step():
                pass

    def test_launch_catches_stop(self):
        def kernel(ctx):
            for _ in range(5):
                with ctx.step():
                    ctx.ops(1)
            return "finished"

        full = launch(kernel, num_blocks=1, threads_per_block=32)
        assert full.outputs == "finished"
        assert full.ledger.total().steps == 5

        cut = launch(kernel, num_blocks=1, threads_per_block=32,
                     step_limit=3)
        assert cut.outputs is None
        assert cut.ledger.total().steps == 3


class TestGlobalLaneAccounting:
    """Global coalescing partitions half-warps by lane id, exactly as
    the shared path does (regression: the global path used to bin by
    array position)."""

    def test_stride2_active_set_straddling_half_warp(self):
        """Lanes 14 and 16 land in different half-warps: one shared
        64-byte segment still costs two transactions."""
        ctx = BlockContext(GTX280, 1, 32, check_contiguous_active=False)
        from repro.gpusim import GlobalArray
        g = GlobalArray(64)
        ctx.set_active(np.array([14, 16]))
        ctx.gload(g, np.array([0]), np.array([0, 1]))
        assert ctx.ledger.total().global_transactions == 2

    def test_full_stride2_front(self):
        """Stride-2 lane front over a warp: positions would pack into
        one half-warp group, lane ids span two."""
        ctx = BlockContext(GTX280, 1, 32, check_contiguous_active=False)
        from repro.gpusim import GlobalArray
        g = GlobalArray(64)
        lanes = np.arange(0, 32, 2)
        ctx.set_active(lanes)
        ctx.gload(g, np.array([0]), lanes)   # words 0..30, segments 0 and 1
        # lane-aware: half-warp {0..14} touches segment 0 (words 0-14)
        # and {16..30} touches segment 1 -> 2 transactions; the old
        # position binning agreed here, so also pin the boundary case:
        assert ctx.ledger.total().global_transactions == 2
        ctx2 = BlockContext(GTX280, 1, 32, check_contiguous_active=False)
        ctx2.set_active(np.array([15, 16]))
        ctx2.gload(g, np.array([0]), np.array([15, 16]))
        # one word on each side of a segment AND half-warp boundary,
        # two half-warps -> 2 transactions (position binning said 2 as
        # well only because the words differ; same-segment is the
        # discriminating case covered above).
        assert ctx2.ledger.total().global_transactions == 2

    def test_prefix_active_set_unchanged(self):
        """The shipped kernels' contiguous-prefix accesses are
        untouched by the fix (golden numbers hold)."""
        ctx = make_ctx(threads=64)
        from repro.gpusim import GlobalArray
        g = GlobalArray(128)
        ctx.set_active(64)
        ctx.gload(g, np.array([0, 64]), np.arange(64))
        assert ctx.ledger.total().global_transactions == 4
