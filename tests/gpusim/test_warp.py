"""Warp partitioning, contiguity checks, divergence accounting."""

import numpy as np

from repro.gpusim.device import GTX280
from repro.gpusim.warp import (divergence_penalty_warps, is_contiguous_prefix,
                               is_contiguous_range, issue_count,
                               warps_touched)


class TestWarpsTouched:
    def test_prefix(self):
        assert warps_touched(np.arange(64), GTX280) == 2

    def test_partial_warp(self):
        assert warps_touched(np.arange(5), GTX280) == 1

    def test_offset_range_spans_boundary(self):
        assert warps_touched(np.arange(16, 48), GTX280) == 2

    def test_empty(self):
        assert warps_touched(np.array([], dtype=int), GTX280) == 0


class TestContiguity:
    def test_prefix_true(self):
        assert is_contiguous_prefix(np.arange(7))
        assert is_contiguous_prefix(np.array([], dtype=int))

    def test_prefix_false_for_offset(self):
        assert not is_contiguous_prefix(np.arange(3, 10))

    def test_range_true_for_offset(self):
        assert is_contiguous_range(np.arange(3, 10))

    def test_range_false_for_gaps(self):
        assert not is_contiguous_range(np.array([0, 2, 4]))


class TestDivergence:
    def test_contiguous_prefix_no_penalty(self):
        assert divergence_penalty_warps(np.arange(40), GTX280) == 0

    def test_strided_lanes_penalised(self):
        """Every other lane active across 4 warps: work that a packed
        layout would do in 2 warps."""
        lanes = np.arange(0, 128, 2)
        assert divergence_penalty_warps(lanes, GTX280) > 0

    def test_empty_no_penalty(self):
        assert divergence_penalty_warps(np.array([], dtype=int), GTX280) == 0


class TestIssueCount:
    def test_rounds_up(self):
        assert issue_count(1, GTX280) == 1
        assert issue_count(33, GTX280) == 2
        assert issue_count(512, GTX280) == 16
