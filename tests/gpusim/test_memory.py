"""Bank-conflict and coalescing accounting."""

import numpy as np
import pytest

from repro.gpusim.device import GTX280
from repro.gpusim.memory import (GlobalArray, SharedMemorySpace,
                                 bank_conflict_cycles,
                                 coalesced_transactions,
                                 max_conflict_degree)


class TestBankConflicts:
    def test_unit_stride_conflict_free(self):
        addrs = np.arange(16)
        cycles, hw = bank_conflict_cycles(addrs, GTX280)
        assert (cycles, hw) == (1, 1)

    @pytest.mark.parametrize("stride,expected", [
        (2, 2), (4, 4), (8, 8), (16, 16), (32, 16), (64, 16),
    ])
    def test_power_of_two_strides(self, stride, expected):
        """Full half-warp with stride 2^k: min(2^k, 16)-way conflicts --
        the Fig 9 ladder."""
        addrs = np.arange(16) * stride
        assert max_conflict_degree(addrs, GTX280) == expected

    def test_same_address_broadcasts(self):
        """16 lanes reading one word: broadcast, no serialization."""
        addrs = np.zeros(16, dtype=int)
        cycles, hw = bank_conflict_cycles(addrs, GTX280)
        assert (cycles, hw) == (1, 1)

    def test_partial_half_warp_stride(self):
        """8 lanes at stride 64 words: all hit bank 0 -> 8-way
        (Fig 9's (8,1,8) label)."""
        addrs = np.arange(8) * 64
        assert max_conflict_degree(addrs, GTX280) == 8

    def test_two_half_warps_summed(self):
        addrs = np.arange(32) * 2  # 2-way in each half-warp
        cycles, hw = bank_conflict_cycles(addrs, GTX280)
        assert hw == 2
        assert cycles == 4

    def test_lane_id_grouping(self):
        """Lanes 8..23 split across two half-warps by lane id, not
        position."""
        lanes = np.arange(8, 24)
        addrs = np.arange(8, 24) * 16  # stride 16: same bank
        cycles, hw = bank_conflict_cycles(addrs, GTX280, lane_ids=lanes)
        assert hw == 2
        assert cycles == 8 + 8

    def test_empty(self):
        assert bank_conflict_cycles(np.array([], dtype=int), GTX280) == (0, 0)
        assert max_conflict_degree(np.array([], dtype=int), GTX280) == 0

    def test_odd_stride_conflict_free(self):
        """Odd strides are coprime with 16 banks -> no conflicts (the
        classic padding trick relies on this)."""
        for stride in (1, 3, 5, 7, 9, 15, 17):
            addrs = np.arange(16) * stride
            assert max_conflict_degree(addrs, GTX280) == 1, stride


class TestCoalescing:
    def test_contiguous_is_one_transaction(self):
        addrs = np.arange(16)
        assert coalesced_transactions(addrs, GTX280) == 1

    def test_contiguous_full_warp(self):
        addrs = np.arange(32)
        assert coalesced_transactions(addrs, GTX280) == 2  # two half-warps

    def test_strided_explodes(self):
        addrs = np.arange(16) * 16
        assert coalesced_transactions(addrs, GTX280) == 16

    def test_unaligned_but_within_segments(self):
        addrs = np.arange(16) + 8  # straddles two 16-word segments
        assert coalesced_transactions(addrs, GTX280) == 2


class TestSharedSpace:
    def test_bump_allocation(self):
        space = SharedMemorySpace(2, GTX280)
        a = space.allocate(100)
        b = space.allocate(28)
        assert a.base == 0
        assert b.base == 100
        assert space.words_allocated == 128
        assert space.bytes_allocated == 512

    def test_zero_allocation_rejected(self):
        space = SharedMemorySpace(1, GTX280)
        with pytest.raises(ValueError):
            space.allocate(0)

    def test_gather_scatter_roundtrip(self):
        space = SharedMemorySpace(3, GTX280)
        arr = space.allocate(8)
        vals = np.arange(12, dtype=np.float32).reshape(3, 4)
        arr.scatter(np.array([1, 3, 5, 7]), vals)
        got = arr.gather(np.array([1, 3, 5, 7]))
        np.testing.assert_array_equal(got, vals)

    def test_word_addrs_include_base(self):
        space = SharedMemorySpace(1, GTX280)
        space.allocate(10)
        arr = space.allocate(4)
        np.testing.assert_array_equal(arr.word_addrs(np.array([0, 1])),
                                      [10, 11])


class TestGlobalArray:
    def test_block_addressing(self):
        g = GlobalArray.from_array(np.arange(12, dtype=np.float32))
        bases = np.array([0, 4, 8])
        got = g.gather(bases, np.array([1, 3]))
        np.testing.assert_array_equal(got, [[1, 3], [5, 7], [9, 11]])

    def test_scatter(self):
        g = GlobalArray(8)
        g.scatter(np.array([0, 4]), np.array([0, 1]),
                  np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32))
        np.testing.assert_array_equal(g.data[[0, 1, 4, 5]], [1, 2, 3, 4])
