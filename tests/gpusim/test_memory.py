"""Bank-conflict and coalescing accounting."""

import numpy as np
import pytest

from repro.gpusim.device import GTX280
from repro.gpusim.memory import (GlobalArray, KernelError,
                                 SharedMemorySpace,
                                 bank_conflict_cycles,
                                 coalesced_transactions,
                                 max_conflict_degree)


class TestBankConflicts:
    def test_unit_stride_conflict_free(self):
        addrs = np.arange(16)
        cycles, hw = bank_conflict_cycles(addrs, GTX280)
        assert (cycles, hw) == (1, 1)

    @pytest.mark.parametrize("stride,expected", [
        (2, 2), (4, 4), (8, 8), (16, 16), (32, 16), (64, 16),
    ])
    def test_power_of_two_strides(self, stride, expected):
        """Full half-warp with stride 2^k: min(2^k, 16)-way conflicts --
        the Fig 9 ladder."""
        addrs = np.arange(16) * stride
        assert max_conflict_degree(addrs, GTX280) == expected

    def test_same_address_broadcasts(self):
        """16 lanes reading one word: broadcast, no serialization."""
        addrs = np.zeros(16, dtype=int)
        cycles, hw = bank_conflict_cycles(addrs, GTX280)
        assert (cycles, hw) == (1, 1)

    def test_partial_half_warp_stride(self):
        """8 lanes at stride 64 words: all hit bank 0 -> 8-way
        (Fig 9's (8,1,8) label)."""
        addrs = np.arange(8) * 64
        assert max_conflict_degree(addrs, GTX280) == 8

    def test_two_half_warps_summed(self):
        addrs = np.arange(32) * 2  # 2-way in each half-warp
        cycles, hw = bank_conflict_cycles(addrs, GTX280)
        assert hw == 2
        assert cycles == 4

    def test_lane_id_grouping(self):
        """Lanes 8..23 split across two half-warps by lane id, not
        position."""
        lanes = np.arange(8, 24)
        addrs = np.arange(8, 24) * 16  # stride 16: same bank
        cycles, hw = bank_conflict_cycles(addrs, GTX280, lane_ids=lanes)
        assert hw == 2
        assert cycles == 8 + 8

    def test_empty(self):
        assert bank_conflict_cycles(np.array([], dtype=int), GTX280) == (0, 0)
        assert max_conflict_degree(np.array([], dtype=int), GTX280) == 0

    def test_odd_stride_conflict_free(self):
        """Odd strides are coprime with 16 banks -> no conflicts (the
        classic padding trick relies on this)."""
        for stride in (1, 3, 5, 7, 9, 15, 17):
            addrs = np.arange(16) * stride
            assert max_conflict_degree(addrs, GTX280) == 1, stride


class TestCoalescing:
    def test_contiguous_is_one_transaction(self):
        addrs = np.arange(16)
        assert coalesced_transactions(addrs, GTX280) == 1

    def test_contiguous_full_warp(self):
        addrs = np.arange(32)
        assert coalesced_transactions(addrs, GTX280) == 2  # two half-warps

    def test_strided_explodes(self):
        addrs = np.arange(16) * 16
        assert coalesced_transactions(addrs, GTX280) == 16

    def test_unaligned_but_within_segments(self):
        addrs = np.arange(16) + 8  # straddles two 16-word segments
        assert coalesced_transactions(addrs, GTX280) == 2


class TestSharedSpace:
    def test_bump_allocation(self):
        space = SharedMemorySpace(2, GTX280)
        a = space.allocate(100)
        b = space.allocate(28)
        assert a.base == 0
        assert b.base == 100
        assert space.words_allocated == 128
        assert space.bytes_allocated == 512

    def test_zero_allocation_rejected(self):
        space = SharedMemorySpace(1, GTX280)
        with pytest.raises(ValueError):
            space.allocate(0)

    def test_gather_scatter_roundtrip(self):
        space = SharedMemorySpace(3, GTX280)
        arr = space.allocate(8)
        vals = np.arange(12, dtype=np.float32).reshape(3, 4)
        arr.scatter(np.array([1, 3, 5, 7]), vals)
        got = arr.gather(np.array([1, 3, 5, 7]))
        np.testing.assert_array_equal(got, vals)

    def test_word_addrs_include_base(self):
        space = SharedMemorySpace(1, GTX280)
        space.allocate(10)
        arr = space.allocate(4)
        np.testing.assert_array_equal(arr.word_addrs(np.array([0, 1])),
                                      [10, 11])


class TestGlobalArray:
    def test_block_addressing(self):
        g = GlobalArray.from_array(np.arange(12, dtype=np.float32))
        bases = np.array([0, 4, 8])
        got = g.gather(bases, np.array([1, 3]))
        np.testing.assert_array_equal(got, [[1, 3], [5, 7], [9, 11]])

    def test_scatter(self):
        g = GlobalArray(8)
        g.scatter(np.array([0, 4]), np.array([0, 1]),
                  np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32))
        np.testing.assert_array_equal(g.data[[0, 1, 4, 5]], [1, 2, 3, 4])


class TestLaneIdRobustness:
    """The hardware partitions by lane id; arrival order is irrelevant."""

    def test_shuffled_lane_ids_match_sorted(self):
        """An unordered lane set must not split one half-warp into
        several groups (the old contiguous-runs assumption)."""
        rng = np.random.default_rng(5)
        lanes = np.arange(16)
        addrs = np.arange(16) * 16          # one bank, 16-way conflict
        perm = rng.permutation(16)
        cycles, hw = bank_conflict_cycles(addrs[perm], GTX280,
                                          lane_ids=lanes[perm])
        assert (cycles, hw) == bank_conflict_cycles(addrs, GTX280,
                                                    lane_ids=lanes)
        assert (cycles, hw) == (16, 1)

    def test_shuffled_lanes_across_half_warps(self):
        rng = np.random.default_rng(9)
        lanes = np.arange(32)
        addrs = lanes * 2                   # 2-way in each half-warp
        perm = rng.permutation(32)
        cycles, hw = bank_conflict_cycles(addrs[perm], GTX280,
                                          lane_ids=lanes[perm])
        assert (cycles, hw) == (4, 2)
        assert max_conflict_degree(addrs[perm], GTX280,
                                   lane_ids=lanes[perm]) == 2

    def test_shuffled_lanes_coalescing(self):
        lanes = np.arange(32)
        addrs = lanes.copy()                # contiguous: 1 segment per hw
        perm = np.random.default_rng(11).permutation(32)
        assert coalesced_transactions(addrs[perm], GTX280,
                                      lane_ids=lanes[perm]) == 2

    def test_coalescing_groups_by_lane_id(self):
        """Stride-2 active set straddling a half-warp boundary: lanes
        14 and 16 are in different half-warps even though they sit in
        adjacent array positions, so one shared segment still costs
        two transactions."""
        lanes = np.array([14, 16])
        addrs = np.array([0, 1])            # same 64-byte segment
        assert coalesced_transactions(addrs, GTX280) == 1
        assert coalesced_transactions(addrs, GTX280, lane_ids=lanes) == 2

    def test_lane_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bank_conflict_cycles(np.arange(4), GTX280,
                                 lane_ids=np.arange(3))


class TestBoundsChecking:
    """Hardware has no index wraparound: OOB raises, never wraps."""

    def test_shared_negative_index(self):
        space = SharedMemorySpace(1, GTX280)
        arr = space.allocate(8)
        with pytest.raises(KernelError, match="out of bounds"):
            arr.gather(np.array([0, -1]))
        with pytest.raises(KernelError, match="out of bounds"):
            arr.scatter(np.array([-1]), np.array([[1.0]]))

    def test_shared_past_the_end(self):
        space = SharedMemorySpace(2, GTX280)
        arr = space.allocate(8)
        with pytest.raises(KernelError, match="out of bounds"):
            arr.gather(np.array([7, 8]))
        with pytest.raises(KernelError, match="out of bounds"):
            arr.scatter(np.array([8]), np.zeros((2, 1), dtype=np.float32))

    def test_global_negative_flat_address(self):
        g = GlobalArray.from_array(np.arange(8, dtype=np.float32))
        with pytest.raises(KernelError, match="out of bounds"):
            g.gather(np.array([0]), np.array([-1]))    # i-1 at i=0
        with pytest.raises(KernelError, match="out of bounds"):
            g.scatter(np.array([0]), np.array([-1]),
                      np.array([[1.0]], dtype=np.float32))

    def test_global_past_the_end(self):
        g = GlobalArray(8)
        with pytest.raises(KernelError, match="out of bounds"):
            g.gather(np.array([4]), np.array([3, 4]))
        with pytest.raises(KernelError, match="out of bounds"):
            g.scatter(np.array([4]), np.array([4]),
                      np.array([[1.0]], dtype=np.float32))

    def test_in_bounds_unchanged(self):
        g = GlobalArray.from_array(np.arange(8, dtype=np.float32))
        np.testing.assert_array_equal(
            g.gather(np.array([0, 4]), np.array([0, 3])),
            [[0, 3], [4, 7]])
