"""Property suite holding the vectorized engine bitwise-equal to the
per-lane reference oracle.

The contract under test (see ``docs/simulator.md``): for any kernel and
any launch geometry, ``launch(...)`` on the default
:class:`~repro.gpusim.engine.VectorizedEngine` and
:func:`~repro.gpusim.executor._reference_execute` (per-lane, per-block
Python loops, no memoization, no trace cache) produce

* bitwise-identical :class:`~repro.gpusim.counters.CounterLedger`\\ s
  (every integer counter *and* every float latency accumulator),
* bitwise-identical per-step records,
* bitwise-identical float32 outputs and solutions, and
* identical trace-cache signatures (the engine is deliberately not
  part of the launch signature).

Straddling/duplicated lane index patterns and divergent (non-prefix,
non-contiguous) active sets are exercised explicitly -- those are the
cases where a batched np.unique/reduceat implementation can silently
disagree with the per-lane definition.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpusim import GTX280, TESLA_C1060, ledgers_equal, use_cache
from repro.gpusim.engine import REFERENCE, VECTORIZED
from repro.gpusim.estimator import _resolve_kernel
from repro.gpusim.executor import _reference_execute, launch
from repro.gpusim.tracecache import launch_signature
from repro.kernels.common import GlobalSystemArrays
from repro.numerics.generators import diagonally_dominant_fluid

SOLVERS = ("cr", "pcr", "rd", "cr_pcr", "cr_rd")

#: Shared-array words used by the synthetic divergence kernel.
_WORDS = 96


def _assert_bitwise_equal(res_a, res_b):
    """Ledger, step records, and shared/thread geometry, exactly."""
    assert ledgers_equal(res_a.ledger, res_b.ledger) == []
    # ledgers_equal compares phase totals and step *counts*; the
    # engine contract is stronger -- every per-step snapshot matches
    # field-for-field, floats included (dataclass __eq__ is exact).
    assert res_a.ledger.step_records == res_b.ledger.step_records
    assert res_a.threads_per_block == res_b.threads_per_block
    assert res_a.shared_bytes == res_b.shared_bytes


def _run_both(method, n, num_systems, seed, device=GTX280):
    kernel, threads, extra, _m = _resolve_kernel(method, n, None)
    systems = diagonally_dominant_fluid(num_systems, n, seed=seed)

    gmem_vec = GlobalSystemArrays.from_systems(systems)
    with use_cache(None):
        vec = launch(kernel, num_blocks=num_systems,
                     threads_per_block=threads, device=device,
                     gmem=gmem_vec, **extra)

    gmem_ref = GlobalSystemArrays.from_systems(systems)
    ref = _reference_execute(kernel, num_blocks=num_systems,
                             threads_per_block=threads, device=device,
                             gmem=gmem_ref, **extra)
    return vec, ref, gmem_vec, gmem_ref


class TestSolverEquivalence:
    """All five solvers, random sizes and batches: 250 cases."""

    @pytest.mark.parametrize("method", SOLVERS)
    @settings(max_examples=50, deadline=None)
    @given(n_exp=st.integers(min_value=2, max_value=6),
           num_systems=st.integers(min_value=1, max_value=3),
           seed=st.integers(min_value=0, max_value=2**16))
    def test_bitwise_equal(self, method, n_exp, num_systems, seed):
        n = 2 ** n_exp
        vec, ref, gmem_vec, gmem_ref = _run_both(method, n, num_systems,
                                                 seed)
        _assert_bitwise_equal(vec, ref)
        sol_vec, sol_ref = gmem_vec.solution(), gmem_ref.solution()
        assert sol_vec.dtype == sol_ref.dtype == np.float32
        # Bitwise, not just value-equal: NaN placement and signed
        # zeros must agree too.
        assert np.array_equal(sol_vec.view(np.uint32),
                              sol_ref.view(np.uint32))

    def test_other_device_spec(self):
        vec, ref, _gv, _gr = _run_both("cr", 64, 2, 7, device=TESLA_C1060)
        _assert_bitwise_equal(vec, ref)


def _divergent_kernel(ctx, lanes, idx, scale):
    """Synthetic kernel exercising non-contiguous active sets and
    duplicate/straddling shared index patterns under both engines."""
    lanes = np.asarray(lanes, dtype=np.int64)
    idx = np.asarray(idx, dtype=np.int64)
    arr = ctx.shared(_WORDS)
    out = ctx.shared(_WORDS)
    with ctx.phase("seed"):
        with ctx.step():
            full = ctx.set_active(ctx.threads_per_block)
            ctx.sstore(arr, full % _WORDS,
                       np.broadcast_to((full % 7).astype(np.float32),
                                       (ctx.num_blocks, full.size)))
            ctx.sync()
    with ctx.phase("divergent"):
        with ctx.step():
            ctx.set_active(lanes)
            vals = ctx.sload(arr, idx)
            ctx.ops(3, divs=1)
            with np.errstate(divide="ignore", invalid="ignore"):
                vals = vals * np.float32(scale) + np.float32(1.0) / vals
            # Duplicate idx entries make this a write race; both
            # engines must resolve it identically (last lane wins).
            ctx.sstore(out, idx, vals)
            ctx.sync()
    with ctx.phase("drain"):
        with ctx.step():
            full = ctx.set_active(ctx.threads_per_block)
            return ctx.sload(out, full % _WORDS)


# Lane sets are drawn non-contiguous and unsorted-free (set_active
# takes ascending unique ids); idx patterns may repeat words and
# straddle half-warp boundaries arbitrarily.
_lane_sets = st.lists(st.integers(min_value=0, max_value=63),
                      min_size=1, max_size=48, unique=True).map(sorted)


class TestDivergentLaneSets:
    """Arbitrary active subsets with duplicate index patterns: 150
    cases."""

    @settings(max_examples=150, deadline=None)
    @given(lanes=_lane_sets,
           data=st.data(),
           num_blocks=st.integers(min_value=1, max_value=3),
           scale=st.floats(min_value=-4.0, max_value=4.0, width=32))
    def test_bitwise_equal(self, lanes, data, num_blocks, scale):
        idx = data.draw(st.lists(
            st.integers(min_value=0, max_value=_WORDS - 1),
            min_size=len(lanes), max_size=len(lanes)))
        kwargs = dict(num_blocks=num_blocks, threads_per_block=64,
                      check_contiguous_active=False,
                      lanes=tuple(lanes), idx=tuple(idx), scale=scale)
        with use_cache(None):
            vec = launch(_divergent_kernel, **kwargs)
        ref = _reference_execute(_divergent_kernel, **kwargs)
        _assert_bitwise_equal(vec, ref)
        assert np.array_equal(
            np.asarray(vec.outputs, dtype=np.float32).view(np.uint32),
            np.asarray(ref.outputs, dtype=np.float32).view(np.uint32))

    def test_half_warp_straddle(self):
        """A lane set crossing the 16-lane conflict-resolution boundary
        with a pattern whose duplicates land in one bank."""
        lanes = [14, 15, 16, 17, 40]
        idx = [0, 16, 16, 32, 0]       # bank 0 collisions across groups
        kwargs = dict(num_blocks=2, threads_per_block=64,
                      check_contiguous_active=False,
                      lanes=tuple(lanes), idx=tuple(idx), scale=1.5)
        with use_cache(None):
            vec = launch(_divergent_kernel, **kwargs)
        ref = _reference_execute(_divergent_kernel, **kwargs)
        _assert_bitwise_equal(vec, ref)


class TestShiftInvariance:
    """The memo keys rest on two theorems; check them against the
    oracle's uncached costs: 100 cases."""

    @settings(max_examples=50, deadline=None)
    @given(pattern=st.lists(st.integers(min_value=0, max_value=255),
                            min_size=1, max_size=32),
           shift=st.integers(min_value=0, max_value=512))
    def test_shared_cost_shift_invariant(self, pattern, shift):
        idx = np.asarray(pattern, dtype=np.int64)
        info = REFERENCE.prefix_info(idx.size, GTX280)
        base = REFERENCE.shared_cost(idx, info, GTX280)
        shifted = REFERENCE.shared_cost(idx + shift, info, GTX280)
        assert base == shifted
        # And the vectorized memo (keyed canonically) agrees with the
        # oracle on the shifted pattern.
        assert VECTORIZED.shared_cost(idx + shift, info, GTX280) == shifted

    @settings(max_examples=50, deadline=None)
    @given(pattern=st.lists(st.integers(min_value=0, max_value=255),
                            min_size=1, max_size=32),
           segments=st.integers(min_value=0, max_value=64))
    def test_global_cost_segment_shift_invariant(self, pattern, segments):
        words_per_seg = (GTX280.coalesce_segment_bytes
                         // GTX280.bank_width_bytes)
        idx = np.asarray(pattern, dtype=np.int64)
        info = REFERENCE.prefix_info(idx.size, GTX280)
        base = REFERENCE.global_cost(idx, info, GTX280)
        shifted_idx = idx + segments * words_per_seg
        assert REFERENCE.global_cost(shifted_idx, info, GTX280) == base
        assert VECTORIZED.global_cost(shifted_idx, info, GTX280) == base


class TestTraceSignatures:
    def test_engine_not_in_signature(self):
        """Both engines hash to the same launch signature, so a trace
        recorded under one is a valid cache hit for the other."""
        kernel, threads, extra, _m = _resolve_kernel("cr", 32, None)
        systems = diagonally_dominant_fluid(2, 32, seed=0)
        sigs = []
        for _engine in ("vectorized", "reference"):
            gmem = GlobalSystemArrays.from_systems(systems)
            sigs.append(launch_signature(
                kernel, num_blocks=2, threads_per_block=threads,
                device=GTX280, dtype=np.float32,
                check_contiguous_active=True,
                kernel_args={"gmem": gmem, **extra}))
        assert sigs[0] is not None
        assert sigs[0] == sigs[1]

    @settings(max_examples=25, deadline=None)
    @given(n_exp=st.integers(min_value=2, max_value=6),
           num_systems=st.integers(min_value=1, max_value=3))
    def test_signature_deterministic(self, n_exp, num_systems):
        n = 2 ** n_exp
        kernel, threads, extra, _m = _resolve_kernel("pcr", n, None)
        systems = diagonally_dominant_fluid(num_systems, n, seed=1)
        gmem = GlobalSystemArrays.from_systems(systems)
        args = dict(num_blocks=num_systems, threads_per_block=threads,
                    device=GTX280, dtype=np.float32,
                    check_contiguous_active=True,
                    kernel_args={"gmem": gmem, **extra})
        assert launch_signature(kernel, **args) == \
            launch_signature(kernel, **args)
