"""The code shown in docs/simulator.md must actually run.

Documentation examples rot silently; this test executes the guide's
worked kernel verbatim-in-spirit and checks both its functional result
and the properties the guide claims (conflict-free, fully coalesced).
"""

import numpy as np
import pytest

from repro.gpusim import gt200_cost_model, launch
from repro.kernels.common import GlobalSystemArrays
from repro.numerics.generators import diagonally_dominant_fluid


def reverse_kernel(ctx, gmem):
    """The docs/simulator.md worked example: reverse each system's d."""
    n = gmem.n
    buf = ctx.shared(n)
    with ctx.phase("load"):
        ctx.set_active(n)
        i = ctx.lanes
        ctx.sstore(buf, i, ctx.gload(gmem.d, gmem.block_bases, i))
        ctx.sync()
    with ctx.phase("store"):
        ctx.set_active(n)
        i = ctx.lanes
        vals = ctx.sload(buf, n - 1 - i)
        ctx.gstore(gmem.x, gmem.block_bases, i, vals)


@pytest.fixture(scope="module")
def run():
    systems = diagonally_dominant_fluid(4, 64, seed=0)
    gmem = GlobalSystemArrays.from_systems(systems)
    result = launch(reverse_kernel, num_blocks=4, threads_per_block=64,
                    gmem=gmem)
    return systems, gmem, result


class TestGuideExample:
    def test_functional(self, run):
        systems, gmem, _res = run
        np.testing.assert_array_equal(gmem.solution(),
                                      systems.d[:, ::-1])

    def test_reversed_read_is_conflict_free(self, run):
        """The guide's claim: a reversed unit-stride gather still maps
        one word per bank."""
        _s, _g, res = run
        for name, pc in res.ledger.phases.items():
            assert pc.conflict_degree == pytest.approx(1.0), name

    def test_fully_coalesced(self, run):
        _s, _g, res = run
        total = res.ledger.total()
        words_per_seg = 16
        assert total.global_transactions == total.global_words // words_per_seg

    def test_costable(self, run):
        _s, _g, res = run
        rep = gt200_cost_model().report(res)
        assert rep.total_ms > 0
        assert set(rep.phases) == {"load", "store"}
