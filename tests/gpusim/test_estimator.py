"""Differential tests of the analytical fast-path estimator.

:mod:`repro.gpusim.estimator` promises (module docstring) that the
charge-only ``functional=False`` pass reproduces a functional launch's
ledger bitwise, that :func:`estimate_report` mirrors
:func:`repro.analysis.timing.modeled_grid_timing` float-for-float, and
that the paper's Table 1 closed forms hold *exactly* -- including the
headline ``28n - 38`` shared words, ``2 log2 n - 1`` steps and 160
global transactions at n = 512 for CR.  Every promise is enforced
here.
"""

import numpy as np
import pytest

from repro.gpusim import ledgers_equal, use_cache
from repro.gpusim.device import GTX280, TESLA_C1060
from repro.gpusim.estimator import (analytic_launch, clear_estimator_cache,
                                    closed_form_counters, estimate_ms,
                                    estimate_report)
from repro.gpusim.serialize import ledger_to_dict
from repro.kernels.api import run_kernel
from repro.numerics.generators import diagonally_dominant_fluid

SOLVERS = ("cr", "pcr", "rd", "cr_pcr", "cr_rd")
SIZES = (8, 32, 128, 512)


def _functional(method, n, num_systems=2, device=GTX280):
    systems = diagonally_dominant_fluid(num_systems, n, seed=3)
    with use_cache(None):
        _x, res = run_kernel(method, systems, device=device)
    return res


class TestAnalyticLedger:
    """The analytic ledger is the functional ledger, bit for bit."""

    @pytest.mark.parametrize("method", SOLVERS)
    @pytest.mark.parametrize("n", SIZES)
    def test_bitwise_across_grid(self, method, n):
        analytic = analytic_launch(method, n)
        functional = _functional(method, n)
        assert ledgers_equal(analytic.ledger, functional.ledger) == []
        assert analytic.ledger.step_records == \
            functional.ledger.step_records
        # Serialized form too: what the checkpoint digests hash.
        assert ledger_to_dict(analytic.ledger) == \
            ledger_to_dict(functional.ledger)
        assert analytic.threads_per_block == functional.threads_per_block
        assert analytic.shared_bytes == functional.shared_bytes

    def test_independent_of_batch_size(self):
        """Per-block charges do not depend on how many systems ride
        the grid, so one stub block covers them all."""
        analytic = analytic_launch("cr", 64)
        for num_systems in (1, 5, 17):
            functional = _functional("cr", 64, num_systems=num_systems)
            assert ledgers_equal(analytic.ledger,
                                 functional.ledger) == []

    def test_other_device(self):
        analytic = analytic_launch("pcr", 64, device=TESLA_C1060)
        functional = _functional("pcr", 64, device=TESLA_C1060)
        assert ledgers_equal(analytic.ledger, functional.ledger) == []

    def test_memoized_and_clearable(self):
        clear_estimator_cache()
        first = analytic_launch("rd", 32)
        assert analytic_launch("rd", 32) is first
        clear_estimator_cache()
        again = analytic_launch("rd", 32)
        assert again is not first
        assert ledgers_equal(again.ledger, first.ledger) == []

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            analytic_launch("thomas_gpu", 32)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            analytic_launch("cr", 48)


class TestTimingMirror:
    """estimate_report == modeled_grid_timing, float for float."""

    @pytest.mark.parametrize("method", SOLVERS)
    @pytest.mark.parametrize("n,num_systems",
                             [(32, 7), (128, 100), (512, 1000)])
    def test_total_and_steps_exact(self, method, n, num_systems):
        from repro.analysis.timing import modeled_grid_timing

        with use_cache(None):
            modeled = modeled_grid_timing(method, n, num_systems).report
        analytic = estimate_report(method, n, num_systems)
        # Exact equality: both paths run the same float expressions in
        # the same order on bitwise-equal ledgers.
        assert analytic.total_ms == modeled.total_ms
        assert analytic.grid_scale == modeled.grid_scale
        assert analytic.per_step == modeled.per_step
        assert estimate_ms(method, n, num_systems) == modeled.total_ms


class TestClosedForms:
    """Paper Table 1 totals, exact (not leading-order)."""

    @pytest.mark.parametrize("n", (8, 64, 512))
    def test_cr_matches_ledger(self, n):
        forms = closed_form_counters("cr", n)
        total = analytic_launch("cr", n).ledger.total()
        assert total.steps == forms["steps"] == 2 * (n.bit_length() - 1) - 1
        assert total.shared_words == forms["shared_words"] == 28 * n - 38
        assert total.global_transactions == forms["global_transactions"]
        assert total.global_words == forms["global_words"] == 5 * n

    def test_cr_160_transactions_at_512(self):
        """The paper's headline coalesced staging cost."""
        assert closed_form_counters("cr", 512)["global_transactions"] == 160
        assert analytic_launch(
            "cr", 512).ledger.total().global_transactions == 160

    @pytest.mark.parametrize("n", (8, 64, 512))
    def test_pcr_and_rd_step_counts(self, n):
        L = n.bit_length() - 1
        assert closed_form_counters("pcr", n)["steps"] == L
        assert closed_form_counters("rd", n)["steps"] == L + 2
        assert analytic_launch("pcr", n).ledger.total().steps == L
        assert analytic_launch("rd", n).ledger.total().steps == L + 2

    def test_closed_form_rejects_bad_input(self):
        with pytest.raises(ValueError):
            closed_form_counters("cr", 48)
        with pytest.raises(ValueError, match="no closed form"):
            closed_form_counters("cr_pcr", 64)


class TestSideEffectFreedom:
    def test_no_telemetry_emitted(self):
        from repro import telemetry

        clear_estimator_cache()
        with telemetry.collect() as col:
            analytic_launch("cr", 64)
            estimate_ms("cr", 64, 100)
        snap = col.metrics.snapshot()
        assert not any("trace_cache" in name or "sim." in name
                       for name in snap), snap

    def test_trace_cache_untouched(self):
        from repro.gpusim import TraceCache

        clear_estimator_cache()
        cache = TraceCache()
        with use_cache(cache):
            analytic_launch("pcr", 128)
        assert cache.hits == cache.misses == len(cache) == 0

    def test_estimate_is_float_and_positive(self):
        ms = estimate_ms("cr_rd", 512, 1000)
        assert isinstance(ms, float) and ms > 0
