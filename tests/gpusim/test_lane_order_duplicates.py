"""Regression: duplicate lane ids in one access instruction.

One access instruction carries exactly one address per lane.  The
half-warp grouping used to accept a repeated lane id silently,
attributing two addresses to one lane and corrupting both the bank
conflict and the transaction counts; it must raise ``KernelError``.
"""

import numpy as np
import pytest

from repro.gpusim import (GTX280, KernelError, bank_conflict_cycles,
                          coalesced_transactions)


class TestDuplicateLaneIds:
    def test_conflicts_reject_duplicates(self):
        addrs = np.array([0, 1, 2, 3])
        lanes = np.array([0, 1, 1, 3])
        with pytest.raises(KernelError, match="duplicate lane id 1"):
            bank_conflict_cycles(addrs, GTX280, lane_ids=lanes)

    def test_transactions_reject_duplicates(self):
        addrs = np.array([0, 16, 32])
        lanes = np.array([2, 2, 5])
        with pytest.raises(KernelError, match="duplicate lane id 2"):
            coalesced_transactions(addrs, GTX280, lane_ids=lanes)

    def test_unsorted_duplicates_caught_after_ordering(self):
        """Duplicates split by other lanes still collide post-sort."""
        addrs = np.array([0, 1, 2])
        lanes = np.array([7, 0, 7])
        with pytest.raises(KernelError, match="duplicate lane id 7"):
            coalesced_transactions(addrs, GTX280, lane_ids=lanes)

    def test_distinct_lanes_still_fine(self):
        addrs = np.arange(16)
        lanes = np.arange(16)[::-1].copy()     # unordered but distinct
        assert coalesced_transactions(addrs, GTX280, lane_ids=lanes) == 1

    def test_default_lane_range_unaffected(self):
        assert coalesced_transactions(np.arange(16), GTX280) == 1
