"""Property-based tests of the simulator's accounting primitives.

The bank-conflict and coalescing rules are checked against brute-force
reference implementations on random address patterns; the counter
algebra (merge/scaled) against direct arithmetic.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.gpusim import GTX280
from repro.gpusim.counters import PhaseCounters
from repro.gpusim.memory import (bank_conflict_cycles,
                                 coalesced_transactions,
                                 max_conflict_degree)

addresses = st.lists(st.integers(min_value=0, max_value=2047),
                     min_size=1, max_size=64)


def brute_force_conflicts(addrs, device):
    """Reference: group lanes 0..k-1 by half-warp, count distinct words
    per bank, take the max per group, sum."""
    g = device.conflict_granularity
    nb = device.shared_mem_banks
    cycles = 0
    groups = 0
    for start in range(0, len(addrs), g):
        chunk = addrs[start:start + g]
        groups += 1
        per_bank = {}
        for w in chunk:
            per_bank.setdefault(w % nb, set()).add(w)
        cycles += max(len(v) for v in per_bank.values())
    return cycles, groups


def brute_force_transactions(addrs, device):
    g = device.conflict_granularity
    seg = device.coalesce_segment_bytes // device.bank_width_bytes
    total = 0
    for start in range(0, len(addrs), g):
        chunk = addrs[start:start + g]
        total += len({w // seg for w in chunk})
    return total


class TestConflictAccounting:
    @settings(max_examples=200, deadline=None)
    @given(addrs=addresses)
    def test_matches_brute_force(self, addrs):
        got = bank_conflict_cycles(np.array(addrs), GTX280)
        assert got == brute_force_conflicts(addrs, GTX280)

    @settings(max_examples=100, deadline=None)
    @given(addrs=addresses)
    def test_cycles_bounded(self, addrs):
        cycles, groups = bank_conflict_cycles(np.array(addrs), GTX280)
        assert groups <= cycles <= len(addrs)
        assert max_conflict_degree(np.array(addrs), GTX280) <= \
            GTX280.conflict_granularity

    @settings(max_examples=100, deadline=None)
    @given(addrs=addresses)
    def test_broadcast_invariance(self, addrs):
        """Replacing every address with one value gives group-count
        cycles (pure broadcast)."""
        uniform = np.full(len(addrs), addrs[0])
        cycles, groups = bank_conflict_cycles(uniform, GTX280)
        assert cycles == groups

    @settings(max_examples=100, deadline=None)
    @given(addrs=addresses, shift=st.integers(min_value=0, max_value=160))
    def test_translation_invariance_by_bank_multiple(self, addrs, shift):
        """Shifting all addresses by a multiple of the bank count does
        not change conflict structure."""
        base = np.array(addrs)
        shifted = base + shift * GTX280.shared_mem_banks
        assert bank_conflict_cycles(base, GTX280)[0] == \
            bank_conflict_cycles(shifted, GTX280)[0]


class TestCoalescingAccounting:
    @settings(max_examples=200, deadline=None)
    @given(addrs=addresses)
    def test_matches_brute_force(self, addrs):
        got = coalesced_transactions(np.array(addrs), GTX280)
        assert got == brute_force_transactions(addrs, GTX280)

    @settings(max_examples=100, deadline=None)
    @given(addrs=addresses)
    def test_bounds(self, addrs):
        t = coalesced_transactions(np.array(addrs), GTX280)
        groups = -(-len(addrs) // GTX280.conflict_granularity)
        assert groups <= t <= len(addrs)


class TestCounterAlgebra:
    @settings(max_examples=100, deadline=None)
    @given(vals=st.lists(st.integers(min_value=0, max_value=1000),
                         min_size=10, max_size=10),
           f=st.floats(min_value=0.0, max_value=8.0))
    def test_scaled_is_linear(self, vals, f):
        pc = PhaseCounters(
            shared_words=vals[0], shared_cycles=vals[1],
            shared_instructions=vals[2], global_words=vals[3],
            global_transactions=vals[4], flops=vals[5], divs=vals[6],
            warp_instructions=vals[7], syncs=vals[8], steps=vals[9])
        scaled = pc.scaled(f)
        assert scaled.flops == vals[5] * f
        assert scaled.steps == vals[9] * f
        assert scaled.max_active_threads == pc.max_active_threads

    @settings(max_examples=100, deadline=None)
    @given(a=st.integers(min_value=0, max_value=100),
           b=st.integers(min_value=0, max_value=100))
    def test_merge_adds(self, a, b):
        p = PhaseCounters(flops=a, steps=a)
        q = PhaseCounters(flops=b, steps=b)
        p.merge(q)
        assert p.flops == a + b
        assert p.steps == a + b
