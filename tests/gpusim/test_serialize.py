"""Trace serialization round-trips and diffing."""

import json

import numpy as np
import pytest

from repro.gpusim import gt200_cost_model, launch
from repro.gpusim.counters import PhaseCounters
from repro.gpusim.serialize import (launch_to_dict, launch_to_json,
                                    ledger_from_dict, ledger_to_dict,
                                    ledgers_equal, phase_from_dict,
                                    phase_to_dict, timing_report_from_dict,
                                    timing_report_to_dict)


def sample_launch():
    def kernel(ctx):
        arr = ctx.shared(64)
        with ctx.phase("work"):
            ctx.set_active(32)
            with ctx.step():
                ctx.sload(arr, np.arange(32))
                ctx.ops(5, divs=1)
                ctx.sync()
    return launch(kernel, num_blocks=3, threads_per_block=32)


class TestRoundTrip:
    def test_phase_roundtrip(self):
        pc = PhaseCounters(shared_words=7, flops=12, latency_units=0.5)
        assert phase_from_dict(phase_to_dict(pc)).as_dict() == pc.as_dict()

    def test_ledger_roundtrip(self):
        res = sample_launch()
        d = ledger_to_dict(res.ledger)
        back = ledger_from_dict(d)
        assert not ledgers_equal(res.ledger, back)

    def test_json_is_valid_and_stable(self):
        res = sample_launch()
        text = launch_to_json(res)
        parsed = json.loads(text)
        assert parsed["num_blocks"] == 3
        assert parsed["ledger"]["phases"]["work"]["flops"] == 5 * 32

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown counter"):
            phase_from_dict({"flops": 1, "bogus": 2})

    def test_step_records_roundtrip(self):
        res = sample_launch()
        assert res.ledger.step_records, "sample kernel records one step"
        back = ledger_from_dict(ledger_to_dict(res.ledger))
        assert len(back.step_records) == len(res.ledger.step_records)
        for (p0, i0, c0), (p1, i1, c1) in zip(res.ledger.step_records,
                                              back.step_records):
            assert (p0, i0) == (p1, i1)
            assert c0.as_dict() == c1.as_dict()

    def test_step_records_in_launch_dict(self):
        d = launch_to_dict(sample_launch())
        steps = d["ledger"]["steps"]
        assert steps[0]["phase"] == "work"
        assert steps[0]["index"] == 0
        assert steps[0]["counters"]["shared_words"] > 0


class TestTimingReportRoundTrip:
    def test_report_roundtrip(self):
        res = sample_launch()
        rep = gt200_cost_model().report(res)
        back = timing_report_from_dict(timing_report_to_dict(rep))
        assert set(back.phases) == set(rep.phases)
        for name, pt in rep.phases.items():
            assert back.phases[name].total_ms == pytest.approx(pt.total_ms)
        assert back.per_step == rep.per_step
        assert back.launch_overhead_ms == rep.launch_overhead_ms
        assert back.grid_scale == rep.grid_scale
        assert back.blocks_per_sm == rep.blocks_per_sm
        assert back.waves == rep.waves
        assert back.total_ms == pytest.approx(rep.total_ms)

    def test_report_dict_is_json_stable(self):
        rep = gt200_cost_model().report(sample_launch())
        d = timing_report_to_dict(rep)
        assert json.loads(json.dumps(d)) == d


class TestDiff:
    def test_equal_ledgers_no_diffs(self):
        res = sample_launch()
        assert ledgers_equal(res.ledger, res.ledger) == []

    def test_counter_drift_reported(self):
        res = sample_launch()
        other = ledger_from_dict(ledger_to_dict(res.ledger))
        other.phases["work"].flops += 1
        diffs = ledgers_equal(res.ledger, other)
        assert any("work.flops" in d for d in diffs)

    def test_missing_phase_reported(self):
        res = sample_launch()
        other = ledger_from_dict(ledger_to_dict(res.ledger))
        other.phases["extra"] = PhaseCounters()
        diffs = ledgers_equal(res.ledger, other)
        assert any("extra" in d for d in diffs)

    def test_rel_tol_loosens_floats(self):
        res = sample_launch()
        other = ledger_from_dict(ledger_to_dict(res.ledger))
        other.phases["work"].latency_units *= 1.0000001
        assert ledgers_equal(res.ledger, other, rel_tol=1e-5) == []
        assert ledgers_equal(res.ledger, other) != []
