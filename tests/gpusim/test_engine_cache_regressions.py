"""Regressions for the engine/cache/estimator seams.

Three properties the vectorized-engine refactor must not disturb:

1. The execution engine is *not* part of the trace-cache launch
   signature -- a trace recorded under one engine is a valid,
   bitwise-identical hit for the other.
2. ``REPRO_TRACE_CACHE=0`` still disables the process default cache
   (checked in a subprocess, since the flag is read at import).
3. The serve scheduler's admission estimates now come from the
   analytic estimator: no functional launch, no trace-cache traffic,
   same modeled milliseconds as before the switch.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.gpusim import TraceCache, ledgers_equal, use_cache
from repro.kernels.api import run_kernel
from repro.numerics.generators import diagonally_dominant_fluid


class TestCrossEngineCacheHits:
    @pytest.mark.parametrize("first,second", [("vectorized", "reference"),
                                              ("reference", "vectorized")])
    def test_trace_recorded_under_one_engine_hits_the_other(self, first,
                                                            second):
        from repro.gpusim.estimator import _resolve_kernel
        from repro.gpusim.executor import launch
        from repro.kernels.common import GlobalSystemArrays

        kernel, threads, extra, _m = _resolve_kernel("cr", 32, None)
        systems = diagonally_dominant_fluid(2, 32, seed=5)
        cache = TraceCache()

        def go(engine):
            gmem = GlobalSystemArrays.from_systems(systems)
            with use_cache(cache):
                return launch(kernel, num_blocks=2,
                              threads_per_block=threads, gmem=gmem,
                              engine=engine, **extra)

        cold = go(first)
        warm = go(second)
        assert not cold.trace_cached
        assert warm.trace_cached
        assert cache.hits == 1 and cache.misses == 1
        assert ledgers_equal(cold.ledger, warm.ledger) == []
        assert cold.ledger.step_records == warm.ledger.step_records

    def test_cached_ledger_is_private_per_hit(self):
        """Mutating a returned ledger must not corrupt later hits."""
        systems = diagonally_dominant_fluid(2, 16, seed=0)
        cache = TraceCache()
        with use_cache(cache):
            _x, first = run_kernel("pcr", systems)
            _x, second = run_kernel("pcr", systems)
            second.ledger.total()  # materialize
            second.ledger.phases.clear()
            _x, third = run_kernel("pcr", systems)
        assert ledgers_equal(first.ledger, third.ledger) == []


class TestEnvFlagBypass:
    def _probe(self, env_value):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        if env_value is None:
            env.pop("REPRO_TRACE_CACHE", None)
        else:
            env["REPRO_TRACE_CACHE"] = env_value
        code = (
            "import json\n"
            "from repro.gpusim import tracecache, ledgers_equal\n"
            "from repro.kernels.api import run_kernel\n"
            "from repro.numerics.generators import "
            "diagonally_dominant_fluid\n"
            "systems = diagonally_dominant_fluid(2, 16, seed=0)\n"
            "_x, a = run_kernel('cr', systems)\n"
            "_x, b = run_kernel('cr', systems)\n"
            "cache = tracecache.default_cache()\n"
            "print(json.dumps({\n"
            "    'has_cache': cache is not None,\n"
            "    'second_cached': b.trace_cached,\n"
            "    'equal': ledgers_equal(a.ledger, b.ledger) == []}))\n")
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True,
                             cwd=os.getcwd())
        return json.loads(out.stdout.strip().splitlines()[-1])

    def test_flag_zero_disables_default_cache(self):
        probe = self._probe("0")
        assert probe == {"has_cache": False, "second_cached": False,
                         "equal": True}

    def test_flag_absent_enables_default_cache(self):
        probe = self._probe(None)
        assert probe == {"has_cache": True, "second_cached": True,
                         "equal": True}


class TestServeEstimatePath:
    def _scheduler(self):
        from repro.gpusim import make_pool
        from repro.serve import BatchScheduler

        pool = make_pool(2, seed=11)
        return BatchScheduler(pool)

    def _job(self, n=64, num_systems=8, chunk_size=2):
        from repro.serve import SolveJob

        systems = diagonally_dominant_fluid(num_systems, n, seed=4)
        return SolveJob(job_id="est", method="cr", systems=systems,
                        chunk_size=chunk_size)

    def test_estimate_is_analytic_no_launch(self):
        """Admission estimates must not execute kernels: the pool's
        trace cache sees no traffic and no launch telemetry fires."""
        sched = self._scheduler()
        job = self._job()
        cache = sched.pool.trace_cache
        before = (cache.hits, cache.misses) if cache is not None else None
        ms = sched.estimate_job_ms(job)
        assert ms > 0
        if cache is not None:
            assert (cache.hits, cache.misses) == before

    def test_estimate_matches_estimator_directly(self):
        from repro.gpusim.estimator import estimate_ms

        sched = self._scheduler()
        job = self._job(n=64, num_systems=8, chunk_size=2)
        per_chunk = estimate_ms("cr", 64, 2)
        expected = per_chunk * job.num_chunks / len(sched.pool)
        assert sched.estimate_job_ms(job) == expected

    def test_estimate_cache_keyed_per_shape(self):
        sched = self._scheduler()
        sched.estimate_job_ms(self._job(n=64))
        sched.estimate_job_ms(self._job(n=64))
        assert len(sched._estimate_cache) == 1
        sched.estimate_job_ms(self._job(n=32))
        assert len(sched._estimate_cache) == 2

    def test_run_job_still_solves_correctly(self):
        """End to end: admission via the analytic path, execution via
        the vectorized engine, solutions still match the oracle."""
        from repro.verify.oracle import compare_to_oracle

        sched = self._scheduler()
        job = self._job(n=32, num_systems=4)
        report = sched.run_job(job)
        assert report.completed and report.outcome == "ok"
        comparison = compare_to_oracle(job.systems, report.x)
        assert comparison.rel_residual_max < 1e-4
