"""Vectorized conflict/coalescing arithmetic vs the retained loop oracles.

The pure-numpy implementations of ``bank_conflict_cycles``,
``max_conflict_degree`` and ``coalesced_transactions`` must agree with
the original loop implementations (kept as ``_reference_*``) on every
pattern class the kernels produce: random, strided ``2^k``, broadcast,
and ragged active-lane subsets -- with ordered, shuffled, and absent
lane ids.
"""

import numpy as np
import pytest

from repro.gpusim.device import G80_8800GTX, GTX280, TESLA_C1060
from repro.gpusim.memory import (_reference_bank_conflict_cycles,
                                 _reference_coalesced_transactions,
                                 _reference_max_conflict_degree,
                                 bank_conflict_cycles,
                                 coalesced_transactions,
                                 max_conflict_degree)

DEVICES = (GTX280, G80_8800GTX, TESLA_C1060)


def _check_all(addrs, device, lane_ids):
    """Assert every vectorized function matches its oracle."""
    assert bank_conflict_cycles(addrs, device, lane_ids=lane_ids) == \
        _reference_bank_conflict_cycles(addrs, device, lane_ids=lane_ids)
    assert max_conflict_degree(addrs, device, lane_ids=lane_ids) == \
        _reference_max_conflict_degree(addrs, device, lane_ids=lane_ids)
    assert coalesced_transactions(addrs, device, lane_ids=lane_ids) == \
        _reference_coalesced_transactions(addrs, device, lane_ids=lane_ids)


def _random_case(rng, device):
    """One seeded pattern: random size, addresses, and lane treatment."""
    max_threads = device.max_threads_per_block
    size = int(rng.integers(1, max_threads + 1))
    kind = rng.integers(0, 4)
    if kind == 0:                               # uniform random addresses
        addrs = rng.integers(0, 4096, size=size)
    elif kind == 1:                             # strided 2^k
        stride = 2 ** int(rng.integers(0, 8))
        addrs = np.arange(size) * stride + int(rng.integers(0, 64))
    elif kind == 2:                             # broadcast-heavy
        addrs = rng.choice(rng.integers(0, 64, size=4), size=size)
    else:                                       # clustered segments
        addrs = (rng.integers(0, 8, size=size) * 16
                 + rng.integers(0, 16, size=size))
    lane_kind = rng.integers(0, 4)
    if lane_kind == 0:                          # default prefix lanes
        lanes = None
    elif lane_kind == 1:                        # ragged ordered subset
        lanes = np.sort(rng.choice(max_threads, size=size, replace=False))
    elif lane_kind == 2:                        # shuffled subset
        lanes = rng.choice(max_threads, size=size, replace=False)
    else:                                       # contiguous non-prefix run
        start = int(rng.integers(0, max_threads - size + 1))
        lanes = np.arange(start, start + size)
    return addrs, lanes


class TestPropertyVsReference:
    @pytest.mark.parametrize("block", range(10))
    def test_500_seeded_random_patterns(self, block):
        """>= 500 seeded patterns across all device specs (50 per
        parametrized block keeps failures bisectable by seed)."""
        for case in range(50):
            rng = np.random.default_rng(1000 * block + case)
            device = DEVICES[(block + case) % len(DEVICES)]
            addrs, lanes = _random_case(rng, device)
            _check_all(addrs, device, lanes)

    @pytest.mark.parametrize("stride", [1, 2, 4, 8, 16, 32, 64, 128])
    @pytest.mark.parametrize("size", [1, 5, 16, 17, 32, 100, 512])
    def test_strided_2k(self, stride, size):
        addrs = np.arange(size) * stride
        _check_all(addrs, GTX280, None)
        _check_all(addrs, GTX280, np.arange(size))

    def test_broadcast(self):
        for size in (1, 7, 16, 33, 512):
            _check_all(np.zeros(size, dtype=np.int64), GTX280, None)

    def test_ragged_active_sets(self):
        rng = np.random.default_rng(77)
        for size in (1, 3, 15, 17, 31):
            lanes = np.sort(rng.choice(512, size=size, replace=False))
            addrs = rng.integers(0, 1024, size=size)
            _check_all(addrs, GTX280, lanes)

    def test_empty(self):
        empty = np.array([], dtype=np.int64)
        assert bank_conflict_cycles(empty, GTX280) == (0, 0)
        assert max_conflict_degree(empty, GTX280) == 0
        assert coalesced_transactions(empty, GTX280) == 0
        assert _reference_bank_conflict_cycles(empty, GTX280) == (0, 0)
        assert _reference_max_conflict_degree(empty, GTX280) == 0
        assert _reference_coalesced_transactions(empty, GTX280) == 0


class TestClosedForms:
    """Paper closed forms, now against the vectorized implementations."""

    @pytest.mark.parametrize("stride,expected", [
        (2, 2), (4, 4), (8, 8), (16, 16), (32, 16), (64, 16),
    ])
    def test_cr_conflict_ladder(self, stride, expected):
        addrs = np.arange(16) * stride
        assert max_conflict_degree(addrs, GTX280) == expected

    def test_coalesced_segments_at_512(self):
        """A 512-word contiguous sweep is 32 transactions (16 words per
        64-byte segment); the n=512 kernels' 5 x 512-word footprint is
        the invariant checker's 160."""
        addrs = np.arange(512)
        assert coalesced_transactions(addrs, GTX280) == 32
        assert 5 * coalesced_transactions(addrs, GTX280) == 160
