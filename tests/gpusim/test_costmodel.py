"""Cost model: linearity, grid scaling, report structure."""

import numpy as np
import pytest

from repro.gpusim import (GTX280, BlockContext, CostModel, CostModelParams,
                          launch)
from repro.gpusim.counters import PhaseCounters

UNIT = CostModelParams(
    shared_cycle_ns=1.0, shared_latency_ns=1.0, global_transaction_ns=1.0,
    global_word_ns=1.0, warp_issue_ns=1.0, div_ns=1.0, sync_ns=1.0,
    step_ns=1.0, launch_overhead_ns=0.0, latency_hiding=0.0)


def pc(**kw):
    out = PhaseCounters()
    for k, v in kw.items():
        setattr(out, k, v)
    return out


class TestPhaseTime:
    def test_linear_in_counters(self):
        cm = CostModel(UNIT)
        t1 = cm.phase_time_block_ns(pc(shared_cycles=10)).total_ms
        t2 = cm.phase_time_block_ns(pc(shared_cycles=20)).total_ms
        assert t2 == pytest.approx(2 * t1)

    def test_components_routed(self):
        cm = CostModel(UNIT)
        t = cm.phase_time_block_ns(pc(shared_cycles=3, global_words=5,
                                      warp_instructions=7))
        assert t.shared_ms == 3
        assert t.global_ms == 5
        assert t.compute_ms == 7

    def test_latency_divided_by_residency(self):
        cm = CostModel(UNIT)
        t1 = cm.phase_time_block_ns(pc(latency_units=8.0), blocks_per_sm=1)
        t4 = cm.phase_time_block_ns(pc(latency_units=8.0), blocks_per_sm=4)
        assert t1.shared_ms == pytest.approx(4 * t4.shared_ms)


class TestGridScale:
    def test_one_block_per_sm(self):
        cm = CostModel(UNIT)
        scale, conc, waves = cm.grid_scale(GTX280, 512, 5 * 512 * 4, 256)
        assert conc == 1
        assert waves == 18  # ceil(512 / 30)
        assert scale == pytest.approx(18)

    def test_latency_hiding_discount(self):
        params = CostModelParams(**{**UNIT.__dict__, "latency_hiding": 0.5})
        cm = CostModel(params)
        scale, conc, waves = cm.grid_scale(GTX280, 240, 5 * 256 * 4, 128)
        assert conc == 3
        assert waves == 3  # ceil(240/90)
        eff = 1 - 0.5 * (1 - 1 / 3)
        assert scale == pytest.approx(3 * 3 * eff)

    def test_overflow_raises(self):
        cm = CostModel(UNIT)
        with pytest.raises(ValueError, match="shared memory"):
            cm.grid_scale(GTX280, 1, 20 * 1024, 64)


class TestReport:
    def _launch(self):
        def kernel(ctx):
            arr = ctx.shared(64)
            with ctx.phase("load"):
                ctx.set_active(32)
                ctx.sload(arr, np.arange(32))
            with ctx.phase("work"):
                with ctx.step():
                    ctx.ops(4, divs=1)
        return launch(kernel, num_blocks=60, threads_per_block=32)

    def test_phases_present_in_order(self):
        cm = CostModel(UNIT)
        rep = cm.report(self._launch())
        assert list(rep.phases) == ["load", "work"]

    def test_total_is_sum(self):
        cm = CostModel(UNIT)
        rep = cm.report(self._launch())
        assert rep.total_ms == pytest.approx(
            sum(p.total_ms for p in rep.phases.values())
            + rep.launch_overhead_ms)

    def test_per_step_times(self):
        cm = CostModel(UNIT)
        rep = cm.report(self._launch())
        assert len(rep.steps_ms("work")) == 1
        assert rep.steps_ms("work")[0] > 0

    def test_resource_totals(self):
        cm = CostModel(UNIT)
        rep = cm.report(self._launch())
        assert rep.shared_ms > 0
        assert rep.compute_ms > 0
        assert rep.global_ms == 0  # kernel never touched global memory
