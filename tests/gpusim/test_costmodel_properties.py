"""Property tests on the cost model: monotonicity and scaling laws."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpusim import GTX280, CostModel, gt200_cost_model
from repro.gpusim.counters import PhaseCounters

counts = st.integers(min_value=0, max_value=10_000)
fields = st.sampled_from(["shared_cycles", "global_transactions",
                          "global_words", "flops", "divs",
                          "warp_instructions", "syncs", "steps",
                          "latency_units", "global_latency_units"])


def make_pc(vals):
    pc = PhaseCounters()
    for k, v in vals.items():
        setattr(pc, k, v)
    return pc


class TestMonotonicity:
    @settings(max_examples=100, deadline=None)
    @given(base=st.dictionaries(fields, counts, min_size=1),
           bump_field=fields, bump=st.integers(min_value=1, max_value=100))
    def test_more_counters_never_cheaper(self, base, bump_field, bump):
        cm = gt200_cost_model()
        pc1 = make_pc(base)
        pc2 = make_pc(base)
        setattr(pc2, bump_field, getattr(pc2, bump_field) + bump)
        t1 = cm.phase_time_block_ns(pc1).total_ms
        t2 = cm.phase_time_block_ns(pc2).total_ms
        assert t2 >= t1

    @settings(max_examples=50, deadline=None)
    @given(base=st.dictionaries(fields, counts, min_size=1),
           k=st.floats(min_value=0.0, max_value=16.0))
    def test_linearity(self, base, k):
        cm = gt200_cost_model()
        pc = make_pc(base)
        scaled = pc.scaled(k)
        t = cm.phase_time_block_ns(pc).total_ms
        tk = cm.phase_time_block_ns(scaled).total_ms
        assert tk == pytest.approx(k * t, rel=1e-9, abs=1e-12)

    @settings(max_examples=50, deadline=None)
    @given(latency=st.floats(min_value=0.1, max_value=100.0),
           conc=st.integers(min_value=1, max_value=8))
    def test_residency_hides_latency(self, latency, conc):
        cm = gt200_cost_model()
        pc = make_pc({"latency_units": latency})
        t1 = cm.phase_time_block_ns(pc, blocks_per_sm=1).shared_ms
        tc = cm.phase_time_block_ns(pc, blocks_per_sm=conc).shared_ms
        assert tc == pytest.approx(t1 / conc, rel=1e-9)


class TestGridScale:
    @settings(max_examples=60, deadline=None)
    @given(blocks=st.integers(min_value=1, max_value=4096),
           shared=st.integers(min_value=4, max_value=15000),
           threads=st.sampled_from([32, 64, 128, 256, 512]))
    def test_scale_monotone_in_blocks(self, blocks, shared, threads):
        cm = gt200_cost_model()
        s1, _, _ = cm.grid_scale(GTX280, blocks, shared, threads)
        s2, _, _ = cm.grid_scale(GTX280, blocks + 30, shared, threads)
        assert s2 >= s1 - 1e-12

    @settings(max_examples=60, deadline=None)
    @given(blocks=st.integers(min_value=1, max_value=2048),
           shared=st.integers(min_value=4, max_value=15000),
           threads=st.sampled_from([32, 64, 128, 256, 512]))
    def test_scale_bounds(self, blocks, shared, threads):
        """Scale is at least one wave-equivalent and at most serial."""
        cm = gt200_cost_model()
        s, conc, waves = cm.grid_scale(GTX280, blocks, shared, threads)
        assert conc >= 1
        assert waves >= 1
        assert s <= blocks + 1e-9          # never worse than serial/SM
        assert s >= blocks / (GTX280.num_sms * 8) - 1e-9

    def test_full_device_equals_one(self):
        cm = gt200_cost_model()
        s, conc, waves = cm.grid_scale(GTX280, 30, 5 * 512 * 4, 256)
        assert (s, conc, waves) == (pytest.approx(1.0), 1, 1)
