"""Device spec and occupancy rules, including the paper's numbers."""

import pytest

from repro.gpusim.device import (GTX280, G80_8800GTX, DeviceSpec,
                                 occupancy_report)


class TestSpec:
    def test_gtx280_parameters(self):
        assert GTX280.num_sms == 30
        assert GTX280.cores_per_sm == 8
        assert GTX280.warp_size == 32
        assert GTX280.shared_mem_banks == 16
        assert GTX280.shared_mem_per_sm == 16 * 1024
        assert GTX280.conflict_granularity == 16

    def test_warps_rounding(self):
        assert GTX280.warps(1) == 1
        assert GTX280.warps(32) == 1
        assert GTX280.warps(33) == 2
        assert GTX280.warps(512) == 16
        assert GTX280.warps(0) == 1  # a warp is the smallest unit

    def test_half_warps(self):
        assert GTX280.half_warps(16) == 1
        assert GTX280.half_warps(17) == 2
        assert GTX280.half_warps(256) == 16


class TestOccupancy:
    def test_paper_512_case_one_block_per_sm(self):
        """5 arrays x 512 words x 4 B = 10 KiB -> one resident block
        (the §5.2 explanation of the 512x512 performance dip)."""
        assert GTX280.blocks_per_sm(5 * 512 * 4, 256) == 1

    def test_paper_256_case_multiple_blocks(self):
        """n = 256 systems fit 3 blocks per SM -> latency hiding."""
        assert GTX280.blocks_per_sm(5 * 256 * 4, 128) == 3

    def test_block_cap_applies(self):
        assert GTX280.blocks_per_sm(64, 16) == GTX280.max_blocks_per_sm

    def test_thread_cap_applies(self):
        assert GTX280.blocks_per_sm(64, 512) == 2  # 1024 threads / 512

    def test_too_large_block_returns_zero(self):
        assert GTX280.blocks_per_sm(17 * 1024, 64) == 0

    def test_reserved_bytes_matter(self):
        """The CR+RD m=256 configuration needs exactly 16 KiB of
        arrays; the reserved parameter area excludes it (paper's m=128
        shared-memory limit, §5.3.5)."""
        words = 5 * 512 + 6 * 256 + 1
        assert words * 4 > GTX280.usable_shared_per_block
        words_128 = 5 * 512 + 6 * 128 + 1
        assert GTX280.blocks_per_sm(words_128 * 4, 256) == 1

    def test_g80_differs(self):
        assert G80_8800GTX.num_sms == 16
        assert G80_8800GTX.blocks_per_sm(64, 512) == 1  # 768 threads


class TestOccupancyReport:
    def test_limits_identified(self):
        rep = occupancy_report(GTX280, 5 * 512 * 4, 256)
        assert rep["blocks_per_sm"] == 1
        assert "shared_memory" in rep["limited_by"]
        assert rep["fits_in_shared"]

    def test_unfit_block(self):
        rep = occupancy_report(GTX280, 20 * 1024, 64)
        assert rep["blocks_per_sm"] == 0
        assert not rep["fits_in_shared"]

    def test_custom_device(self):
        tiny = DeviceSpec(name="tiny", shared_mem_per_sm=1024,
                          shared_mem_reserved=0)
        assert tiny.blocks_per_sm(512, 32) == 2


class TestRegisterOccupancy:
    def test_registers_can_be_the_limit(self):
        """§5.2 lists register count among the occupancy limits."""
        # 256 threads x 32 regs = 8192 regs/block -> 2 blocks by regs,
        # while shared memory alone would allow 8.
        assert GTX280.blocks_per_sm(512, 256, registers_per_thread=32) == 2

    def test_zero_means_unconstrained(self):
        base = GTX280.blocks_per_sm(5 * 256 * 4, 128)
        assert GTX280.blocks_per_sm(5 * 256 * 4, 128,
                                    registers_per_thread=0) == base

    def test_impossible_register_demand(self):
        assert GTX280.blocks_per_sm(512, 512,
                                    registers_per_thread=64) == 0

    def test_paper_case_not_register_limited(self):
        """The paper notes its blocks are limited by shared memory,
        'rather than register usage in our case' (§5.3): a ~16-register
        CR kernel at n=512 stays shared-memory-limited."""
        by_regs = GTX280.registers_per_sm // (16 * 256)
        assert GTX280.blocks_per_sm(5 * 512 * 4, 256,
                                    registers_per_thread=16) == 1
        assert by_regs > 1
