"""PCIe transfer model."""

import pytest

from repro.gpusim.transfer import GLOBAL_ONLY_PENALTY, PCIeModel


class TestPCIe:
    def test_latency_floor(self):
        m = PCIeModel()
        assert m.transfer_ms(0) == pytest.approx(m.latency_s * 1e3)

    def test_bandwidth_term(self):
        m = PCIeModel(bandwidth_bytes_per_s=1e9, latency_s=0.0)
        assert m.transfer_ms(1_000_000) == pytest.approx(1.0)

    def test_solver_roundtrip_counts_five_arrays(self):
        m = PCIeModel(bandwidth_bytes_per_s=1e9, latency_s=0.0)
        ms = m.solver_roundtrip_ms(100, 100)
        # 4 arrays down + 1 up = 5 * 100 * 100 * 4 bytes
        assert ms == pytest.approx(5 * 100 * 100 * 4 / 1e9 * 1e3)

    def test_paper_transfer_share(self):
        """§5.2: transfer dominates end-to-end time by 90-95 % at the
        512x512 size with the best solver (0.422 ms)."""
        m = PCIeModel()
        transfer = m.solver_roundtrip_ms(512, 512)
        share = transfer / (transfer + 0.422)
        assert 0.88 <= share <= 0.96

    def test_global_only_penalty_documented_value(self):
        assert GLOBAL_ONLY_PENALTY == pytest.approx(3.0)
