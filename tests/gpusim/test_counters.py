"""CounterLedger semantics: phase sums and step-record ordering."""

from repro.gpusim.counters import CounterLedger, PhaseCounters


def ledger_with_steps(phase: str, flops_per_step: list[int]
                      ) -> CounterLedger:
    led = CounterLedger()
    for i, flops in enumerate(flops_per_step):
        pc = PhaseCounters(flops=flops)
        led.phase(phase).merge(pc)
        led.record_step(phase, i, pc)
    return led


class TestMerged:
    def test_phase_sums_combine(self):
        a = ledger_with_steps("fwd", [1, 2])
        b = ledger_with_steps("fwd", [10])
        out = a.merged(b)
        assert out.phases["fwd"].flops == 13

    def test_disjoint_phases_both_present(self):
        a = ledger_with_steps("fwd", [1])
        b = ledger_with_steps("bwd", [2])
        out = a.merged(b)
        assert set(out.phases) == {"fwd", "bwd"}

    def test_step_records_self_before_other(self):
        a = ledger_with_steps("fwd", [1, 2])
        b = ledger_with_steps("bwd", [10, 20])
        out = a.merged(b)
        order = [(p, i, pc.flops) for p, i, pc in out.step_records]
        assert order == [("fwd", 0, 1), ("fwd", 1, 2),
                         ("bwd", 0, 10), ("bwd", 1, 20)]

    def test_step_record_order_preserved_within_side(self):
        a = ledger_with_steps("fwd", [5, 6, 7])
        out = a.merged(CounterLedger())
        assert [i for _p, i, _pc in out.step_records] == [0, 1, 2]

    def test_merged_does_not_mutate_inputs(self):
        a = ledger_with_steps("fwd", [1])
        b = ledger_with_steps("fwd", [2])
        out = a.merged(b)
        out.phases["fwd"].flops += 100
        assert a.phases["fwd"].flops == 1
        assert b.phases["fwd"].flops == 2

    def test_steps_in_phase_filters_merged_ledger(self):
        a = ledger_with_steps("fwd", [1, 2])
        b = ledger_with_steps("bwd", [3])
        out = a.merged(b)
        assert [pc.flops for pc in out.steps_in_phase("fwd")] == [1, 2]
        assert [pc.flops for pc in out.steps_in_phase("bwd")] == [3]
