"""Launch-signature trace memoization: correctness and bypass rules."""

import numpy as np
import pytest

from repro import telemetry
from repro.gpusim import (FaultPlan, TraceCache, inject, launch,
                          ledgers_equal, tracecache, use_cache)
from repro.gpusim.device import GTX280, TESLA_C1060
from repro.kernels.api import run_kernel
from repro.numerics.generators import diagonally_dominant_fluid
from repro.verify.invariants import check_invariants
from tests.conftest import make_systems


def sample_kernel(ctx, n):
    arr = ctx.shared(n)
    with ctx.phase("work"):
        ctx.set_active(n)
        with ctx.step():
            i = ctx.lanes
            ctx.sstore(arr, i, np.ones((ctx.num_blocks, n),
                                       dtype=np.float32))
            v = ctx.sload(arr, i)
            ctx.ops(2)
            ctx.sync()
    return v


def echo_kernel(ctx, n):
    """Same shape as sample_kernel but a different identity."""
    arr = ctx.shared(n)
    with ctx.phase("work"):
        ctx.set_active(n)
        with ctx.step():
            ctx.sstore(arr, ctx.lanes,
                       np.zeros((ctx.num_blocks, n), dtype=np.float32))
            ctx.sync()


class TestSignature:
    def kw(self, **over):
        kw = dict(num_blocks=2, threads_per_block=32, device=GTX280,
                  dtype=np.float32, check_contiguous_active=True,
                  kernel_args={"n": 32})
        kw.update(over)
        return kw

    def test_identical_launches_share_a_key(self):
        assert tracecache.launch_signature(sample_kernel, **self.kw()) == \
            tracecache.launch_signature(sample_kernel, **self.kw())

    def test_every_dimension_discriminates(self):
        base = tracecache.launch_signature(sample_kernel, **self.kw())
        for over in (dict(num_blocks=3), dict(threads_per_block=64),
                     dict(device=TESLA_C1060), dict(dtype=np.float64),
                     dict(check_contiguous_active=False),
                     dict(kernel_args={"n": 16})):
            assert tracecache.launch_signature(
                sample_kernel, **self.kw(**over)) != base

    def test_kernel_identity_discriminates(self):
        assert tracecache.launch_signature(echo_kernel, **self.kw()) != \
            tracecache.launch_signature(sample_kernel, **self.kw())

    def test_closure_kernels_are_opaque(self):
        captured = 3

        def closure_kernel(ctx):
            ctx.ops(captured)

        assert tracecache.launch_signature(
            closure_kernel, **self.kw(kernel_args={})) is None

    def test_opaque_argument_is_refused(self):
        assert tracecache.launch_signature(
            sample_kernel, **self.kw(kernel_args={"n": object()})) is None

    def test_structural_args_use_trace_signature(self):
        s1 = make_systems(2, 32, seed=0)
        s2 = make_systems(2, 32, seed=99)   # same shape, different data
        from repro.kernels.common import GlobalSystemArrays
        g1 = GlobalSystemArrays.from_systems(s1)
        g2 = GlobalSystemArrays.from_systems(s2)
        assert g1.trace_signature() == g2.trace_signature()
        assert g1.trace_signature() != \
            GlobalSystemArrays.from_systems(make_systems(4, 32)
                                            ).trace_signature()


class TestCacheBehaviour:
    def test_hit_replays_identical_ledger(self):
        cache = TraceCache()
        with use_cache(cache):
            cold = launch(sample_kernel, num_blocks=2, threads_per_block=32,
                          n=32)
            warm = launch(sample_kernel, num_blocks=2, threads_per_block=32,
                          n=32)
        assert not cold.trace_cached
        assert warm.trace_cached
        assert cache.stats() == {"hits": 1, "misses": 1, "bypasses": 0,
                                 "entries": 1, "hit_rate": 0.5}
        assert ledgers_equal(cold.ledger, warm.ledger) == []

    def test_functional_outputs_still_computed_on_hit(self):
        cache = TraceCache()
        with use_cache(cache):
            launch(sample_kernel, num_blocks=1, threads_per_block=16, n=16)
            warm = launch(sample_kernel, num_blocks=1, threads_per_block=16,
                          n=16)
        assert warm.trace_cached
        np.testing.assert_array_equal(warm.outputs,
                                      np.ones((1, 16), dtype=np.float32))

    def test_returned_ledger_is_a_private_copy(self):
        cache = TraceCache()
        with use_cache(cache):
            launch(sample_kernel, num_blocks=1, threads_per_block=16, n=16)
            a = launch(sample_kernel, num_blocks=1, threads_per_block=16,
                       n=16)
            a.ledger.phase("work").flops += 999    # vandalize the copy
            b = launch(sample_kernel, num_blocks=1, threads_per_block=16,
                       n=16)
        assert b.ledger.phase("work").flops != a.ledger.phase("work").flops

    def test_fault_plan_bypasses(self):
        cache = TraceCache()
        with use_cache(cache):
            launch(sample_kernel, num_blocks=1, threads_per_block=16, n=16)
            with inject(FaultPlan(seed=3)):
                res = launch(sample_kernel, num_blocks=1,
                             threads_per_block=16, n=16)
        assert not res.trace_cached
        assert cache.bypasses == 1
        assert cache.hits == 0

    def test_step_limit_bypasses(self):
        cache = TraceCache()
        with use_cache(cache):
            launch(sample_kernel, num_blocks=1, threads_per_block=16, n=16)
            res = launch(sample_kernel, num_blocks=1, threads_per_block=16,
                         step_limit=1, n=16)
        assert not res.trace_cached
        assert cache.bypasses == 1
        assert cache.hits == 0

    def test_use_cache_none_disables(self):
        with use_cache(None):
            a = launch(sample_kernel, num_blocks=1, threads_per_block=16,
                       n=16)
            b = launch(sample_kernel, num_blocks=1, threads_per_block=16,
                       n=16)
        assert not a.trace_cached and not b.trace_cached

    def test_eviction_is_bounded(self):
        cache = TraceCache(max_entries=2)
        with use_cache(cache):
            for blocks in (1, 2, 3):
                launch(sample_kernel, num_blocks=blocks,
                       threads_per_block=16, n=16)
        assert len(cache) == 2

    def test_default_cache_enabled_under_test(self):
        assert tracecache.default_cache() is not None
        assert tracecache.get_cache() is tracecache.default_cache()


class TestSolverGridIdentity:
    """Cached vs uncached ledgers are bitwise-identical, full grid."""

    @pytest.mark.parametrize("kernel", ["cr", "pcr", "rd", "cr_pcr",
                                        "cr_rd"])
    @pytest.mark.parametrize("n", [8, 32, 128])
    def test_cached_ledger_bitwise_identical(self, kernel, n):
        systems = make_systems(2, n, seed=3)
        with use_cache(None):
            _x, cold = run_kernel(kernel, systems)
        cache = TraceCache()
        with use_cache(cache):
            run_kernel(kernel, systems)
            _x, warm = run_kernel(kernel, systems)
        assert warm.trace_cached
        assert ledgers_equal(cold.ledger, warm.ledger) == []
        np.testing.assert_array_equal(_x, _x)

    def test_solutions_identical_through_cache(self):
        systems = make_systems(4, 64, seed=8)
        with use_cache(None):
            x_cold, _ = run_kernel("cr", systems)
        cache = TraceCache()
        with use_cache(cache):
            run_kernel("cr", systems)
            x_warm, res = run_kernel("cr", systems)
        assert res.trace_cached
        np.testing.assert_array_equal(x_cold, x_warm)


class TestInvariantsThroughCache:
    def test_invariants_pass_fully_memoized(self):
        """Second sweep is served from the analytic estimator's memo
        and still satisfies the analytic invariants (paper closed
        forms, incl. the CR conflict ladder).  The checker runs the
        non-functional fast path, so the trace cache is not involved;
        the estimator memo plays the same replay role."""
        from repro.gpusim import estimator

        estimator.clear_estimator_cache()
        sizes = (8, 16, 64)
        first = check_invariants(sizes=sizes)
        assert first.ok, first.summary()
        warm = len(estimator._CACHE)
        assert warm >= first.checked
        second = check_invariants(sizes=sizes)
        assert second.ok, second.summary()
        # No new analytic launches on the warm sweep.
        assert len(estimator._CACHE) == warm

    def test_cr_160_transactions_at_512_cached(self):
        """The paper's 160-transaction global footprint at n=512,
        replayed from the cache."""
        systems = diagonally_dominant_fluid(2, 512, seed=0)
        cache = TraceCache()
        with use_cache(cache):
            run_kernel("cr", systems)
            _x, warm = run_kernel("cr", systems)
        assert warm.trace_cached
        assert warm.ledger.total().global_transactions == 160


class TestTelemetryCounters:
    def test_counters_exported(self):
        cache = TraceCache()
        with telemetry.collect() as col:
            with use_cache(cache):
                launch(sample_kernel, num_blocks=1, threads_per_block=16,
                       n=16)
                launch(sample_kernel, num_blocks=1, threads_per_block=16,
                       n=16)
                with inject(FaultPlan(seed=1)):
                    launch(sample_kernel, num_blocks=1, threads_per_block=16,
                           n=16)
        m = col.metrics
        assert m.counter("gpusim.trace_cache.misses").value(
            kernel="sample_kernel", cache="default") == 1
        assert m.counter("gpusim.trace_cache.hits").value(
            kernel="sample_kernel", cache="default") == 1
        assert m.counter("gpusim.trace_cache.bypasses").value(
            kernel="sample_kernel", reason="fault_plan",
            cache="default") == 1

    def test_summary_line_in_text_summary(self):
        from repro.telemetry.export import text_summary
        cache = TraceCache()
        with telemetry.collect() as col:
            with use_cache(cache):
                for _ in range(3):
                    launch(sample_kernel, num_blocks=1, threads_per_block=16,
                           n=16)
        text = text_summary(col)
        assert "trace cache: 2 hits, 1 misses, 0 bypasses" in text
        assert "hit rate 66.7%" in text


class TestPoolSharing:
    def test_pool_owns_one_cache(self):
        from repro.gpusim import make_pool
        pool = make_pool(3, seed=1)
        assert isinstance(pool.trace_cache, TraceCache)

    def test_scheduler_chunks_share_pool_cache(self):
        from repro.gpusim import make_pool
        from repro.serve import BatchScheduler, SolveJob
        pool = make_pool(2, seed=4)
        sched = BatchScheduler(pool)
        systems = make_systems(8, 32, seed=2)
        report = sched.run_job(SolveJob(job_id="tc", systems=systems,
                                        method="cr", chunk_size=2))
        assert report.ok
        # 4 identical chunks: first records, the rest replay.
        assert pool.trace_cache.hits >= 2
        assert pool.trace_cache.hit_rate > 0.5
