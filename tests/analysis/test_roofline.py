"""Roofline placement (the paper's ref [33], §5.3.6 future work)."""

import pytest

from repro.analysis.roofline import (device_roofs, place_kernel,
                                     roofline_table)
from repro.kernels.api import run_cr, run_pcr, run_rd
from repro.numerics.generators import close_values, diagonally_dominant_fluid


@pytest.fixture(scope="module")
def points():
    s = diagonally_dominant_fluid(30, 512, seed=0)
    sc = close_values(30, 512, seed=0)
    return {
        "cr": place_kernel("cr", run_cr(s)[1]),
        "pcr": place_kernel("pcr", run_pcr(s)[1]),
        "rd": place_kernel("rd", run_rd(sc)[1]),
    }


class TestRoofs:
    def test_orders_of_magnitude(self):
        roofs = device_roofs()
        assert 100 <= roofs.compute_gflops <= 1500
        assert 200 <= roofs.shared_gbps <= 3000
        assert 20 <= roofs.global_gbps <= 200

    def test_ridge_points_ordered(self):
        roofs = device_roofs()
        assert roofs.global_ridge > roofs.shared_ridge


class TestPlacement:
    def test_cr_is_shared_bound(self, points):
        """Fig 10: shared memory dominates CR."""
        assert points["cr"].bound == "shared"

    def test_pcr_is_compute_bound(self, points):
        """Fig 12: compute is PCR's largest share (50 %)."""
        assert points["pcr"].bound == "compute"

    def test_conflicts_degrade_cr_shared_roof(self, points):
        cr, pcr = points["cr"], points["pcr"]
        assert cr.conflict_degree > 2
        assert cr.effective_shared_roof < pcr.effective_shared_roof / 2

    def test_warp_waste_lowers_cr_compute_roof(self, points):
        assert points["cr"].lane_utilization < 0.95
        assert points["pcr"].lane_utilization > 0.99

    def test_gflops_ladder_matches_paper(self, points):
        """Paper: 15.5 (CR) < 101.9 (PCR) < 186.7 (RD) GFLOPS; the
        ordering and rough ratios must reproduce."""
        g = {k: p.achieved_gflops for k, p in points.items()}
        assert g["cr"] < g["pcr"] < g["rd"]
        assert g["pcr"] / g["cr"] > 4
        assert 1.1 < g["rd"] / g["pcr"] < 2.5

    def test_achieved_below_attainable(self, points):
        """The roofline bound holds; the gap is the paper's point
        (latency + step overheads that a single-bottleneck model
        cannot see)."""
        for p in points.values():
            assert p.achieved_gflops <= p.attainable_gflops() * 1.05

    def test_table_renders(self, points):
        roofs = device_roofs()
        text = roofline_table(list(points.values()), roofs)
        assert "GFLOPS" in text and "cr" in text
