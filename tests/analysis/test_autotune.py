"""Fig 17: switch-point sweep and autotuning."""

import warnings

import pytest

from repro.analysis.autotune import best_switch_point, sweep_switch_point
from repro.numerics.generators import diagonally_dominant_fluid


@pytest.fixture(scope="module")
def batch_512():
    return diagonally_dominant_fluid(2, 512, seed=0)


class TestSweep:
    def test_sweep_covers_all_powers(self, batch_512):
        res = sweep_switch_point(batch_512, "pcr")
        assert [p.intermediate_size for p in res.points] == \
            [2, 4, 8, 16, 32, 64, 128, 256, 512]

    def test_cr_pcr_best_far_above_warp_size(self, batch_512):
        """§5.3.4: "The best switch point ... is far larger than the
        warp size 32" (paper: 256; our model: 128-256)."""
        best = best_switch_point(batch_512, "pcr")
        assert best >= 128

    def test_cr_rd_best_is_128(self, batch_512):
        """§5.3.5: CR+RD's best (and only feasible large) intermediate
        size is 128."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            res = sweep_switch_point(batch_512, "rd")
        assert res.best().intermediate_size == 128

    def test_cr_rd_m256_infeasible(self, batch_512):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            res = sweep_switch_point(batch_512, "rd")
        by_m = {p.intermediate_size: p for p in res.points}
        assert by_m[256].solver_ms is None
        assert "shared" in by_m[256].reason

    def test_curve_decreases_from_cr_endpoint(self, batch_512):
        """Fig 17: moving off the pure-CR endpoint improves (almost)
        monotonically until the optimum.  A few-percent tolerance
        covers the copy-overhead bump of the smallest hybrids relative
        to the pure-CR endpoint."""
        res = sweep_switch_point(batch_512, "pcr")
        ms = [p.solver_ms for p in res.points if p.solver_ms is not None]
        best_idx = ms.index(min(ms))
        for i in range(best_idx):
            assert ms[i] >= ms[i + 1] * 0.97

    def test_endpoints_are_pure_solvers(self, batch_512):
        """Fig 17 caption: endpoints mark non-hybrid implementations."""
        from repro.analysis.timing import timed_solve
        res = sweep_switch_point(batch_512, "pcr")
        pure_cr = timed_solve("cr", batch_512).solver_ms
        pure_pcr = timed_solve("pcr", batch_512).solver_ms
        assert res.points[0].solver_ms == pytest.approx(pure_cr)
        assert res.points[-1].solver_ms == pytest.approx(pure_pcr)

    def test_bad_inner_rejected(self, batch_512):
        with pytest.raises(ValueError):
            sweep_switch_point(batch_512, "thomas")


class TestSmallProblemBehaviour:
    def test_small_systems_prefer_pure_inner(self):
        """Fig 6 / §5.2: at 64x64 the hybrids lose to PCR -- the best
        'switch point' is the pure-PCR endpoint."""
        s = diagonally_dominant_fluid(2, 64, seed=1)
        res = sweep_switch_point(s, "pcr")
        assert res.best().intermediate_size == 64
