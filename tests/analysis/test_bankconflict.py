"""Fig 9: bank-conflict impact on CR's forward reduction."""

import pytest

from repro.analysis.bankconflict import (forward_reduction_conflicts,
                                         overall_conflict_penalty)
from repro.numerics.generators import diagonally_dominant_fluid


@pytest.fixture(scope="module")
def steps_512():
    s = diagonally_dominant_fluid(2, 512, seed=0)
    return forward_reduction_conflicts(s)


class TestFig9Shape:
    def test_eight_steps(self, steps_512):
        assert len(steps_512) == 8

    def test_degree_ladder(self, steps_512):
        assert [round(s.conflict_degree) for s in steps_512] == \
            [2, 4, 8, 16, 16, 8, 4, 2]

    def test_penalties_exceed_one(self, steps_512):
        for s in steps_512:
            assert s.penalty > 1.0

    def test_peak_penalty_at_16way(self, steps_512):
        """Fig 9's worst annotated slowdown (4.8x) sits at the 16-way
        steps; ours must peak there too."""
        penalties = [s.penalty for s in steps_512]
        peak = max(range(8), key=lambda i: penalties[i])
        assert peak in (3, 4)
        assert penalties[peak] > 2.0

    def test_without_conflicts_flattens_below_warp(self, steps_512):
        """Fig 9: once active threads < 32, conflict-free step time is
        roughly constant (warp granularity + per-step overhead)."""
        sub_warp = [s.without_conflicts_ms for s in steps_512
                    if s.active_threads <= 32]
        assert max(sub_warp) / min(sub_warp) < 1.3

    def test_with_conflicts_decreases_late(self, steps_512):
        """Fig 9: with conflicts, per-step time keeps shrinking after
        the 16-way peak because fewer lanes serialize."""
        with_c = [s.with_conflicts_ms for s in steps_512]
        assert with_c[4] > with_c[5] > with_c[6] > with_c[7]

    def test_overall_penalty_band(self, steps_512):
        """Whole-phase slowdown: material, order of the paper's peak
        per-step factors."""
        assert 1.3 <= overall_conflict_penalty(steps_512) <= 5.0


class TestSmallSizes:
    def test_penalty_grows_with_n(self):
        p = {}
        for n in (64, 256):
            s = diagonally_dominant_fluid(2, n, seed=n)
            p[n] = overall_conflict_penalty(forward_reduction_conflicts(s))
        assert p[256] > p[64] >= 1.0
