"""The measured-cost layout autotuner: fit quality and placement."""

import pytest

from repro.analysis.layout_autotuner import (CANDIDATES, TERMS,
                                             choose_layout,
                                             clear_model_cache,
                                             default_layout_model,
                                             fit_layout_model)
from repro.gpusim import GTX280


@pytest.fixture(scope="module")
def model():
    return fit_layout_model(GTX280)


class TestFit:
    def test_every_candidate_fitted(self, model):
        assert set(model.fits) == set(CANDIDATES)
        for fit in model.fits.values():
            assert fit.points, f"{fit.method}/{fit.layout} has no points"

    def test_analytic_path_exact(self, model):
        """On the simulator the analytic ledger is exact by
        construction: gains 1.0, all residuals zero.  Any non-zero
        value here means the stub-block equivalence broke."""
        for fit in model.fits.values():
            assert fit.gain == pytest.approx(1.0, abs=1e-12)
            assert fit.max_abs_residual == 0.0
            for term, res in fit.term_residuals().items():
                assert term in TERMS
                assert res == 0.0

    def test_summary_mentions_residuals(self, model):
        s = model.summary()
        assert "max|res|" in s and "thomas/interleaved" in s


class TestChoice:
    def test_large_batch_small_n_interleaved_thomas(self, model):
        c = choose_layout(2048, 8, model=model)
        assert (c.method, c.layout) == ("thomas", "interleaved")

    def test_single_large_system_sequential_hybrid(self, model):
        c = choose_layout(1, 512, model=model)
        assert c.layout == "sequential"
        assert c.method in ("cr_pcr", "pcr")

    def test_ranking_is_complete_and_sorted(self, model):
        c = choose_layout(64, 64, model=model)
        assert len(c.ranking) == len(CANDIDATES)
        costs = [r.predicted_ms for r in c.ranking
                 if r.predicted_ms is not None]
        assert costs == sorted(costs)
        assert c.predicted_ms == costs[0]

    def test_infeasible_candidates_carry_reasons(self, model):
        c = choose_layout(4, 100, model=model)   # non-power-of-two n
        infeasible = {(r.method, r.layout): r.reason for r in c.ranking
                      if r.predicted_ms is None}
        assert ("pcr", "sequential") in infeasible
        assert "power-of-two" in infeasible[("pcr", "sequential")]
        # thomas has no size restriction: still chosen
        assert c.method == "thomas"

    def test_bad_shapes_rejected(self, model):
        with pytest.raises(ValueError, match="num_systems"):
            choose_layout(0, 8, model=model)
        with pytest.raises(ValueError, match="n must be"):
            choose_layout(4, 1, model=model)


class TestDefaultModelCache:
    def test_memoized_per_device(self):
        clear_model_cache()
        m1 = default_layout_model(GTX280)
        m2 = default_layout_model(GTX280)
        assert m1 is m2
        clear_model_cache()
        assert default_layout_model(GTX280) is not m1
