"""Device-sensitivity predictions (Fermi-like what-if)."""

import pytest

from repro.analysis.device_study import (FERMI_LIKE, compare_devices,
                                         occupancy_shift)
from repro.gpusim import GTX280, KernelError
from repro.kernels.api import run_cr, run_cr_rd
from repro.numerics.generators import diagonally_dominant_fluid


@pytest.fixture(scope="module")
def batch():
    return diagonally_dominant_fluid(2, 512, seed=0)


class TestOccupancy:
    def test_fermi_hosts_four_cr_blocks_at_512(self):
        shift = occupancy_shift(512)
        assert shift["GTX 280"] == 1
        assert shift["Fermi-like"] == 4

    def test_cr_rd_m256_feasible_on_fermi(self, batch):
        """The §5.3.5 shared-memory limit is a device property: 48 KiB
        lifts it."""
        with pytest.raises(KernelError):
            run_cr_rd(batch, intermediate_size=256, device=GTX280)
        _x, res = run_cr_rd(batch, intermediate_size=256,
                            device=FERMI_LIKE)
        assert res.blocks_per_sm >= 1


class TestConflictStructure:
    def test_32_banks_change_cr_conflicts(self, batch):
        """Stride-16 CR steps conflict 16-way on 16 banks but only
        half as badly relative to the wider conflict group on 32."""
        _x, gt200 = run_cr(batch, device=GTX280)
        _x, fermi = run_cr(batch, device=FERMI_LIKE)
        d_gt = gt200.ledger.phases["forward_reduction"].conflict_degree
        d_fm = fermi.ledger.phases["forward_reduction"].conflict_degree
        assert d_fm != d_gt  # the trace genuinely re-measures

    def test_functional_results_device_independent(self, batch):
        import numpy as np
        x1, _ = run_cr(batch, device=GTX280)
        x2, _ = run_cr(batch, device=FERMI_LIKE)
        np.testing.assert_array_equal(x1, x2)


class TestComparison:
    def test_cr_gains_most_from_occupancy(self, batch):
        """CR's exposed latency is hidden by Fermi's 4 resident blocks;
        PCR has nothing to hide, so CR must benefit more."""
        comps = {c.solver: c for c in compare_devices(
            batch, num_systems=512,
            intermediate_sizes={"cr_pcr": 256})}
        assert comps["cr"].speedup > comps["pcr"].speedup

    def test_rows_cover_requested_solvers(self, batch):
        comps = compare_devices(batch, solvers=("cr", "pcr"),
                                num_systems=64)
        assert [c.solver for c in comps] == ["cr", "pcr"]
        for c in comps:
            assert c.baseline_ms > 0 and c.variant_ms > 0
