"""Trace formatting tools."""

import pytest

from repro.analysis.trace import full_trace, phase_trace, step_trace
from repro.kernels.api import run_cr
from repro.numerics.generators import diagonally_dominant_fluid


@pytest.fixture(scope="module")
def launch():
    s = diagonally_dominant_fluid(2, 64, seed=0)
    _x, res = run_cr(s)
    return res


class TestStepTrace:
    def test_one_row_per_step(self, launch):
        text = step_trace(launch)
        data_rows = text.splitlines()[2:]
        assert len(data_rows) == len(launch.ledger.step_records)

    def test_columns_present(self, launch):
        head = step_trace(launch).splitlines()[0]
        for col in ("phase", "threads", "n-way", "us"):
            assert col in head


class TestPhaseTrace:
    def test_all_phases_listed(self, launch):
        text = phase_trace(launch)
        for name in launch.ledger.phases:
            assert name in text
        assert "TOTAL" in text

    def test_shares_sum_to_total_minus_launch_overhead(self, launch):
        from repro.gpusim import gt200_cost_model
        rep = gt200_cost_model().report(launch)
        expected = 100.0 * (1.0 - rep.launch_overhead_ms / rep.total_ms)
        shares = [float(line.split()[-1].rstrip("%"))
                  for line in phase_trace(launch).splitlines()[2:-1]]
        assert sum(shares) == pytest.approx(expected, abs=1.0)


class TestFullTrace:
    def test_contains_occupancy_line(self, launch):
        text = full_trace(launch)
        assert "block(s)/SM" in text
        assert "limited by" in text
