"""modeled_grid_timing: the benches' scaled-timing shortcut."""

import pytest

from repro.analysis.timing import modeled_grid_timing, timed_solve
from repro.numerics.generators import diagonally_dominant_fluid


class TestConsistency:
    def test_matches_direct_simulation_at_small_grid(self):
        """For a grid the size of the simulation, the shortcut and the
        full path agree exactly."""
        s = diagonally_dominant_fluid(2, 64, seed=0)
        direct = timed_solve("cr", s)
        shortcut = modeled_grid_timing("cr", 64, 2, seed=0)
        assert shortcut.solver_ms == pytest.approx(direct.solver_ms,
                                                   rel=1e-12)

    def test_scales_linearly_beyond_full_device(self):
        """Doubling a multi-wave grid doubles the solver time (fixed
        launch overhead aside)."""
        t1 = modeled_grid_timing("pcr", 512, 600)
        t2 = modeled_grid_timing("pcr", 512, 1200)
        lo = t1.report.launch_overhead_ms
        assert (t2.solver_ms - lo) == pytest.approx(
            2 * (t1.solver_ms - lo), rel=0.05)

    def test_transfer_reflects_requested_grid(self):
        t = modeled_grid_timing("cr", 64, 512)
        small = modeled_grid_timing("cr", 64, 2)
        assert t.transfer_ms > 100 * small.transfer_ms / 512

    def test_intermediate_size_forwarded(self):
        t1 = modeled_grid_timing("cr_pcr", 512, 512,
                                 intermediate_size=256)
        t2 = modeled_grid_timing("cr_pcr", 512, 512,
                                 intermediate_size=32)
        assert t1.solver_ms != t2.solver_ms

    def test_per_step_records_present(self):
        t = modeled_grid_timing("cr", 128, 128)
        assert len(t.report.steps_ms("forward_reduction")) == 6
