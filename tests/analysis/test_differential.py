"""Differential timing: the early-exit probe equals direct attribution."""

import numpy as np
import pytest

from repro.analysis.differential import (attributed_step_times,
                                         differential_step_times,
                                         phase_breakdown)
from repro.kernels.api import run_cr, run_pcr
from repro.numerics.generators import diagonally_dominant_fluid


@pytest.fixture(scope="module")
def batch():
    return diagonally_dominant_fluid(4, 32, seed=0)


class TestDifferentialEqualsAttributed:
    @pytest.mark.parametrize("name", ["cr", "pcr", "rd", "cr_pcr"])
    def test_probe_matches_ledger(self, name, batch):
        """The paper's truncate-and-difference procedure recovers the
        same per-step times the simulator attributes directly (for all
        steps after the first, which absorbs the preamble)."""
        from repro.numerics.generators import close_values
        systems = close_values(4, 32, seed=1) if name == "rd" else batch
        m = 8 if name == "cr_pcr" else None
        from repro.kernels.api import run_kernel
        _x, res = run_kernel(name, systems, intermediate_size=m)
        att = attributed_step_times(res)
        diff = differential_step_times(name, systems, intermediate_size=m)
        assert len(att) == len(diff)
        for a, d in zip(att[1:], diff[1:]):
            assert a.ms == pytest.approx(d.ms, abs=1e-12)
            assert (a.phase, a.index) == (d.phase, d.index)

    def test_first_difference_absorbs_preamble(self, batch):
        _x, res = run_cr(batch)
        att = attributed_step_times(res)
        diff = differential_step_times("cr", batch)
        # First differential entry > first attributed (staging included).
        assert diff[0].ms > att[0].ms


class TestPhaseBreakdown:
    def test_fractions_sum_to_one_minus_launch_overhead(self, batch):
        _x, res = run_cr(batch)
        from repro.gpusim import gt200_cost_model
        rows = phase_breakdown(res)
        total = sum(f for _n, _ms, f in rows)
        # Fractions are against the total including the fixed launch
        # overhead, so they sum to exactly 1 - overhead_share.
        rep = gt200_cost_model().report(res)
        expected = 1.0 - rep.launch_overhead_ms / rep.total_ms
        assert total == pytest.approx(expected, abs=1e-9)

    def test_merge_global(self, batch):
        _x, res = run_cr(batch)
        rows = phase_breakdown(res, merge_global=True)
        names = [n for n, _ms, _f in rows]
        assert "global_memory_access" in names
        assert "global_load" not in names

    def test_forward_dominates_cr(self, batch):
        """Fig 8: forward reduction is CR's largest phase."""
        _x, res = run_cr(batch)
        rows = dict((n, ms) for n, ms, _f in phase_breakdown(res))
        assert rows["forward_reduction"] == max(rows.values())

    def test_forward_about_twice_backward(self):
        """Fig 8: "forward reduction takes about twice as much time as
        backward substitution"."""
        s = diagonally_dominant_fluid(2, 512, seed=2)
        _x, res = run_cr(s)
        rows = dict((n, ms) for n, ms, _f in phase_breakdown(res))
        ratio = rows["forward_reduction"] / rows["backward_substitution"]
        assert 1.5 <= ratio <= 2.6
