"""Edge cases of the switch-point sweep: non-power-of-two endpoints
and the diagnosable all-infeasible failure mode."""

import pytest

from repro.analysis.autotune import (SweepPoint, SweepResult,
                                     _power_of_two_range,
                                     sweep_switch_point)
from repro.numerics.generators import diagonally_dominant_fluid


class TestPowerOfTwoRange:
    def test_power_of_two_n(self):
        assert _power_of_two_range(16) == [2, 4, 8, 16]

    @pytest.mark.parametrize("n,expect", [
        (33, [2, 4, 8, 16, 32, 33]),
        (6, [2, 4, 6]),
        (3, [2, 3]),
        (2, [2]),
    ])
    def test_non_pot_n_keeps_right_endpoint(self, n, expect):
        """Regression: the sweep used to stop at the last power of two
        below n, dropping Fig 17's pure-inner endpoint entirely."""
        assert _power_of_two_range(n) == expect

    def test_sweep_labels_non_pot_endpoint(self):
        s = diagonally_dominant_fluid(4, 24, seed=0)
        res = sweep_switch_point(s, "pcr")
        last = res.points[-1]
        assert last.intermediate_size == 24
        assert last.label == "pure-pcr"
        assert res.points[0].label == "pure-cr"
        assert all(p.label == "hybrid" for p in res.points[1:-1])


class TestBestReasons:
    def test_all_infeasible_reports_each_reason(self):
        res = SweepResult(inner="pcr", points=[
            SweepPoint(2, None, reason="shared memory overflow"),
            SweepPoint(4, None, reason="bank width"),
            SweepPoint(8, None),
        ])
        with pytest.raises(ValueError) as ei:
            res.best()
        msg = str(ei.value)
        assert "no feasible switch point" in msg
        assert "m=2: shared memory overflow" in msg
        assert "m=4: bank width" in msg
        assert "m=8: unknown" in msg

    def test_empty_sweep_message(self):
        with pytest.raises(ValueError, match="empty sweep"):
            SweepResult(inner="pcr", points=[]).best()

    def test_feasible_sweep_still_picks_argmin(self):
        res = SweepResult(inner="rd", points=[
            SweepPoint(2, 5.0), SweepPoint(4, None, reason="x"),
            SweepPoint(8, 3.0)])
        assert res.best().intermediate_size == 8
