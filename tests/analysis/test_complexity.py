"""Table 1 closed forms and their validation against measured counters."""

import pytest

from repro.analysis.complexity import (compare, cr_complexity,
                                       cr_pcr_complexity, cr_rd_complexity,
                                       measured_complexity, pcr_complexity,
                                       rd_complexity, table1)


class TestClosedForms:
    def test_table1_values_at_paper_sizes(self):
        cr = cr_complexity(512)
        assert (cr.shared_accesses, cr.arithmetic_ops, cr.divisions,
                cr.steps, cr.global_accesses) == (11776, 8704, 1536, 17, 2560)
        pcr = pcr_complexity(512)
        assert pcr.shared_accesses == 16 * 512 * 9
        assert pcr.steps == 9
        rd = rd_complexity(512)
        assert rd.steps == 11
        hp = cr_pcr_complexity(512, 256)
        assert hp.steps == 9
        hr = cr_rd_complexity(512, 128)
        assert hr.steps == 12

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            cr_complexity(100)

    def test_table_has_five_rows(self):
        rows = table1(512, 256, 128)
        assert [r.algorithm for r in rows] == ["cr", "pcr", "rd",
                                               "cr_pcr", "cr_rd"]

    def test_hybrid_interpolates(self):
        """CR+PCR ops at m=2 ~ CR; at m=n ~ PCR."""
        n = 512
        assert cr_pcr_complexity(n, 2).arithmetic_ops == pytest.approx(
            cr_complexity(n).arithmetic_ops, rel=0.02)
        assert cr_pcr_complexity(n, n).arithmetic_ops == \
            pcr_complexity(n).arithmetic_ops


class TestMeasuredValidation:
    @pytest.fixture(scope="class")
    def launches(self):
        import warnings
        from repro.kernels.api import run_kernel
        from repro.numerics.generators import diagonally_dominant_fluid
        s = diagonally_dominant_fluid(2, 128, seed=0)
        out = {}
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for name, m in [("cr", None), ("pcr", None), ("rd", None),
                            ("cr_pcr", 32), ("cr_rd", 16)]:
                _x, res = run_kernel(name, s, intermediate_size=m)
                out[(name, m)] = res
        return out

    def test_cr_counters_close(self, launches):
        ratios = compare(cr_complexity(128),
                         measured_complexity("cr", launches[("cr", None)]))
        for col in ("shared_accesses", "arithmetic_ops", "divisions",
                    "global_accesses"):
            assert 0.75 <= ratios[col] <= 1.25, col

    def test_pcr_counters_close(self, launches):
        ratios = compare(pcr_complexity(128),
                         measured_complexity("pcr", launches[("pcr", None)]))
        for col in ("shared_accesses", "arithmetic_ops", "global_accesses"):
            assert 0.7 <= ratios[col] <= 1.2, col

    def test_rd_known_deviation(self, launches):
        """Our RD moves ~18 n log n shared words against the paper's
        32 n log n ledger entry; the documented ratio band."""
        ratios = compare(rd_complexity(128),
                         measured_complexity("rd", launches[("rd", None)]))
        assert 0.45 <= ratios["shared_accesses"] <= 0.75
        assert 0.85 <= ratios["arithmetic_ops"] <= 1.15

    def test_hybrid_counters_close(self, launches):
        ratios = compare(
            cr_pcr_complexity(128, 32),
            measured_complexity("cr_pcr", launches[("cr_pcr", 32)]))
        assert 0.7 <= ratios["arithmetic_ops"] <= 1.3

    def test_steps_exact_for_cr_and_pcr(self, launches):
        assert measured_complexity(
            "cr", launches[("cr", None)]).steps == cr_complexity(128).steps
        assert measured_complexity(
            "pcr", launches[("pcr", None)]).steps == pcr_complexity(128).steps
