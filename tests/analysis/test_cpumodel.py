"""CPU baseline model: the Fig 7 speedup structure."""

import pytest

from repro.analysis.cpumodel import (cpu_times, ge_ms, gep_ms, mt_ms,
                                     speedup)


class TestScaling:
    def test_ge_linear_in_work(self):
        assert ge_ms(128, 128) == pytest.approx(4 * ge_ms(64, 64) * 4 / 4)
        assert ge_ms(512, 512) == pytest.approx(64 * ge_ms(64, 64))

    def test_gep_slower_than_ge(self):
        assert gep_ms(512, 512) > ge_ms(512, 512)

    def test_mt_beats_ge_only_at_large_sizes(self):
        """§5.2: "the problem size needs to be large for the MT solver
        to outperform a single-threaded solver"."""
        assert mt_ms(64, 64) > ge_ms(64, 64)
        assert mt_ms(256, 256) > ge_ms(256, 256)
        assert mt_ms(512, 512) < ge_ms(512, 512)


class TestPaperAnnotations:
    def test_best_cpu_at_512_is_mt(self):
        t = cpu_times(512, 512)
        assert t.best()[0] == "mt"

    def test_12x_speedup_at_512(self):
        """Fig 7: 12.5x best-GPU over best-CPU at 512x512 with the
        hybrid at 0.422 ms."""
        t = cpu_times(512, 512)
        s = speedup(0.422, t.best()[1])
        assert s == pytest.approx(12.5, rel=0.15)

    def test_28x_over_lapack_at_512(self):
        """§1/§6: 28x over the (GEP) LAPACK solver."""
        s = speedup(0.422, gep_ms(512, 512))
        assert s == pytest.approx(28.0, rel=0.15)

    def test_2_7x_at_64(self):
        """Fig 7 annotation at 64x64 (best GPU ~ 0.047 ms)."""
        t = cpu_times(64, 64)
        s = speedup(0.047, t.best()[1])
        assert s == pytest.approx(2.7, rel=0.25)

    def test_17x_at_256(self):
        """Fig 7 annotation at 256x256 (best GPU ~ 0.117 ms)."""
        t = cpu_times(256, 256)
        s = speedup(0.117, t.best()[1])
        assert s == pytest.approx(17.2, rel=0.25)

    def test_transfer_kills_speedup(self):
        """Fig 7 right: with PCIe transfer the 512x512 speedup drops to
        ~1.2x."""
        from repro.gpusim.transfer import PCIeModel
        transfer = PCIeModel().solver_roundtrip_ms(512, 512)
        t = cpu_times(512, 512)
        s = speedup(0.422 + transfer, t.best()[1])
        assert 0.8 <= s <= 1.7
