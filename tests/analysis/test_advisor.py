"""Automatic performance advisor (the paper's §5.3.6 future-work tool)."""

import pytest

from repro.analysis.advisor import analyze, report
from repro.kernels.api import run_cr, run_cr_pcr, run_pcr
from repro.kernels.thomas_kernel import run_thomas_per_thread
from repro.numerics.generators import diagonally_dominant_fluid


@pytest.fixture(scope="module")
def batch():
    return diagonally_dominant_fluid(2, 512, seed=0)


class TestCrDiagnosis:
    def test_flags_bank_conflicts_first_for_cr(self, batch):
        """The advisor must rediscover the paper's §5.3.1 analysis:
        bank conflicts are CR's top cost."""
        _x, res = run_cr(batch)
        recs = analyze(res)
        assert recs, "CR should not look optimal"
        factors = [r.factor for r in recs]
        assert "shared-memory bank conflicts" in factors[:2]
        assert any("latency" in f for f in factors[:2])

    def test_step_overhead_flagged(self, batch):
        _x, res = run_cr(batch)
        recs = analyze(res)
        assert any("synchronization/control" in r.factor for r in recs)

    def test_savings_are_positive_fractions(self, batch):
        _x, res = run_cr(batch)
        for r in analyze(res):
            assert r.saving_ms > 0
            assert 0 < r.saving_fraction < 1


class TestPcrDiagnosis:
    def test_pcr_nearly_optimal(self, batch):
        """PCR is conflict-free and full-front: the advisor should find
        little to do (paper's own conclusion)."""
        _x, res = run_pcr(batch)
        recs = analyze(res)
        total_saving = sum(r.saving_fraction for r in recs)
        assert total_saving < 0.15

    def test_hybrid_better_than_cr_per_advisor(self, batch):
        """The hybrid should leave less on the table than CR."""
        _x, cr = run_cr(batch)
        _x, hy = run_cr_pcr(batch, intermediate_size=256)
        cr_saving = sum(r.saving_fraction for r in analyze(cr))
        hy_saving = sum(r.saving_fraction for r in analyze(hy))
        assert hy_saving < cr_saving


class TestNaiveKernelDiagnosis:
    def test_flags_coalescing_for_strided_thomas(self):
        s = diagonally_dominant_fluid(128, 128, seed=1)
        _x, res = run_thomas_per_thread(s)
        recs = analyze(res)
        assert any("uncoalesced" in r.factor for r in recs)
        top = recs[0]
        assert ("uncoalesced" in top.factor) or ("latency" in top.factor)


class TestReport:
    def test_report_renders(self, batch):
        _x, res = run_cr(batch)
        text = report(res)
        assert "prioritized optimizations" in text
        assert "ms" in text

    def test_quiet_for_optimal_kernel(self, batch):
        _x, res = run_pcr(batch)
        text = report(res)
        assert "total modeled time" in text
