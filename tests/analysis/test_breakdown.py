"""Resource breakdown and the register-substitution probe."""

import numpy as np
import pytest

from repro.analysis.breakdown import (compute_time_as_remainder,
                                      resource_breakdown,
                                      shared_time_by_substitution)
from repro.kernels.api import run_cr, run_pcr, run_rd
from repro.numerics.generators import close_values, diagonally_dominant_fluid


@pytest.fixture(scope="module")
def paper_batch():
    """Two blocks of the paper's 512-unknown systems (counters are per
    block, so two suffice)."""
    return diagonally_dominant_fluid(2, 512, seed=0)


class TestSubstitutionProbe:
    @pytest.mark.parametrize("runner", [run_cr, run_pcr])
    def test_substitution_equals_direct(self, runner, paper_batch):
        """§5.3's register-substitution estimate equals the direct
        attribution in an additive model -- the soundness property."""
        _x, res = runner(paper_batch)
        direct = resource_breakdown(res).shared_ms
        probe = shared_time_by_substitution(res)
        assert probe == pytest.approx(direct, rel=1e-9)

    def test_remainder_equals_compute(self, paper_batch):
        _x, res = run_cr(paper_batch)
        rb = resource_breakdown(res)
        assert compute_time_as_remainder(res) == pytest.approx(
            rb.compute_ms, rel=1e-9)


class TestPaperResourceShapes:
    def test_cr_shared_dominates(self, paper_batch):
        """Fig 10: shared memory access dominates CR (64 % published)."""
        _x, res = run_cr(paper_batch)
        gf, sf, cf = resource_breakdown(res).fractions()
        assert sf > 0.5
        assert sf > cf > gf

    def test_pcr_compute_dominates(self, paper_batch):
        """Fig 12: PCR's split is 20/30/50 global/shared/compute."""
        _x, res = run_pcr(paper_batch)
        gf, sf, cf = resource_breakdown(res).fractions()
        assert cf > sf
        assert cf == pytest.approx(0.5, abs=0.15)

    def test_shared_bandwidth_ratio_pcr_vs_cr(self, paper_batch):
        """§5.3.2: PCR's effective shared bandwidth is an order of
        magnitude beyond CR's (26x published)."""
        _x, cr_res = run_cr(paper_batch)
        _x, pcr_res = run_pcr(paper_batch)
        bw_cr = resource_breakdown(cr_res).shared_GBps
        bw_pcr = resource_breakdown(pcr_res).shared_GBps
        assert bw_pcr / bw_cr > 8

    def test_rd_compute_rate_exceeds_pcr(self):
        """§5.3.3: RD has ~2x PCR's FLOP count at similar compute time
        -> higher computation rate (186.7 vs 101.9 GFLOPS published)."""
        s = close_values(2, 512, seed=1)
        _x, rd_res = run_rd(s)
        _x, pcr_res = run_pcr(s)
        r_rd = resource_breakdown(rd_res).compute_GFLOPS
        r_pcr = resource_breakdown(pcr_res).compute_GFLOPS
        assert r_rd > r_pcr

    def test_global_bandwidth_magnitude(self):
        """Coalesced staging should land in the tens of GB/s (48.5
        published for CR).  Needs a full wave of blocks (one per SM)
        for the aggregate-rate arithmetic to reflect a busy device."""
        s = diagonally_dominant_fluid(30, 512, seed=2)
        _x, res = run_cr(s)
        bw = resource_breakdown(res).global_GBps
        assert 20 <= bw <= 100
