"""Timing harness: composition of solver time and PCIe transfer."""

import pytest

from repro.analysis.timing import best_gpu_ms, compare_solvers, timed_solve
from repro.numerics.generators import diagonally_dominant_fluid


@pytest.fixture(scope="module")
def batch():
    return diagonally_dominant_fluid(4, 64, seed=0)


class TestTimedSolve:
    def test_returns_solution_and_times(self, batch):
        t = timed_solve("cr", batch)
        assert t.x.shape == batch.shape
        assert t.solver_ms > 0
        assert t.transfer_ms > 0
        assert t.total_ms == pytest.approx(t.solver_ms + t.transfer_ms)

    def test_transfer_independent_of_solver(self, batch):
        t1 = timed_solve("cr", batch)
        t2 = timed_solve("pcr", batch)
        assert t1.transfer_ms == t2.transfer_ms

    def test_transfer_dominates_end_to_end(self, batch):
        """Fig 6 right: with transfer included, all solvers look alike
        because the PCIe bus dominates."""
        times = compare_solvers(batch, names=("cr", "pcr"))
        totals = [t.total_ms for t in times.values()]
        assert max(totals) / min(totals) < 1.6


class TestCompare:
    def test_all_five(self, batch):
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            results = compare_solvers(batch)
        assert set(results) == {"cr", "pcr", "rd", "cr_pcr", "cr_rd"}

    def test_best_gpu_small_size_is_pcr(self, batch):
        """Fig 6: PCR wins at 64-unknown systems."""
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            name, ms = best_gpu_ms(batch)
        assert name == "pcr"

    def test_best_gpu_large_size_is_hybrid(self):
        import warnings
        s = diagonally_dominant_fluid(2, 512, seed=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            name, _ms = best_gpu_ms(s)
        assert name == "cr_pcr"
