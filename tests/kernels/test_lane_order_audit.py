"""Lane-id-ordering regressions for the audited per-lane loops.

The vectorized engine gathers and scatters whole lane planes in *lane
order*.  Two kernels were flagged in the audit as leaning on implicit
lane-position assumptions:

* ``pcr_pingpong_kernel`` alternates source/destination coefficient
  buffers per reduction level -- the solution must come out of the
  buffer the *last* level wrote, for both odd and even level counts.
* ``rd_full_kernel``'s final evaluation step special-cases lane 0
  (which outputs ``x_0`` itself, not ``c00*x0 + c02``); the selection
  must key on the lane *id*, not the lane's position in the active
  array, because the two only coincide for prefix active sets.

These tests pin the behavior against the float64 oracle and against
the per-lane reference engine, so a future engine change that reorders
lanes or repacks active sets cannot silently corrupt either kernel.
"""

import numpy as np
import pytest

from repro.gpusim import ledgers_equal, use_cache
from repro.gpusim.executor import _reference_execute, launch
from repro.kernels.api import run_pcr_pingpong, run_rd_full
from repro.kernels.common import GlobalSystemArrays
from repro.kernels.pcr_pingpong_kernel import pcr_pingpong_kernel
from repro.kernels.rd_full_kernel import rd_full_kernel
from repro.numerics.generators import diagonally_dominant_fluid
from repro.verify.oracle import compare_to_oracle


def _both_engines(kernel, n, num_systems=2, seed=0):
    systems = diagonally_dominant_fluid(num_systems, n, seed=seed)
    gmem_vec = GlobalSystemArrays.from_systems(systems)
    with use_cache(None):
        vec = launch(kernel, num_blocks=num_systems, threads_per_block=n,
                     gmem=gmem_vec)
    gmem_ref = GlobalSystemArrays.from_systems(systems)
    ref = _reference_execute(kernel, num_blocks=num_systems,
                             threads_per_block=n, gmem=gmem_ref)
    return systems, vec, ref, gmem_vec, gmem_ref


class TestPcrPingpongBufferParity:
    @pytest.mark.parametrize("n", (4, 8, 16, 32, 64))
    def test_solution_correct_for_odd_and_even_level_counts(self, n):
        """log2(n)-1 buffer swaps: n = 8 ends in the opposite buffer
        from n = 16.  Both must read back the live buffer."""
        systems = diagonally_dominant_fluid(3, n, seed=2)
        x, _res = run_pcr_pingpong(systems)
        comparison = compare_to_oracle(systems, x)
        assert comparison.rel_residual_max < 1e-4

    @pytest.mark.parametrize("n", (8, 16))
    def test_engines_bitwise_equal(self, n):
        _systems, vec, ref, gmem_vec, gmem_ref = _both_engines(
            pcr_pingpong_kernel, n, seed=9)
        assert ledgers_equal(vec.ledger, ref.ledger) == []
        assert vec.ledger.step_records == ref.ledger.step_records
        assert np.array_equal(gmem_vec.solution().view(np.uint32),
                              gmem_ref.solution().view(np.uint32))

    def test_matches_plain_pcr_solution(self):
        """Double-buffering is a layout optimization; the arithmetic
        (and hence the float32 solution) is unchanged from plain PCR,
        which keeps a read-write hazard barrier instead."""
        from repro.kernels.api import run_pcr

        systems = diagonally_dominant_fluid(2, 32, seed=5)
        x_pp, _ = run_pcr_pingpong(systems)
        x_pcr, _ = run_pcr(systems)
        assert np.array_equal(x_pp.view(np.uint32), x_pcr.view(np.uint32))


class TestRdFullLaneZeroFixup:
    @pytest.mark.parametrize("n", (4, 8))
    def test_first_unknown_is_x0_not_recurrence(self, n):
        """Lane 0 must output x_0 itself; feeding it through the
        ``c00*x0 + c02`` recurrence (as a position-based select would
        after any active-set repack) corrupts column 0.

        Only small sizes: the naive unnormalized 3x3 products overflow
        for larger n (the instability the paper's normalized RD trick
        fixes), so oracle accuracy is only meaningful here.  Larger
        sizes are pinned bitwise against the reference engine below.
        """
        systems = diagonally_dominant_fluid(3, n, seed=4)
        x, _res = run_rd_full(systems)
        comparison = compare_to_oracle(systems, x)
        assert comparison.rel_residual_max < 1e-3
        # Column 0 specifically: the fixup target.
        from repro.verify.oracle import oracle_solve
        x64 = oracle_solve(systems)
        assert np.allclose(x[:, 0], x64[:, 0], rtol=1e-3, atol=1e-5)

    @pytest.mark.parametrize("n", (8, 16))
    def test_engines_bitwise_equal(self, n):
        _systems, vec, ref, gmem_vec, gmem_ref = _both_engines(
            rd_full_kernel, n, seed=7)
        assert ledgers_equal(vec.ledger, ref.ledger) == []
        assert np.array_equal(gmem_vec.solution().view(np.uint32),
                              gmem_ref.solution().view(np.uint32))

    def test_scan_uses_non_prefix_active_sets(self):
        """The scan step activates lanes [stride, n) -- a contiguous
        but non-prefix set.  Pin that the divergence accounting agrees
        between engines (warp_instructions is where a lane-order bug
        in the penalty maths would land)."""
        _systems, vec, ref, _gv, _gr = _both_engines(rd_full_kernel, 64)
        assert vec.ledger.total().warp_instructions == \
            ref.ledger.total().warp_instructions
