"""Split-storage (Göddeke-style) conflict-free CR kernel."""

import numpy as np
import pytest

from repro.gpusim import KernelError, gt200_cost_model
from repro.kernels.api import run_cr, run_cr_pcr, run_cr_split
from repro.kernels.cr_split_kernel import split_footprint_words
from repro.numerics.generators import diagonally_dominant_fluid
from repro.solvers.cr import cyclic_reduction


@pytest.fixture(scope="module")
def batch():
    return diagonally_dominant_fluid(4, 256, seed=0)


@pytest.fixture(scope="module")
def launch(batch):
    return run_cr_split(batch)


class TestFunctional:
    def test_bit_identical_to_cr(self, batch, launch):
        x, _res = launch
        np.testing.assert_array_equal(x, cyclic_reduction(batch))

    @pytest.mark.parametrize("n", [2, 4, 16, 64, 128])
    def test_sizes(self, n):
        s = diagonally_dominant_fluid(3, n, seed=n)
        x, _res = run_cr_split(s)
        np.testing.assert_array_equal(x, cyclic_reduction(s))


class TestConflictFreedom:
    def test_every_phase_degree_one(self, launch):
        """The whole point: no bank conflicts anywhere (footnote 1)."""
        _x, res = launch
        for name, pc in res.ledger.phases.items():
            assert pc.conflict_degree == pytest.approx(1.0, abs=0.01), name

    def test_inplace_cr_conflicted_on_same_input(self, batch):
        _x, res = run_cr(batch)
        assert res.ledger.phases["forward_reduction"].conflict_degree > 2


class TestFootprint:
    def test_costs_about_twice_inplace(self, batch, launch):
        _x, res = launch
        inplace_bytes = 5 * batch.n * 4
        ratio = res.shared_bytes / inplace_bytes
        assert 1.9 <= ratio <= 2.3

    def test_512_exceeds_shared_memory(self):
        """The documented limit of this layout (the footnote's 50%
        figure needs overlay tricks we keep out for clarity)."""
        s = diagonally_dominant_fluid(2, 512, seed=1)
        with pytest.raises(KernelError, match="shared"):
            run_cr_split(s)

    def test_footprint_formula(self):
        assert split_footprint_words(8) >= 2 * 8 - 2


class TestFootnoteClaim:
    def test_similar_performance_to_hybrid(self, batch):
        """Footnote 1: the split variant 'achieves similar performance
        as our hybrid CR+PCR solver' -- within 2x here, and clearly
        faster than in-place CR."""
        cm = gt200_cost_model()
        _x, split = run_cr_split(batch)
        _x, inplace = run_cr(batch)
        _x, hybrid = run_cr_pcr(batch, intermediate_size=batch.n // 2)
        t_split = cm.report(split).total_ms
        t_inplace = cm.report(inplace).total_ms
        t_hybrid = cm.report(hybrid).total_ms
        assert t_split < t_inplace
        assert t_split < 2.0 * t_hybrid
