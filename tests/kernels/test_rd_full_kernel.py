"""Full-matrix RD vs the paper's two-row storage trick (§4)."""

import numpy as np
import pytest

from repro.gpusim import KernelError, gt200_cost_model
from repro.kernels.api import run_rd, run_rd_full
from repro.numerics.generators import close_values


class TestFunctional:
    @pytest.mark.parametrize("n", [2, 16, 128])
    def test_bit_identical_to_tricked_rd(self, n):
        """The third row is [0,0,1] throughout, so carrying it changes
        nothing numerically."""
        s = close_values(3, n, seed=n)
        x1, _ = run_rd(s)
        x2, _ = run_rd_full(s)
        np.testing.assert_array_equal(x1, x2)


class TestTrickValue:
    @pytest.fixture(scope="class")
    def pair(self):
        s = close_values(2, 256, seed=0)
        _x, trick = run_rd(s)
        _x, full = run_rd_full(s)
        return trick, full

    def test_half_the_flops(self, pair):
        """45-op general products vs 20-op structured ones (§4:
        "save several floating point operations")."""
        trick, full = pair
        ratio = full.ledger.total().flops / trick.ledger.total().flops
        assert 1.9 <= ratio <= 2.4

    def test_fifty_percent_more_traffic(self, pair):
        trick, full = pair
        ratio = (full.ledger.total().shared_words
                 / trick.ledger.total().shared_words)
        assert 1.4 <= ratio <= 1.6

    def test_full_variant_closer_to_table1_count(self, pair):
        """Our Table 1 deviation explained: the paper's 32 n log2 n
        shared-access entry matches the untricked kernel far better
        than the tricked one it describes in §4."""
        from repro.analysis.complexity import (measured_complexity,
                                               rd_complexity)
        trick, full = pair
        paper = rd_complexity(256).shared_accesses
        err_trick = abs(measured_complexity("rd", trick).shared_accesses
                        - paper)
        err_full = abs(measured_complexity("rd", full).shared_accesses
                       - paper)
        assert err_full < err_trick

    def test_trick_is_faster(self, pair):
        cm = gt200_cost_model()
        trick, full = pair
        assert cm.report(trick).total_ms < cm.report(full).total_ms

    def test_trick_required_at_512(self):
        """Nine n-word arrays exceed shared memory at n = 512: the
        storage trick is what makes RD run the flagship size at all."""
        s = close_values(2, 512, seed=1)
        run_rd(s)  # fits
        with pytest.raises(KernelError, match="shared"):
            run_rd_full(s)
