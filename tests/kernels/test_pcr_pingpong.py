"""Double-buffered PCR vs the paper's in-place choice (§4)."""

import numpy as np
import pytest

from repro.gpusim import KernelError, gt200_cost_model
from repro.kernels.api import run_pcr, run_pcr_pingpong
from repro.numerics.generators import diagonally_dominant_fluid


class TestFunctional:
    @pytest.mark.parametrize("n", [2, 8, 64, 256])
    def test_bit_identical_to_inplace(self, n):
        s = diagonally_dominant_fluid(4, n, seed=n)
        x1, _ = run_pcr(s)
        x2, _ = run_pcr_pingpong(s)
        np.testing.assert_array_equal(x1, x2)

    def test_still_conflict_free(self):
        s = diagonally_dominant_fluid(2, 128, seed=0)
        _x, res = run_pcr_pingpong(s)
        for name, pc in res.ledger.phases.items():
            assert pc.conflict_degree == pytest.approx(1.0), name


class TestFootprintCost:
    def test_nearly_double_footprint(self):
        s = diagonally_dominant_fluid(2, 256, seed=1)
        _x, inplace = run_pcr(s)
        _x, pingpong = run_pcr_pingpong(s)
        assert pingpong.shared_bytes == pytest.approx(
            inplace.shared_bytes * 9 / 5)

    def test_512_does_not_fit(self):
        """The §4 killer: in-place PCR runs the paper's flagship size;
        the double-buffered version cannot."""
        s = diagonally_dominant_fluid(2, 512, seed=2)
        run_pcr(s)  # fits
        with pytest.raises(KernelError, match="shared"):
            run_pcr_pingpong(s)

    def test_occupancy_penalty_at_256(self):
        """Fewer resident blocks -> slower at grid scale despite one
        fewer barrier per step."""
        cm = gt200_cost_model()
        from repro.gpusim import GTX280
        s = diagonally_dominant_fluid(2, 256, seed=3)
        _x, r_in = run_pcr(s)
        _x, r_pp = run_pcr_pingpong(s)
        conc_in = GTX280.blocks_per_sm(r_in.shared_bytes, 256)
        conc_pp = GTX280.blocks_per_sm(r_pp.shared_bytes, 256)
        assert conc_pp < conc_in

        def grid_ms(res):
            sc, conc, _ = cm.grid_scale(GTX280, 256, res.shared_bytes,
                                        res.threads_per_block)
            return sum(cm.phase_time_block_ns(pc, conc).total_ms
                       for pc in res.ledger.phases.values()) * sc * 1e-6

        assert grid_ms(r_pp) > grid_ms(r_in)

    def test_one_fewer_sync_per_step(self):
        s = diagonally_dominant_fluid(2, 64, seed=4)
        _x, r_in = run_pcr(s)
        _x, r_pp = run_pcr_pingpong(s)
        assert (r_pp.ledger.phases["forward_reduction"].syncs
                < r_in.ledger.phases["forward_reduction"].syncs)
