"""The multi-block per-thread Thomas kernels and their two layouts.

Covers the tentpole contracts: interleaved and sequential runs are
*bitwise* equal (same per-lane arithmetic, different address maps),
multi-block grids with identity padding are exact, the interleaved
layout coalesces, ``run_kernel`` gates the ``layout=`` argument, and
the analytic estimator path stays bitwise-equal to the functional
simulation for every geometry.
"""

import numpy as np
import pytest

from repro.analysis.timing import modeled_grid_timing
from repro.gpusim import GTX280, InterleavedSystemArrays, estimate_ms
from repro.kernels import run_kernel, run_thomas_batch
from repro.numerics.generators import diagonally_dominant_fluid
from repro.solvers.thomas import thomas_batched


class TestRunThomasBatch:
    @pytest.mark.parametrize("S,n", [(1, 8), (16, 32), (600, 16),
                                     (700, 33), (1025, 8)])
    @pytest.mark.parametrize("layout", ["sequential", "interleaved"])
    def test_matches_cpu_thomas(self, S, n, layout):
        s = diagonally_dominant_fluid(S, n, seed=1)
        x, res = run_thomas_batch(s, layout=layout)
        assert x.shape == (S, n)
        np.testing.assert_allclose(x, thomas_batched(s), rtol=2e-5,
                                   atol=1e-6)

    @pytest.mark.parametrize("S,n", [(32, 16), (600, 16), (1025, 8)])
    def test_layouts_bitwise_equal(self, S, n):
        """Same float32 op sequence per lane => identical bits."""
        s = diagonally_dominant_fluid(S, n, seed=2)
        xs, _ = run_thomas_batch(s, layout="sequential")
        xi, _ = run_thomas_batch(s, layout="interleaved")
        np.testing.assert_array_equal(xs, xi)

    def test_multiblock_geometry(self):
        s = diagonally_dominant_fluid(1025, 8, seed=3)
        _, res = run_thomas_batch(s, layout="interleaved")
        assert res.threads_per_block == GTX280.max_threads_per_block
        assert res.num_blocks == 3          # ceil(1025/512), padded

    def test_interleaved_coalesces(self):
        s = diagonally_dominant_fluid(64, 64, seed=4)
        _, seq = run_thomas_batch(s, layout="sequential")
        _, inter = run_thomas_batch(s, layout="interleaved")
        t_s = seq.ledger.total().global_transactions
        t_i = inter.ledger.total().global_transactions
        assert t_s > 10 * t_i

    def test_bad_layout_rejected(self):
        s = diagonally_dominant_fluid(2, 8, seed=0)
        with pytest.raises(ValueError, match="layout must be one of"):
            run_thomas_batch(s, layout="diagonal")


class TestRunKernelLayout:
    def test_dispatches_interleaved_thomas(self):
        s = diagonally_dominant_fluid(48, 16, seed=5)
        x, res = run_kernel("thomas", s, layout="interleaved")
        np.testing.assert_allclose(x, thomas_batched(s), rtol=2e-5,
                                   atol=1e-6)

    def test_sequential_layout_accepted_everywhere(self):
        s = diagonally_dominant_fluid(2, 16, seed=5)
        x, _ = run_kernel("cr", s, layout="sequential")
        assert x.shape == (2, 16)

    def test_interleaved_rejected_for_shared_memory_kernels(self):
        s = diagonally_dominant_fluid(2, 16, seed=5)
        with pytest.raises(ValueError, match="does not take layout"):
            run_kernel("cr", s, layout="interleaved")


class TestEstimatorAgreement:
    """The analytic launch must stay bitwise-equal to the functional
    simulate-then-cost path for both layouts and any block count."""

    @pytest.mark.parametrize("S,n", [(4, 8), (512, 8), (600, 16),
                                     (2048, 8), (1, 512)])
    @pytest.mark.parametrize("layout", ["sequential", "interleaved"])
    def test_bitwise_equal_modeled_ms(self, S, n, layout):
        lay = None if layout == "sequential" else layout
        measured = modeled_grid_timing("thomas", n, S, layout=lay).solver_ms
        analytic = estimate_ms("thomas", n, S, layout=layout)
        assert measured == analytic


class TestInterleavedSystemArrays:
    def test_roundtrip_and_stride(self):
        s = diagonally_dominant_fluid(6, 8, seed=6)
        gmem = InterleavedSystemArrays.from_systems(s)
        assert gmem.system_stride == 6
        # element j of system i sits at j*S + i
        np.testing.assert_array_equal(
            gmem.b.data.reshape(8, 6).T, s.b.astype(np.float32))

    def test_trace_signature_layout_tagged(self):
        """The same (S, n) shape must never share a trace-cache key
        across layouts."""
        from repro.kernels.common import GlobalSystemArrays
        s = diagonally_dominant_fluid(4, 8, seed=7)
        inter = InterleavedSystemArrays.from_systems(s).trace_signature()
        seq = GlobalSystemArrays.from_systems(s).trace_signature()
        assert inter[0] == "gmem_interleaved"
        assert seq[0] == "gmem"
        assert inter != seq

    def test_fault_walker_sees_arrays(self):
        """ECC-upset detection walks dataclass fields one level; the
        interleaved container must expose its GlobalArrays that way."""
        from repro.gpusim.faults import find_global_arrays
        s = diagonally_dominant_fluid(4, 8, seed=8)
        gmem = InterleavedSystemArrays.from_systems(s)
        arrs = find_global_arrays({"gmem": gmem})
        assert gmem.a in arrs and gmem.x in arrs
