"""Packed PCR: multiple small systems per block."""

import numpy as np
import pytest

from repro.gpusim import GTX280, gt200_cost_model
from repro.kernels.api import run_pcr
from repro.kernels.pcr_packed_kernel import run_pcr_packed
from repro.numerics.generators import diagonally_dominant_fluid


def grid_ms(res, num_blocks):
    cm = gt200_cost_model()
    scale, conc, _ = cm.grid_scale(GTX280, num_blocks, res.shared_bytes,
                                   res.threads_per_block)
    return sum(cm.phase_time_block_ns(pc, conc).total_ms
               for pc in res.ledger.phases.values()) * scale * 1e-6


class TestFunctional:
    @pytest.mark.parametrize("n,P", [(16, 2), (64, 4), (64, 8), (128, 2)])
    def test_bit_identical_to_plain_pcr(self, n, P):
        s = diagonally_dominant_fluid(16, n, seed=n + P)
        x_ref, _ = run_pcr(s)
        x, _ = run_pcr_packed(s, P)
        np.testing.assert_array_equal(x, x_ref)

    def test_p1_equals_plain_layout(self):
        s = diagonally_dominant_fluid(8, 32, seed=0)
        x, res = run_pcr_packed(s, 1)
        x_ref, ref = run_pcr(s)
        np.testing.assert_array_equal(x, x_ref)
        assert res.shared_bytes == ref.shared_bytes

    def test_conflict_free(self):
        s = diagonally_dominant_fluid(8, 64, seed=1)
        _x, res = run_pcr_packed(s, 4)
        for name, pc in res.ledger.phases.items():
            assert pc.conflict_degree == pytest.approx(1.0), name


class TestPackingWins:
    def test_packing_beats_plain_at_small_sizes(self):
        """Four 64-unknown systems per block out-run the paper's
        one-per-block mapping (fuller warps, fewer blocks)."""
        s = diagonally_dominant_fluid(64, 64, seed=2)
        _x, plain = run_pcr(s)
        _x, packed = run_pcr_packed(s, 4)
        assert grid_ms(packed, 16) < grid_ms(plain, 64)

    def test_too_much_packing_backfires(self):
        """The occupancy curve has an interior optimum: P=8 carries
        20 KB-ish of shared per block and loses residency."""
        s = diagonally_dominant_fluid(64, 64, seed=3)
        _x, p4 = run_pcr_packed(s, 4)
        _x, p8 = run_pcr_packed(s, 8)
        assert grid_ms(p8, 8) > grid_ms(p4, 16)


class TestValidation:
    def test_indivisible_batch(self):
        s = diagonally_dominant_fluid(10, 32, seed=4)
        with pytest.raises(ValueError, match="divisible"):
            run_pcr_packed(s, 4)

    def test_block_too_wide(self):
        from repro.gpusim import KernelError
        s = diagonally_dominant_fluid(8, 256, seed=5)
        with pytest.raises((KernelError, ValueError)):
            run_pcr_packed(s, 4)  # 1024 threads > 512
