"""Hybrid kernels: functional equivalence and structural properties."""

import warnings

import numpy as np
import pytest

from repro.gpusim import KernelError
from repro.kernels.api import run_cr_pcr, run_cr_rd
from repro.numerics.generators import close_values, diagonally_dominant_fluid
from repro.solvers.hybrid import cr_pcr, cr_rd
from repro.solvers.thomas import thomas_batched


class TestCrPcr:
    @pytest.mark.parametrize("n,m", [(16, 4), (64, 8), (64, 32), (128, 64)])
    def test_bit_identical_to_numpy(self, n, m):
        s = diagonally_dominant_fluid(4, n, seed=n + m)
        x, _res = run_cr_pcr(s, intermediate_size=m)
        np.testing.assert_array_equal(x, cr_pcr(s, intermediate_size=m))

    def test_default_intermediate(self):
        s = diagonally_dominant_fluid(2, 64, seed=0)
        x, res = run_cr_pcr(s)
        assert s.astype(np.float64).residual(x.astype(np.float64)).max() < 1e-3

    def test_phase_sequence(self):
        s = diagonally_dominant_fluid(2, 64, seed=1)
        _x, res = run_cr_pcr(s, intermediate_size=16)
        assert list(res.ledger.phases) == [
            "global_load", "cr_forward_reduction", "copy_intermediate",
            "inner_forward_reduction", "inner_solve_two",
            "cr_backward_substitution", "global_store"]

    def test_step_split(self):
        """n=64, m=16: 2 CR fwd + 1 copy + 3 PCR fwd + 1 solve +
        2 CR bwd steps."""
        s = diagonally_dominant_fluid(2, 64, seed=2)
        _x, res = run_cr_pcr(s, intermediate_size=16)
        L = res.ledger
        assert L.phases["cr_forward_reduction"].steps == 2
        assert L.phases["inner_forward_reduction"].steps == 3
        assert L.phases["cr_backward_substitution"].steps == 2

    def test_inner_solver_conflict_free(self):
        s = diagonally_dominant_fluid(2, 64, seed=3)
        _x, res = run_cr_pcr(s, intermediate_size=16)
        assert res.ledger.phases["inner_forward_reduction"].conflict_degree \
            == pytest.approx(1.0)

    def test_shared_footprint(self):
        s = diagonally_dominant_fluid(2, 64, seed=4)
        _x, res = run_cr_pcr(s, intermediate_size=16)
        assert res.shared_bytes == (5 * 64 + 4 * 16) * 4


class TestCrRd:
    @pytest.mark.parametrize("n,m", [(16, 4), (64, 16), (64, 64)])
    def test_bit_identical_to_numpy(self, n, m):
        s = close_values(4, n, seed=n + m)
        x, _res = run_cr_rd(s, intermediate_size=m)
        np.testing.assert_array_equal(x, cr_rd(s, intermediate_size=m))

    def test_phase_sequence(self):
        s = close_values(2, 64, seed=5)
        _x, res = run_cr_rd(s, intermediate_size=16)
        assert list(res.ledger.phases) == [
            "global_load", "cr_forward_reduction", "rd_copy_setup",
            "rd_scan", "rd_solution_evaluation",
            "cr_backward_substitution", "global_store"]

    def test_m256_at_n512_exceeds_shared_memory(self):
        """§5.3.5: the intermediate size "is 128 instead of 256 ...
        due to the limit of shared memory size"."""
        s = close_values(2, 512, seed=6)
        with pytest.raises(KernelError, match="shared memory"):
            run_cr_rd(s, intermediate_size=256)

    def test_m128_at_n512_fits(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            s = close_values(2, 512, seed=7)
            _x, res = run_cr_rd(s, intermediate_size=128)
        assert res.blocks_per_sm == 1

    def test_cr_pcr_m256_at_n512_fits(self):
        """...while CR+PCR can afford m = 256 (§5.3.4)."""
        s = diagonally_dominant_fluid(2, 512, seed=8)
        x, res = run_cr_pcr(s, intermediate_size=256)
        assert res.blocks_per_sm == 1
        assert np.isfinite(x).all()


class TestValidation:
    def test_bad_intermediate_size(self):
        s = diagonally_dominant_fluid(1, 16, seed=9)
        with pytest.raises(ValueError):
            run_cr_pcr(s, intermediate_size=12)
