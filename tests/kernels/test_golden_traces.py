"""Golden-trace regression pins.

Every shipped kernel's architectural counters at a fixed configuration
are stored in ``golden_traces_n64.json``.  Any change to an access
pattern, op count, or phase structure -- intentional or not -- fails
here with a counter-level diff.  If the change is intentional,
regenerate the fixture (see the snippet in this file's docstring
history / DESIGN.md) and re-run the calibration sanity tests.
"""

import json
import os
import warnings

import pytest

from repro.gpusim.serialize import ledger_from_dict, ledgers_equal
from repro.kernels.api import (run_cr_global, run_cr_split, run_kernel,
                               run_pcr_pingpong, run_rd_full)
from repro.kernels.thomas_kernel import run_thomas_per_thread
from repro.numerics.generators import close_values, diagonally_dominant_fluid

FIXTURE = os.path.join(os.path.dirname(__file__), "golden_traces_n64.json")


@pytest.fixture(scope="module")
def golden():
    with open(FIXTURE) as fh:
        return json.load(fh)


def _run(name):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        s = (close_values(2, 64, seed=0) if "rd" in name
             else diagonally_dominant_fluid(2, 64, seed=0))
        if name in ("cr", "pcr", "rd", "cr_pcr", "cr_rd"):
            m = 16 if name in ("cr_pcr", "cr_rd") else None
            _x, res = run_kernel(name, s, intermediate_size=m)
        elif name == "cr_split":
            _x, res = run_cr_split(s)
        elif name == "cr_global":
            _x, res = run_cr_global(s)
        elif name == "pcr_pingpong":
            _x, res = run_pcr_pingpong(s)
        elif name == "rd_full":
            _x, res = run_rd_full(s)
        elif name == "thomas_per_thread":
            _x, res = run_thomas_per_thread(
                diagonally_dominant_fluid(32, 32, seed=0))
        else:
            raise KeyError(name)
    return res


ALL_KERNELS = ["cr", "pcr", "rd", "cr_pcr", "cr_rd", "cr_split",
               "cr_global", "pcr_pingpong", "rd_full",
               "thomas_per_thread"]


@pytest.mark.parametrize("name", ALL_KERNELS)
def test_trace_pinned(golden, name):
    res = _run(name)
    expected = ledger_from_dict(golden[name]["ledger"])
    diffs = ledgers_equal(res.ledger, expected, rel_tol=1e-12)
    assert not diffs, f"{name} trace drifted:\n" + "\n".join(diffs[:20])


@pytest.mark.parametrize("name", ALL_KERNELS)
def test_launch_config_pinned(golden, name):
    res = _run(name)
    g = golden[name]
    assert res.threads_per_block == g["threads_per_block"], name
    assert res.shared_bytes == g["shared_bytes"], name


def test_fixture_covers_all_kernels(golden):
    assert set(golden) == set(ALL_KERNELS)
