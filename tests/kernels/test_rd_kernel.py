"""RD kernel: functional equivalence, scan structure, counters."""

import warnings

import numpy as np
import pytest

from repro.kernels.api import run_rd
from repro.numerics.generators import close_values, diagonally_dominant_fluid
from repro.solvers.rd import recursive_doubling


@pytest.fixture(scope="module")
def batch():
    return close_values(8, 64, seed=0)


@pytest.fixture(scope="module")
def launch(batch):
    return run_rd(batch)


class TestFunctional:
    def test_bit_identical_to_numpy_rd(self, batch, launch):
        x, _res = launch
        np.testing.assert_array_equal(x, recursive_doubling(batch))

    @pytest.mark.parametrize("n", [2, 4, 32, 128])
    def test_sizes(self, n):
        s = close_values(4, n, seed=n)
        x, _res = run_rd(s)
        np.testing.assert_array_equal(x, recursive_doubling(s))

    def test_overflow_reproduced_in_kernel(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            s = diagonally_dominant_fluid(4, 256, seed=1)
            x, _res = run_rd(s)
        assert not np.isfinite(x).all()


class TestCounters:
    def test_conflict_free(self, launch):
        _x, res = launch
        for name, pc in res.ledger.phases.items():
            assert pc.conflict_degree == pytest.approx(1.0), name

    def test_steps_log2n_plus_2(self, launch):
        """Table 1: log2 n + 2 steps (setup + scan + evaluation)."""
        _x, res = launch
        assert res.ledger.total().steps == 6 + 2

    def test_scan_active_threads_shrink(self, launch):
        """Hillis-Steele: step s has n - 2^(s-1) active threads --
        "gradually reduced to half" (§4)."""
        _x, res = launch
        actives = [pc.max_active_threads
                   for pc in res.ledger.steps_in_phase("scan")]
        assert actives == [63, 62, 60, 56, 48, 32]

    def test_no_divisions_in_scan(self, launch):
        """Table 1: "no div in major step scan"."""
        _x, res = launch
        assert res.ledger.phases["scan"].divs == 0

    def test_setup_has_divisions(self, launch):
        _x, res = launch
        assert res.ledger.phases["global_load_setup"].divs == 3 * 64

    def test_global_accesses_5n(self, batch, launch):
        _x, res = launch
        assert res.ledger.total().global_words == 5 * batch.n

    def test_shared_footprint_six_rows_plus_broadcast(self, batch, launch):
        _x, res = launch
        assert res.shared_bytes == (6 * batch.n + 1) * 4

    def test_more_shared_traffic_than_pcr(self, batch):
        """Table 1: RD has ~2x PCR's shared accesses."""
        from repro.kernels.api import run_pcr
        _x1, rd_res = run_rd(batch)
        _x2, pcr_res = run_pcr(batch)
        ratio = (rd_res.ledger.total().shared_words
                 / pcr_res.ledger.total().shared_words)
        assert ratio > 0.95
