"""CR kernel: functional equivalence, counters, conflict pattern."""

import numpy as np
import pytest

from repro.analysis.complexity import compare, cr_complexity, measured_complexity
from repro.kernels.api import run_cr
from repro.numerics.generators import diagonally_dominant_fluid
from repro.solvers.cr import cyclic_reduction


@pytest.fixture(scope="module")
def batch():
    return diagonally_dominant_fluid(8, 64, seed=0)


@pytest.fixture(scope="module")
def launch(batch):
    return run_cr(batch)


class TestFunctional:
    def test_bit_identical_to_numpy_cr(self, batch, launch):
        x, _res = launch
        np.testing.assert_array_equal(x, cyclic_reduction(batch))

    @pytest.mark.parametrize("n", [2, 4, 16, 128])
    def test_sizes(self, n):
        s = diagonally_dominant_fluid(4, n, seed=n)
        x, _res = run_cr(s)
        np.testing.assert_array_equal(x, cyclic_reduction(s))

    def test_conflict_free_variant_same_values(self, batch):
        x_normal, _ = run_cr(batch)
        x_cf, _ = run_cr(batch, conflict_free_timing=True)
        np.testing.assert_array_equal(x_normal, x_cf)


class TestCounters:
    def test_global_accesses_5n(self, batch, launch):
        _x, res = launch
        assert res.ledger.total().global_words == 5 * batch.n

    def test_steps_match_table1(self, batch, launch):
        _x, res = launch
        # 2 log2 n - 1 algorithmic steps (Table 1)
        assert res.ledger.total().steps == 2 * 6 - 1

    def test_divisions_near_3n(self, batch, launch):
        _x, res = launch
        ratios = compare(cr_complexity(batch.n),
                         measured_complexity("cr", res))
        assert 0.8 <= ratios["divisions"] <= 1.1

    def test_shared_accesses_near_23n(self, batch, launch):
        _x, res = launch
        ratios = compare(cr_complexity(batch.n),
                         measured_complexity("cr", res))
        assert 0.85 <= ratios["shared_accesses"] <= 1.1

    def test_ops_near_17n(self, batch, launch):
        _x, res = launch
        ratios = compare(cr_complexity(batch.n),
                         measured_complexity("cr", res))
        assert 0.85 <= ratios["arithmetic_ops"] <= 1.15

    def test_shared_footprint_five_arrays(self, batch, launch):
        _x, res = launch
        assert res.shared_bytes == 5 * batch.n * 4


class TestConflictPattern:
    def test_fig9_degree_ladder(self):
        """Forward reduction at n = 512: degrees 2,4,8,16,16,8,4,2."""
        s = diagonally_dominant_fluid(2, 512, seed=1)
        _x, res = run_cr(s)
        degrees = [round(pc.conflict_degree)
                   for pc in res.ledger.steps_in_phase("forward_reduction")]
        assert degrees == [2, 4, 8, 16, 16, 8, 4, 2]

    def test_active_thread_halving(self):
        s = diagonally_dominant_fluid(2, 512, seed=2)
        _x, res = run_cr(s)
        actives = [pc.max_active_threads
                   for pc in res.ledger.steps_in_phase("forward_reduction")]
        assert actives == [256, 128, 64, 32, 16, 8, 4, 2]

    def test_conflict_free_variant_degree_one(self):
        s = diagonally_dominant_fluid(2, 512, seed=3)
        _x, res = run_cr(s, conflict_free_timing=True)
        for pc in res.ledger.steps_in_phase("forward_reduction"):
            assert pc.conflict_degree == pytest.approx(1.0, abs=0.05)

    def test_backward_phase_also_conflicted(self, launch):
        _x, res = launch
        bwd = res.ledger.phases["backward_substitution"]
        assert bwd.conflict_degree > 1.5


class TestOccupancy:
    def test_512_runs_one_block_per_sm(self):
        s = diagonally_dominant_fluid(2, 512, seed=4)
        _x, res = run_cr(s)
        assert res.blocks_per_sm == 1

    def test_64_runs_many_blocks(self, launch):
        _x, res = launch
        assert res.blocks_per_sm >= 4
