"""Property-based tests across the kernel layer.

The central invariant: for every solver, size, and switch point, the
instrumented kernel and the vectorised NumPy solver execute the same
float32 arithmetic -- results are bit-identical, and the counters obey
basic conservation laws (global traffic = 5n words, steps match the
closed forms, conflict degrees bounded by the bank count).
"""

import warnings

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.kernels.api import run_kernel
from repro.numerics.generators import close_values, diagonally_dominant_fluid
from repro.solvers.api import SOLVERS

sizes = st.sampled_from([4, 8, 16, 32, 64])
batches = st.integers(min_value=1, max_value=4)
seeds = st.integers(min_value=0, max_value=10**6)


def _gen(name, S, n, seed):
    gen = close_values if "rd" in name else diagonally_dominant_fluid
    return gen(S, n, seed=seed)


@settings(max_examples=20, deadline=None)
@given(name=st.sampled_from(["cr", "pcr", "rd"]), n=sizes, S=batches,
       seed=seeds)
def test_kernel_equals_numpy_everywhere(name, n, S, seed):
    s = _gen(name, S, n, seed)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        x_k, _res = run_kernel(name, s)
        x_np = SOLVERS[name](s, intermediate_size=None)
    np.testing.assert_array_equal(x_k, x_np)


@settings(max_examples=20, deadline=None)
@given(n=st.sampled_from([8, 16, 32, 64]), seed=seeds,
       m_exp=st.integers(min_value=1, max_value=5))
def test_hybrid_kernel_equals_numpy_for_any_switch_point(n, seed, m_exp):
    m = min(2 ** m_exp, n)
    s = diagonally_dominant_fluid(2, n, seed=seed)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        x_k, _res = run_kernel("cr_pcr", s, intermediate_size=m)
        x_np = SOLVERS["cr_pcr"](s, intermediate_size=m)
    np.testing.assert_array_equal(x_k, x_np)


@settings(max_examples=15, deadline=None)
@given(name=st.sampled_from(["cr", "pcr", "rd"]), n=sizes, seed=seeds)
def test_counter_conservation_laws(name, n, seed):
    s = _gen(name, 2, n, seed)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        _x, res = run_kernel(name, s)
    total = res.ledger.total()
    # Global traffic: 4n read + n written, always.
    assert total.global_words == 5 * n
    # Conflict degrees bounded by the bank count.
    for pc in res.ledger.phases.values():
        assert pc.conflict_degree <= res.device.shared_mem_banks
    # Steps match the closed form.
    expected = {"cr": 2 * int(np.log2(n)) - 1,
                "pcr": int(np.log2(n)),
                "rd": int(np.log2(n)) + 2}[name]
    assert total.steps == expected
    # Step records sum to phase totals.
    for phase, pcs in ((p, res.ledger.steps_in_phase(p))
                       for p in res.ledger.phase_names()):
        if pcs:
            assert sum(pc.flops for pc in pcs) == \
                res.ledger.phases[phase].flops


@settings(max_examples=15, deadline=None)
@given(n=sizes, seed=seeds)
def test_counters_data_independent(n, seed):
    """Two different batches of the same shape produce identical
    traces -- cost is a function of the address pattern only."""
    s1 = diagonally_dominant_fluid(2, n, seed=seed)
    s2 = diagonally_dominant_fluid(2, n, seed=seed + 1)
    _x, r1 = run_kernel("cr", s1)
    _x, r2 = run_kernel("cr", s2)
    assert r1.ledger.total().as_dict() == r2.ledger.total().as_dict()


@settings(max_examples=10, deadline=None)
@given(n=sizes, S1=batches, S2=batches, seed=seeds)
def test_per_block_counters_independent_of_batch_size(n, S1, S2, seed):
    """Counters are per block: grids of different sizes trace equal."""
    a = diagonally_dominant_fluid(S1, n, seed=seed)
    b = diagonally_dominant_fluid(S2, n, seed=seed)
    _x, ra = run_kernel("pcr", a)
    _x, rb = run_kernel("pcr", b)
    assert ra.ledger.total().as_dict() == rb.ledger.total().as_dict()
