"""Global-memory-only CR and the naive per-thread Thomas kernel."""

import numpy as np
import pytest

from repro.gpusim import gt200_cost_model
from repro.kernels.api import run_cr, run_cr_global
from repro.kernels.thomas_kernel import run_thomas_per_thread
from repro.numerics.generators import diagonally_dominant_fluid
from repro.solvers.cr import cyclic_reduction
from repro.solvers.thomas import thomas_batched


class TestGlobalOnlyCR:
    @pytest.mark.parametrize("n", [4, 64, 256])
    def test_bit_identical_to_shared_cr(self, n):
        s = diagonally_dominant_fluid(4, n, seed=n)
        x, _res = run_cr_global(s)
        np.testing.assert_array_equal(x, cyclic_reduction(s))

    def test_no_shared_memory(self):
        s = diagonally_dominant_fluid(2, 64, seed=0)
        _x, res = run_cr_global(s)
        assert res.shared_bytes == 0

    def test_handles_systems_too_large_for_shared(self):
        """The whole reason the fallback exists (§4): n = 1024 will not
        fit five shared arrays, the global path just runs."""
        from repro.gpusim import KernelError
        s = diagonally_dominant_fluid(2, 1024, seed=1)
        with pytest.raises(KernelError):
            run_cr(s)
        x, _res = run_cr_global(s)
        np.testing.assert_allclose(
            x, thomas_batched(s.astype(np.float64)), rtol=1e-2, atol=1e-3)

    def test_roughly_3x_penalty_at_512(self):
        """§4: "roughly 3x performance degradation"."""
        cm = gt200_cost_model()
        s = diagonally_dominant_fluid(2, 512, seed=2)
        _x, shared = run_cr(s)
        _x, glob = run_cr_global(s)
        ratio = cm.report(glob).total_ms / cm.report(shared).total_ms
        assert 2.0 <= ratio <= 4.5

    def test_strided_transactions_explode(self):
        s = diagonally_dominant_fluid(2, 256, seed=3)
        _x, shared = run_cr(s)
        _x, glob = run_cr_global(s)
        assert (glob.ledger.total().global_transactions
                > 5 * shared.ledger.total().global_transactions)


class TestThomasPerThread:
    def test_strided_layout_correct(self):
        s = diagonally_dominant_fluid(32, 32, seed=0)
        x, _res = run_thomas_per_thread(s)
        np.testing.assert_allclose(x, thomas_batched(s), rtol=1e-4,
                                   atol=1e-5)

    def test_interleaved_layout_correct(self):
        s = diagonally_dominant_fluid(32, 32, seed=1)
        x, _res = run_thomas_per_thread(s, interleaved=True)
        np.testing.assert_allclose(x, thomas_batched(s), rtol=1e-4,
                                   atol=1e-5)

    def test_interleaving_fixes_coalescing(self):
        s = diagonally_dominant_fluid(64, 64, seed=2)
        _x, strided = run_thomas_per_thread(s)
        _x, inter = run_thomas_per_thread(s, interleaved=True)
        t_s = strided.ledger.total().global_transactions
        t_i = inter.ledger.total().global_transactions
        assert t_s > 10 * t_i

    def test_loses_to_fine_grained_mapping(self):
        """The paper's design point: equations-to-threads beats
        systems-to-threads even with perfect coalescing (step count)."""
        cm = gt200_cost_model()
        s = diagonally_dominant_fluid(128, 128, seed=3)
        _x, naive = run_thomas_per_thread(s, interleaved=True)
        _x, cr = run_cr(s)
        assert cm.report(cr).total_ms < cm.report(naive).total_ms

    def test_too_many_systems_rejected(self):
        s = diagonally_dominant_fluid(600, 16, seed=4)
        with pytest.raises(ValueError, match="limited"):
            run_thomas_per_thread(s)
