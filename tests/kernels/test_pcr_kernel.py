"""PCR kernel: functional equivalence, conflict-freedom, counters."""

import numpy as np
import pytest

from repro.analysis.complexity import compare, measured_complexity, pcr_complexity
from repro.kernels.api import run_pcr
from repro.numerics.generators import diagonally_dominant_fluid
from repro.solvers.pcr import parallel_cyclic_reduction


@pytest.fixture(scope="module")
def batch():
    return diagonally_dominant_fluid(8, 64, seed=0)


@pytest.fixture(scope="module")
def launch(batch):
    return run_pcr(batch)


class TestFunctional:
    def test_bit_identical_to_numpy_pcr(self, batch, launch):
        x, _res = launch
        np.testing.assert_array_equal(x, parallel_cyclic_reduction(batch))

    @pytest.mark.parametrize("n", [2, 4, 32, 256])
    def test_sizes(self, n):
        s = diagonally_dominant_fluid(4, n, seed=n)
        x, _res = run_pcr(s)
        np.testing.assert_array_equal(x, parallel_cyclic_reduction(s))


class TestCounters:
    def test_conflict_free(self, launch):
        """PCR is free of bank conflicts (§5.3.2): every phase's average
        degree is exactly 1."""
        _x, res = launch
        for name, pc in res.ledger.phases.items():
            assert pc.conflict_degree == pytest.approx(1.0), name

    def test_steps_log2n(self, batch, launch):
        _x, res = launch
        assert res.ledger.total().steps == 6  # log2(64)

    def test_constant_active_threads_in_forward(self, launch):
        """The number of active threads is constant and equal to n
        across all reduction steps (§4)."""
        _x, res = launch
        for pc in res.ledger.steps_in_phase("forward_reduction"):
            assert pc.max_active_threads == 64

    def test_counts_near_table1(self, batch, launch):
        _x, res = launch
        ratios = compare(pcr_complexity(batch.n),
                         measured_complexity("pcr", res))
        assert 0.75 <= ratios["shared_accesses"] <= 1.05
        assert 0.75 <= ratios["arithmetic_ops"] <= 1.05
        assert ratios["global_accesses"] == pytest.approx(1.0)

    def test_does_more_work_than_cr(self, batch):
        """Table 1: PCR's shared traffic and flops exceed CR's."""
        from repro.kernels.api import run_cr
        _x1, pcr_res = run_pcr(batch)
        _x2, cr_res = run_cr(batch)
        assert (pcr_res.ledger.total().shared_words
                > cr_res.ledger.total().shared_words)
        assert pcr_res.ledger.total().flops > cr_res.ledger.total().flops

    def test_fewer_steps_than_cr(self, batch):
        from repro.kernels.api import run_cr
        _x1, pcr_res = run_pcr(batch)
        _x2, cr_res = run_cr(batch)
        assert (pcr_res.ledger.total().steps
                < cr_res.ledger.total().steps)
