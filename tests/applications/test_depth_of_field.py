"""Depth-of-field blur (Kass-style implicit diffusion)."""

import numpy as np
import pytest

from repro.applications.depth_of_field import (circle_of_confusion,
                                               depth_of_field_blur,
                                               synthetic_scene)


class TestCoC:
    def test_zero_in_focus_band(self):
        depth = np.array([[1.0, 1.04, 0.96]])
        coc = circle_of_confusion(depth, focus_depth=1.0, focus_range=0.05)
        np.testing.assert_array_equal(coc, 0.0)

    def test_grows_then_clamps(self):
        depth = np.array([[1.5, 2.0, 50.0]])
        coc = circle_of_confusion(depth, focus_depth=1.0,
                                  focus_range=0.1, max_coc=4.0)
        assert coc[0, 0] < coc[0, 1] <= coc[0, 2] == 4.0


class TestBlur:
    def test_in_focus_region_sharp(self):
        img, depth = synthetic_scene(64, 64)
        out = depth_of_field_blur(img, depth, focus_depth=1.0,
                                  method="thomas")
        bar = (depth == 1.0)
        # The high-frequency foreground stripes survive where focused.
        np.testing.assert_allclose(out[bar], img[bar], atol=1e-6)

    def test_out_of_focus_region_smoothed(self):
        img, depth = synthetic_scene(64, 64, seed=1)
        out = depth_of_field_blur(img, depth, focus_depth=1.0,
                                  method="thomas")
        disc = (depth == 2.0)
        assert np.var(out[disc]) < np.var(img[disc])

    def test_mean_intensity_preserved(self):
        """Diffusion conserves total light (interior, Neumann-free
        tridiagonal rows sum to 1)."""
        img, depth = synthetic_scene(48, 48, seed=2)
        out = depth_of_field_blur(img, depth, focus_depth=2.0,
                                  method="gep")
        assert out.mean() == pytest.approx(img.mean(), abs=5e-3)

    def test_multichannel(self):
        img, depth = synthetic_scene(32, 32)
        rgb = np.stack([img, img * 0.5, img * 0.25], axis=2)
        out = depth_of_field_blur(rgb, depth, focus_depth=2.0,
                                  method="thomas")
        assert out.shape == (32, 32, 3)
        np.testing.assert_allclose(out[:, :, 1], out[:, :, 0] * 0.5,
                                   atol=1e-8)

    def test_gpu_backend_matches_thomas(self):
        img, depth = synthetic_scene(32, 32, seed=3)
        ref = depth_of_field_blur(img, depth, focus_depth=2.0,
                                  method="thomas")
        got = depth_of_field_blur(img, depth, focus_depth=2.0,
                                  method="cr_pcr")
        np.testing.assert_allclose(got, ref, rtol=1e-5, atol=1e-7)

    def test_depth_shape_mismatch(self):
        with pytest.raises(ValueError, match="sizes differ"):
            depth_of_field_blur(np.zeros((8, 8)), np.zeros((4, 4)),
                                focus_depth=1.0)
