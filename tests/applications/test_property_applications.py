"""Property-based tests over the application layer.

Physics invariants that must hold for *any* admissible parameters:
conservation, maximum principles, backend equivalence, and PDE
consistency -- the application-level analogue of the solver-layer
equivalence properties.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.applications.adi import ADIDiffusion2D
from repro.applications.heat1d import HeatRod1D
from repro.applications.shallow_water import ShallowWater1D

seeds = st.integers(min_value=0, max_value=10**6)
alphas = st.floats(min_value=0.01, max_value=2.0)
dts = st.floats(min_value=0.01, max_value=1.0)


@settings(max_examples=15, deadline=None)
@given(seed=seeds, alpha=alphas, dt=dts)
def test_heat_maximum_principle(seed, alpha, dt):
    """Backward-Euler heat flow never creates new extrema, for any
    diffusivity/time-step combination (unconditional stability)."""
    rng = np.random.default_rng(seed)
    u0 = rng.uniform(0.0, 1.0, (3, 33))
    rod = HeatRod1D(u0, alpha=alpha, dt=dt, theta=1.0, method="thomas")
    u = rod.step(5)
    assert u.max() <= u0.max() + 1e-8
    assert u.min() >= u0.min() - 1e-8


@settings(max_examples=15, deadline=None)
@given(seed=seeds, alpha=alphas, dt=dts)
def test_heat_smooths_variance(seed, alpha, dt):
    """Interior variance never grows under pure diffusion."""
    rng = np.random.default_rng(seed)
    u0 = rng.uniform(0.0, 1.0, (2, 33))
    u0[:, 0] = u0[:, -1] = 0.5  # fixed equal boundaries
    rod = HeatRod1D(u0, alpha=alpha, dt=dt, theta=1.0, method="thomas")
    u = rod.step(3)
    assert u[:, 1:-1].var(axis=1).max() <= \
        u0[:, 1:-1].var(axis=1).max() + 1e-10


@settings(max_examples=10, deadline=None)
@given(seed=seeds, alpha=st.floats(min_value=0.05, max_value=0.5),
       dt=st.floats(min_value=0.05, max_value=0.5))
def test_adi_heat_conservation(seed, alpha, dt):
    """Interior heat is conserved for fields vanishing at the ring."""
    rng = np.random.default_rng(seed)
    u0 = np.zeros((26, 26))
    u0[8:18, 8:18] = rng.uniform(0.0, 1.0, (10, 10))
    adi = ADIDiffusion2D(u0, alpha=alpha, dt=dt, method="thomas")
    before = adi.total_heat()
    adi.step(2)
    # Leakage only through the cold boundary: heat can decrease a
    # little, never increase.
    assert adi.total_heat() <= before + 1e-8
    assert adi.total_heat() >= 0.5 * before  # two steps can't drain it


@settings(max_examples=10, deadline=None)
@given(seed=seeds, dt=st.floats(min_value=0.005, max_value=0.05),
       damping=st.floats(min_value=0.9, max_value=1.0))
def test_water_volume_conserved_for_any_params(seed, dt, damping):
    rng = np.random.default_rng(seed)
    h0 = 1.0 + 0.2 * rng.random((2, 48))
    sw = ShallowWater1D(h0, dt=dt, damping=damping, method="thomas")
    v0 = sw.total_volume().copy()
    sw.step(10)
    np.testing.assert_allclose(sw.total_volume(), v0, rtol=1e-9)


@settings(max_examples=8, deadline=None)
@given(seed=seeds)
def test_backend_equivalence_random_fields(seed):
    """Thomas and CR+PCR backends agree on random ADI problems."""
    rng = np.random.default_rng(seed)
    u0 = np.zeros((34, 34))
    u0[5:29, 5:29] = rng.uniform(0.0, 1.0, (24, 24))
    ref = ADIDiffusion2D(u0.copy(), alpha=0.2, dt=0.3, method="thomas")
    got = ADIDiffusion2D(u0.copy(), alpha=0.2, dt=0.3, method="cr_pcr")
    ref.step(2)
    got.step(2)
    np.testing.assert_allclose(got.u, ref.u, rtol=1e-6, atol=1e-8)
