"""Kass-Miller shallow water."""

import numpy as np
import pytest

from repro.applications.shallow_water import ShallowWater1D


def bump(num=4, n=64, height=1.0, amp=0.5):
    h = np.full((num, n), height)
    h[:, n // 2 - 4:n // 2 + 4] += amp
    return h


class TestPhysics:
    def test_volume_conserved(self):
        sw = ShallowWater1D(bump(), dt=0.02, method="thomas")
        v0 = sw.total_volume().copy()
        sw.step(30)
        np.testing.assert_allclose(sw.total_volume(), v0, rtol=1e-10)

    def test_bump_spreads(self):
        sw = ShallowWater1D(bump(), dt=0.02, method="thomas")
        peak0 = sw.h.max()
        sw.step(20)
        assert sw.h.max() < peak0

    def test_flat_water_stays_flat(self):
        sw = ShallowWater1D(np.ones((2, 32)), dt=0.05, method="thomas")
        sw.step(10)
        np.testing.assert_allclose(sw.h, 1.0, atol=1e-10)

    def test_ground_respected(self):
        ground = np.zeros((1, 64))
        ground[0, 40:50] = 0.8
        h = np.maximum(bump(1), ground + 0.01)
        sw = ShallowWater1D(h, ground=ground, dt=0.02, method="thomas")
        sw.step(20)
        assert np.all(sw.h >= sw.ground - 1e-12)

    def test_systems_are_paper_accuracy_class(self):
        """The implicit step's matrices are the diagonally dominant
        'fluid simulation' class of Fig 18."""
        sw = ShallowWater1D(bump(), dt=0.05)
        s = sw.build_systems()
        assert s.is_diagonally_dominant(strict=True).all()


class TestBackends:
    @pytest.mark.parametrize("method", ["cr", "pcr", "cr_pcr"])
    def test_gpu_path_matches_thomas(self, method):
        ref = ShallowWater1D(bump(), dt=0.02, method="thomas")
        got = ShallowWater1D(bump(), dt=0.02, method=method)
        ref.step(5)
        got.step(5)
        np.testing.assert_allclose(got.h, ref.h, rtol=1e-6, atol=1e-8)


class TestValidation:
    def test_water_below_ground_rejected(self):
        with pytest.raises(ValueError, match="below ground"):
            ShallowWater1D(np.zeros((1, 16)), ground=np.ones((1, 16)))


class TestTwoDimensional:
    def _pool(self, n=48):
        import numpy as np
        h = np.ones((n, n))
        h[n // 2 - 4: n // 2 + 4, n // 2 - 4: n // 2 + 4] += 0.4
        return h

    def test_volume_conserved(self):
        from repro.applications.shallow_water import ShallowWater2D
        sw = ShallowWater2D(self._pool(), dt=0.02, method="thomas")
        v0 = sw.total_volume()
        sw.step(20)
        assert abs(sw.total_volume() - v0) < 1e-8 * v0

    def test_wave_spreads_radially(self):
        import numpy as np
        from repro.applications.shallow_water import ShallowWater2D
        sw = ShallowWater2D(self._pool(), dt=0.02, method="thomas")
        peak0 = sw.h.max()
        sw.step(15)
        assert sw.h.max() < peak0
        # Symmetric initial condition stays symmetric up to the
        # O(dt^2) row-then-column splitting error.
        np.testing.assert_allclose(sw.h, sw.h.T, atol=5e-3)

    def test_flat_stays_flat(self):
        import numpy as np
        from repro.applications.shallow_water import ShallowWater2D
        sw = ShallowWater2D(np.ones((24, 24)), dt=0.05, method="thomas")
        sw.step(5)
        np.testing.assert_allclose(sw.h, 1.0, atol=1e-10)

    def test_systems_per_step_is_adi_shaped(self):
        import numpy as np
        from repro.applications.shallow_water import ShallowWater2D
        sw = ShallowWater2D(np.ones((512, 512)))
        assert sw.systems_per_step() == (1024, 512)

    def test_gpu_backend_matches_thomas(self):
        import numpy as np
        from repro.applications.shallow_water import ShallowWater2D
        ref = ShallowWater2D(self._pool(), dt=0.02, method="thomas")
        got = ShallowWater2D(self._pool(), dt=0.02, method="cr_pcr")
        ref.step(5)
        got.step(5)
        np.testing.assert_allclose(got.h, ref.h, rtol=1e-6, atol=1e-8)

    def test_needs_2d(self):
        import numpy as np
        import pytest
        from repro.applications.shallow_water import ShallowWater2D
        with pytest.raises(ValueError, match="2-D"):
            ShallowWater2D(np.ones(16))
