"""3-D Douglas-Gunn ADI."""

import numpy as np
import pytest

from repro.applications.adi3d import ADIDiffusion3D


def hot_cube(n=26):
    u = np.zeros((n, n, n))
    q = n // 3
    u[q:2 * q, q:2 * q, q:2 * q] = 1.0
    return u


class TestPhysics:
    def test_heat_conserved(self):
        adi = ADIDiffusion3D(hot_cube(), alpha=0.1, dt=0.5,
                             method="thomas")
        h0 = adi.total_heat()
        adi.step(3)
        assert adi.total_heat() == pytest.approx(h0, rel=1e-10)

    def test_maximum_principle(self):
        adi = ADIDiffusion3D(hot_cube(), alpha=0.2, dt=1.0,
                             method="thomas")
        adi.step(4)
        assert adi.u.max() <= 1.0 + 1e-9
        assert adi.u.min() >= -1e-9

    def test_decay_matches_analytic_mode(self):
        n = 26
        x = np.linspace(0, 1, n)
        s = np.sin(np.pi * x)
        mode = np.einsum("i,j,k->ijk", s, s, s)
        dx = x[1] - x[0]
        adi = ADIDiffusion3D(mode, alpha=1.0, dt=1e-4, dx=dx,
                             method="thomas")
        u1 = adi.step(1)
        mid = n // 2
        lam = 2 * (1 - np.cos(np.pi * dx)) / dx ** 2
        expected = np.exp(-3 * 1e-4 * lam)
        assert u1[mid, mid, mid] / mode[mid, mid, mid] == pytest.approx(
            expected, rel=1e-6)

    def test_anisotropic_box(self):
        u0 = np.zeros((10, 18, 26))
        u0[4:6, 8:10, 12:14] = 1.0
        adi = ADIDiffusion3D(u0, alpha=0.1, dt=0.3, method="thomas")
        adi.step(2)
        assert adi.u.shape == (10, 18, 26)
        assert np.isfinite(adi.u).all()

    def test_systems_per_step(self):
        adi = ADIDiffusion3D(np.zeros((64, 64, 64)))
        count, size = adi.systems_per_step()
        assert count == 3 * 64 * 64
        assert size == 64


class TestBackends:
    def test_gpu_path_matches_thomas(self):
        ref = ADIDiffusion3D(hot_cube(), alpha=0.1, dt=0.5,
                             method="thomas")
        got = ADIDiffusion3D(hot_cube(), alpha=0.1, dt=0.5,
                             method="cr_pcr")
        ref.step(2)
        got.step(2)
        np.testing.assert_allclose(got.u, ref.u, rtol=1e-7, atol=1e-9)


class TestValidation:
    def test_needs_3d(self):
        with pytest.raises(ValueError, match="3-D"):
            ADIDiffusion3D(np.zeros((8, 8)))
