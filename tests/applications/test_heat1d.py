"""Implicit 1-D heat equation."""

import numpy as np
import pytest

from repro.applications.heat1d import HeatRod1D


def sine_rods(num_rods=4, n=65, mode=1):
    x = np.linspace(0.0, 1.0, n)
    u0 = np.sin(mode * np.pi * x)[None, :].repeat(num_rods, axis=0)
    return u0, x[1] - x[0]


class TestPhysics:
    @pytest.mark.parametrize("theta", [0.5, 1.0])
    def test_sine_mode_decays_at_analytic_rate(self, theta):
        u0, dx = sine_rods()
        rod = HeatRod1D(u0, alpha=0.01, dx=dx, dt=0.02, theta=theta,
                        method="thomas")
        u1 = rod.step(1)
        measured = u1[0, 32] / u0[0, 32]
        expected = rod.analytic_decay_mode(1)
        assert measured == pytest.approx(expected, rel=5e-3)

    def test_dirichlet_boundaries_fixed(self):
        u0, dx = sine_rods()
        u0[:, 0] = 0.25
        u0[:, -1] = -0.5
        rod = HeatRod1D(u0, dx=dx, dt=0.1, method="thomas")
        u = rod.step(5)
        np.testing.assert_allclose(u[:, 0], 0.25, atol=1e-6)
        np.testing.assert_allclose(u[:, -1], -0.5, atol=1e-6)

    def test_maximum_principle(self):
        """Backward Euler heat flow cannot create new extrema."""
        rng = np.random.default_rng(0)
        u0 = rng.uniform(0.0, 1.0, (4, 33))
        rod = HeatRod1D(u0, alpha=0.5, dt=0.5, theta=1.0, method="gep")
        u = rod.step(10)
        assert u.max() <= u0.max() + 1e-6
        assert u.min() >= u0.min() - 1e-6

    def test_steady_state_is_linear_profile(self):
        u0 = np.zeros((1, 33))
        u0[:, 0] = 1.0
        rod = HeatRod1D(u0, alpha=1.0, dx=1.0, dt=5.0, theta=1.0,
                        method="thomas")
        u = rod.step(500)
        expected = np.linspace(1.0, 0.0, 33)
        np.testing.assert_allclose(u[0], expected, atol=1e-3)


class TestSolverBackends:
    @pytest.mark.parametrize("method", ["thomas", "cr", "pcr", "cr_pcr"])
    def test_backends_agree(self, method):
        u0, dx = sine_rods(n=64)
        ref = HeatRod1D(u0.copy(), alpha=0.01, dx=dx, dt=0.05,
                        method="thomas").step(3)
        got = HeatRod1D(u0.copy(), alpha=0.01, dx=dx, dt=0.05,
                        method=method).step(3)
        np.testing.assert_allclose(got, ref, rtol=1e-5, atol=1e-7)


class TestValidation:
    def test_bad_theta(self):
        u0, dx = sine_rods()
        with pytest.raises(ValueError, match="theta"):
            HeatRod1D(u0, theta=0.0)
