"""Cubic-spline interpolation."""

import numpy as np
import pytest

from repro.applications.spline import CubicSpline


class TestInterpolation:
    def test_passes_through_knots(self):
        x = np.linspace(0, 10, 13)
        y = np.sin(x)
        sp = CubicSpline(x, y)
        np.testing.assert_allclose(sp(x)[0], y, atol=1e-10)

    def test_approximates_smooth_function(self):
        x = np.linspace(0, 2 * np.pi, 33)
        sp = CubicSpline(x, np.sin(x))
        xq = np.linspace(0.1, 6.1, 200)
        assert np.max(np.abs(sp(xq)[0] - np.sin(xq))) < 5e-5

    def test_convergence_rate(self):
        """Natural-spline interior error shrinks ~h^4 on refinement."""
        errs = []
        for n in (17, 33, 65):
            x = np.linspace(0, 2 * np.pi, n)
            sp = CubicSpline(x, np.sin(x))
            xq = np.linspace(2.0, 4.0, 101)  # interior, away from ends
            errs.append(np.max(np.abs(sp(xq)[0] - np.sin(xq))))
        assert errs[0] / errs[1] > 10
        assert errs[1] / errs[2] > 10

    def test_linear_data_reproduced_exactly(self):
        x = np.linspace(0, 5, 11)
        y = 3 * x + 1
        sp = CubicSpline(x, y)
        xq = np.linspace(0, 5, 57)
        np.testing.assert_allclose(sp(xq)[0], 3 * xq + 1, atol=1e-10)

    def test_matches_scipy(self):
        from scipy.interpolate import CubicSpline as ScipySpline
        x = np.linspace(0, 4, 15)
        rng = np.random.default_rng(0)
        y = rng.standard_normal(15)
        ours = CubicSpline(x, y, bc="natural")
        ref = ScipySpline(x, y, bc_type="natural")
        xq = np.linspace(0, 4, 99)
        np.testing.assert_allclose(ours(xq)[0], ref(xq), atol=1e-9)


class TestBatched:
    def test_many_curves_at_once(self):
        x = np.linspace(0, 1, 17)
        rng = np.random.default_rng(1)
        y = rng.standard_normal((20, 17))
        sp = CubicSpline(x, y)
        out = sp(np.linspace(0, 1, 40))
        assert out.shape == (20, 40)
        # each curve matches its solo fit
        solo = CubicSpline(x, y[7])
        np.testing.assert_allclose(out[7], solo(np.linspace(0, 1, 40))[0],
                                   atol=1e-10)

    def test_non_uniform_knots(self):
        x = np.sort(np.random.default_rng(2).uniform(0, 10, 21))
        sp = CubicSpline(x, np.cos(x))
        np.testing.assert_allclose(sp(x)[0], np.cos(x), atol=1e-9)


class TestBoundaryConditions:
    def test_natural_second_derivative_zero(self):
        x = np.linspace(0, 3, 9)
        sp = CubicSpline(x, np.exp(x), bc="natural")
        m = sp.moments()
        np.testing.assert_allclose(m[:, 0], 0, atol=1e-12)
        np.testing.assert_allclose(m[:, -1], 0, atol=1e-12)

    def test_clamped_flat_ends(self):
        x = np.linspace(0, 1, 33)
        sp = CubicSpline(x, np.sin(np.pi * x) ** 2, bc="clamped")
        h = 1e-5
        left_slope = (sp(np.array([h]))[0, 0] - sp(np.array([0.0]))[0, 0]) / h
        assert abs(left_slope) < 1e-2


class TestValidation:
    def test_unsorted_knots(self):
        with pytest.raises(ValueError, match="increasing"):
            CubicSpline(np.array([0.0, 2.0, 1.0]), np.zeros(3))

    def test_too_few_knots(self):
        with pytest.raises(ValueError, match="3 knots"):
            CubicSpline(np.array([0.0, 1.0]), np.zeros(2))

    def test_unknown_bc(self):
        with pytest.raises(ValueError, match="boundary"):
            CubicSpline(np.linspace(0, 1, 5), np.zeros(5), bc="not-a-knot")


class TestPeriodic:
    def test_matches_scipy_periodic(self):
        from scipy.interpolate import CubicSpline as ScipySpline
        x = np.linspace(0, 2 * np.pi, 17)
        y = np.sin(2 * x)
        ours = CubicSpline(x, y, bc="periodic")
        ref = ScipySpline(x, y, bc_type="periodic")
        xq = np.linspace(0, 2 * np.pi, 200)
        np.testing.assert_allclose(ours(xq)[0], ref(xq), atol=1e-10)

    def test_smooth_across_the_seam(self):
        """First derivative continuous where the curve closes."""
        x = np.linspace(0, 1, 33)
        y = np.cos(2 * np.pi * x)
        sp = CubicSpline(x, y, bc="periodic")
        h = 1e-6
        left = (sp(np.array([h]))[0, 0] - sp(np.array([0.0]))[0, 0]) / h
        right = (sp(np.array([1.0]))[0, 0]
                 - sp(np.array([1.0 - h]))[0, 0]) / h
        assert left == pytest.approx(right, abs=1e-3)

    def test_batched_closed_curves(self):
        x = np.linspace(0, 2 * np.pi, 25)
        phases = np.linspace(0, 1, 5)[:, None]
        y = np.sin(x[None, :] + 2 * np.pi * phases)
        y[:, -1] = y[:, 0]
        sp = CubicSpline(x, y, bc="periodic")
        out = sp(np.linspace(0.5, 5.5, 50))
        assert out.shape == (5, 50)
        assert np.max(np.abs(out)) < 1.2

    def test_mismatched_endpoints_rejected(self):
        x = np.linspace(0, 1, 9)
        with pytest.raises(ValueError, match="periodic"):
            CubicSpline(x, x.copy(), bc="periodic")
