"""Tridiagonal line preconditioning for CG (paper ref [12])."""

import numpy as np
import pytest

from repro.applications.preconditioner import (LinePreconditioner,
                                               anisotropic_operator,
                                               conjugate_gradient)


def problem(ny=32, nx=32, seed=0):
    return np.random.default_rng(seed).standard_normal((ny, nx))


class TestOperator:
    def test_spd(self):
        """<u, Au> > 0 for random nonzero u."""
        u = problem(seed=1)
        assert float(np.sum(u * anisotropic_operator(u, 0.1))) > 0

    def test_symmetric(self):
        rng = np.random.default_rng(2)
        u, v = rng.standard_normal((2, 16, 16))
        uAv = float(np.sum(u * anisotropic_operator(v, 0.3)))
        vAu = float(np.sum(v * anisotropic_operator(u, 0.3)))
        assert uAv == pytest.approx(vAu, rel=1e-12)


class TestPreconditioner:
    def test_apply_inverts_line_operator(self):
        """M^{-1} M r == r where M is the line part."""
        ny, nx, eps = 16, 12, 0.05
        M = LinePreconditioner(ny, nx, eps)
        r = problem(ny, nx, seed=3)
        # Build M r explicitly: -r_yy + 2 eps r (dx = dy = 1).
        Mr = 2.0 * (1.0 + eps) * r
        Mr[1:, :] -= r[:-1, :]
        Mr[:-1, :] -= r[1:, :]
        np.testing.assert_allclose(M.apply(Mr), r, rtol=1e-10, atol=1e-12)

    def test_spd_preconditioner(self):
        M = LinePreconditioner(16, 16, 0.01)
        r = problem(16, 16, seed=4)
        assert float(np.sum(r * M.apply(r))) > 0


class TestCG:
    def test_converges_and_solves(self):
        f = problem(24, 24, seed=5)
        res = conjugate_gradient(f, eps=0.1, tol=1e-9)
        assert res.converged
        r = f - anisotropic_operator(res.x, 0.1)
        assert np.linalg.norm(r) / np.linalg.norm(f) < 1e-8

    def test_line_preconditioner_slashes_iterations(self):
        """The ref-[12] effect: under anisotropy the line
        preconditioner captures the dominant coupling."""
        f = problem(32, 32, seed=6)
        plain = conjugate_gradient(f, eps=0.01, tol=1e-8)
        pcg = conjugate_gradient(
            f, eps=0.01, tol=1e-8,
            preconditioner=LinePreconditioner(32, 32, 0.01))
        assert pcg.iterations < plain.iterations / 4
        assert pcg.converged

    def test_preconditioned_matches_plain_solution(self):
        f = problem(16, 16, seed=7)
        plain = conjugate_gradient(f, eps=0.05, tol=1e-11)
        pcg = conjugate_gradient(
            f, eps=0.05, tol=1e-11,
            preconditioner=LinePreconditioner(16, 16, 0.05))
        np.testing.assert_allclose(pcg.x, plain.x, rtol=1e-7, atol=1e-9)

    def test_residual_history_decreases(self):
        f = problem(16, 16, seed=8)
        res = conjugate_gradient(
            f, eps=0.01, tol=1e-8,
            preconditioner=LinePreconditioner(16, 16, 0.01))
        h = res.residuals
        assert h[-1] < h[0] * 1e-6
