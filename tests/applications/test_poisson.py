"""Spectral (Hockney) Poisson solver."""

import numpy as np
import pytest

from repro.applications.poisson import (manufactured_problem,
                                        poisson_dirichlet_2d,
                                        poisson_residual)


class TestManufactured:
    @pytest.mark.parametrize("shape", [(31, 31), (63, 31), (16, 48)])
    def test_exact_to_rounding(self, shape):
        f, u_exact = manufactured_problem(*shape)
        u = poisson_dirichlet_2d(f, method="thomas")
        np.testing.assert_allclose(u, u_exact, atol=1e-10)

    def test_residual_small(self):
        f, _ = manufactured_problem(31, 31)
        u = poisson_dirichlet_2d(f, method="thomas")
        assert poisson_residual(u, f) < 1e-10

    def test_grid_spacing(self):
        f, u_exact = manufactured_problem(31, 31, dx=0.25)
        u = poisson_dirichlet_2d(f, dx=0.25, method="thomas")
        np.testing.assert_allclose(u, u_exact, atol=1e-10)


class TestSolverBackends:
    @pytest.mark.parametrize("method", ["gep", "cr", "cr_pcr"])
    def test_backends_agree(self, method):
        rng = np.random.default_rng(0)
        f = rng.standard_normal((32, 32))
        ref = poisson_dirichlet_2d(f, method="thomas")
        got = poisson_dirichlet_2d(f, method=method)
        np.testing.assert_allclose(got, ref, rtol=1e-6, atol=1e-8)


class TestProperties:
    def test_linearity(self):
        rng = np.random.default_rng(1)
        f1 = rng.standard_normal((16, 16))
        f2 = rng.standard_normal((16, 16))
        u1 = poisson_dirichlet_2d(f1, method="thomas")
        u2 = poisson_dirichlet_2d(f2, method="thomas")
        u12 = poisson_dirichlet_2d(f1 + 2 * f2, method="thomas")
        np.testing.assert_allclose(u12, u1 + 2 * u2, atol=1e-9)

    def test_negative_definite(self):
        """-laplace is positive definite: <u, f> = <u, Lu> < 0 for
        nonzero f."""
        rng = np.random.default_rng(2)
        f = rng.standard_normal((24, 24))
        u = poisson_dirichlet_2d(f, method="thomas")
        assert float((u * f).sum()) < 0
