"""Ocean column model (vertical mixing, the paper's HYCOM citation)."""

import numpy as np
import pytest

from repro.applications.ocean import (OceanColumnModel,
                                      default_layer_thicknesses,
                                      mixed_layer_diffusivity)


def profile(num_columns=8, n=40):
    return np.tile(np.linspace(20.0, 4.0, n), (num_columns, 1))


class TestGrid:
    def test_layer_thicknesses_grow_with_depth(self):
        dz = default_layer_thicknesses(30)
        assert np.all(np.diff(dz) > 0)
        assert dz[0] == pytest.approx(2.0)

    def test_diffusivity_profile_decays(self):
        depths = np.linspace(1.0, 300.0, 50)
        k = mixed_layer_diffusivity(depths, mld=30.0)
        assert k[0] > 100 * k[-1]
        assert np.all(np.diff(k) <= 1e-12)


class TestPhysics:
    def test_heat_conserved_without_forcing(self):
        m = OceanColumnModel(profile(), dt=3600.0, surface_flux=0.0,
                             method="thomas")
        h0 = m.heat_content().copy()
        m.step(48)
        np.testing.assert_allclose(m.heat_content(), h0, rtol=1e-12)

    def test_mixing_homogenises_mixed_layer(self):
        m = OceanColumnModel(profile(), dt=3600.0, mld=30.0,
                             method="thomas")
        m.step(72)
        # Layers inside the mixed layer converge to near-uniform T.
        centers = np.cumsum(m.dz, axis=1) - m.dz / 2
        inside = centers[0] <= 20.0
        spread = m.T[0, inside].max() - m.T[0, inside].min()
        assert spread < 0.5

    def test_deep_ocean_untouched(self):
        m = OceanColumnModel(profile(), dt=3600.0, mld=30.0,
                             method="thomas")
        before = m.T[:, -1].copy()
        m.step(48)
        np.testing.assert_allclose(m.T[:, -1], before, atol=1e-3)

    def test_surface_flux_warms(self):
        cold = OceanColumnModel(profile(), dt=3600.0, surface_flux=0.0)
        warm = OceanColumnModel(profile(), dt=3600.0, surface_flux=1e-4)
        cold.step(24)
        warm.step(24)
        assert np.all(warm.mixed_layer_temperature()
                      > cold.mixed_layer_temperature())

    def test_systems_are_dominant(self):
        m = OceanColumnModel(profile(), dt=3600.0)
        s = m.build_systems()
        assert s.is_diagonally_dominant(strict=True).all()

    def test_per_column_mld(self):
        mlds = np.linspace(10.0, 80.0, 8)
        m = OceanColumnModel(profile(), dt=3600.0, mld=mlds,
                             method="thomas")
        m.step(48)
        # Deeper mixed layers entrain more cold water.
        t = m.mixed_layer_temperature()
        assert t[-1] < t[0]


class TestBackends:
    @pytest.mark.parametrize("method", ["cr", "pcr", "cr_pcr", "qr"])
    def test_gpu_path_matches_thomas(self, method):
        ref = OceanColumnModel(profile(), dt=3600.0, method="thomas")
        got = OceanColumnModel(profile(), dt=3600.0, method=method)
        ref.step(6)
        got.step(6)
        np.testing.assert_allclose(got.T, ref.T, rtol=1e-7, atol=1e-9)


class TestValidation:
    def test_nonpositive_thickness_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            OceanColumnModel(profile(1, 4), layer_dz=np.array([1, -1, 1, 1.0]))
