"""Crank-Nicolson Black-Scholes pricing vs the closed form."""

import numpy as np
import pytest

from repro.applications.black_scholes import (CrankNicolsonPricer,
                                              black_scholes_closed_form)

K, R, SIG, T = 100.0, 0.05, 0.2, 1.0


def fd_price(spot, kind="call", method="thomas", **kw):
    p = CrankNicolsonPricer(K, SIG, R, T, kind=kind, method=method,
                            num_s=kw.pop("num_s", 400),
                            num_t=kw.pop("num_t", 200), **kw)
    return p.price(spot)[0]


class TestEuropean:
    @pytest.mark.parametrize("kind", ["call", "put"])
    @pytest.mark.parametrize("spot", [80.0, 100.0, 120.0])
    def test_matches_closed_form(self, kind, spot):
        fd = fd_price(spot, kind)
        cf = black_scholes_closed_form(spot, K, R, SIG, T, kind)
        assert fd == pytest.approx(cf, abs=5e-3)

    def test_put_call_parity_on_grid(self):
        spot = 105.0
        call = fd_price(spot, "call")
        put = fd_price(spot, "put")
        parity = spot - K * np.exp(-R * T)
        assert call - put == pytest.approx(parity, abs=1e-2)

    def test_convergence_with_grid(self):
        spot = 100.0
        cf = black_scholes_closed_form(spot, K, R, SIG, T, "call")
        coarse = abs(fd_price(spot, num_s=100, num_t=50) - cf)
        fine = abs(fd_price(spot, num_s=400, num_t=200) - cf)
        assert fine < coarse

    def test_batched_book(self):
        strikes = np.array([90.0, 100.0, 110.0])
        p = CrankNicolsonPricer(strikes, SIG, R, T, kind="call",
                                num_s=300, num_t=150)
        prices = p.price(np.full(3, 100.0))
        cf = black_scholes_closed_form(100.0, strikes, R, SIG, T, "call")
        np.testing.assert_allclose(prices, cf, atol=1e-2)
        assert prices[0] > prices[1] > prices[2]  # moneyness ordering


class TestAmerican:
    def test_early_exercise_premium(self):
        am = CrankNicolsonPricer(K, SIG, R, T, kind="put", american=True,
                                 num_s=400, num_t=400).price(90.0)[0]
        eu = fd_price(90.0, "put", num_t=400)
        assert am > eu
        assert am >= 10.0 - 1e-6  # never below intrinsic

    def test_american_call_rejected(self):
        with pytest.raises(ValueError, match="American calls"):
            CrankNicolsonPricer(K, SIG, R, T, kind="call", american=True)


class TestBackends:
    @pytest.mark.parametrize("method", ["gep", "cr_pcr"])
    def test_gpu_path_matches_thomas(self, method):
        ref = fd_price(100.0, "call", method="thomas", num_s=128,
                       num_t=60)
        got = fd_price(100.0, "call", method=method, num_s=128, num_t=60)
        assert got == pytest.approx(ref, abs=1e-6)

    def test_bad_kind(self):
        with pytest.raises(ValueError, match="kind"):
            CrankNicolsonPricer(K, SIG, R, T, kind="straddle")
