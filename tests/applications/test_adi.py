"""2-D ADI diffusion."""

import numpy as np
import pytest

from repro.applications.adi import ADIDiffusion2D


def gaussian_field(n=34):
    yy, xx = np.mgrid[0:n, 0:n]
    c = (n - 1) / 2
    return np.exp(-((xx - c) ** 2 + (yy - c) ** 2) / (n / 6) ** 2)


class TestPhysics:
    def test_interior_heat_conserved_with_cold_boundary(self):
        """Zero-boundary ADI conserves interior heat up to boundary
        leakage, which must be small for a centred blob."""
        u0 = gaussian_field()
        adi = ADIDiffusion2D(u0, alpha=0.1, dt=0.2, method="thomas")
        before = adi.total_heat()
        adi.step(3)
        after = adi.total_heat()
        assert after == pytest.approx(before, rel=0.02)

    def test_smooths_peak(self):
        u0 = np.zeros((18, 18))
        u0[9, 9] = 1.0
        adi = ADIDiffusion2D(u0, alpha=0.5, dt=0.2, method="gep")
        u = adi.step(4)
        assert u[9, 9] < 1.0
        assert u[9, 11] > 0.0

    def test_decay_matches_analytic_mode(self):
        """Product sine mode decays at the Peaceman-Rachford rate
        r = ((1-s)/(1+s))^2 per full step with s = 2 r_coef
        (1 - cos(pi k h))-style discrete eigenvalues."""
        n = 33
        x = np.linspace(0, 1, n)
        u0 = np.outer(np.sin(np.pi * x), np.sin(np.pi * x))
        dx = x[1] - x[0]
        adi = ADIDiffusion2D(u0, alpha=1.0, dx=dx, dt=1e-4,
                             method="thomas")
        u1 = adi.step(1)
        mid = n // 2
        measured = u1[mid, mid] / u0[mid, mid]
        lam = 2.0 * (1 - np.cos(np.pi * dx)) / dx ** 2  # discrete mode
        r = 1e-4 / 2 / dx ** 2 * 1.0 * (2 * (1 - np.cos(np.pi * dx)))
        expected = ((1 - r) / (1 + r)) ** 2
        assert measured == pytest.approx(expected, rel=1e-3)

    def test_rectangular_grid(self):
        u0 = np.zeros((18, 34))
        u0[8:10, 15:19] = 1.0
        adi = ADIDiffusion2D(u0, alpha=0.2, dt=0.3, method="thomas")
        u = adi.step(2)
        assert u.shape == (18, 34)
        assert np.isfinite(u).all()


class TestSolverBackends:
    @pytest.mark.parametrize("method", ["cr", "pcr", "cr_pcr"])
    def test_gpu_path_matches_thomas(self, method):
        u0 = gaussian_field(34).astype(np.float64)
        ref = ADIDiffusion2D(u0.copy(), alpha=0.1, dt=0.2,
                             method="thomas").step(2)
        got = ADIDiffusion2D(u0.copy(), alpha=0.1, dt=0.2,
                             method=method).step(2)
        np.testing.assert_allclose(got, ref, rtol=1e-6, atol=1e-8)

    def test_systems_per_step_is_paper_workload(self):
        adi = ADIDiffusion2D(np.zeros((512, 512)))
        count, size = adi.systems_per_step()
        assert count == 1024
        assert size == 512


class TestValidation:
    def test_needs_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            ADIDiffusion2D(np.zeros(8))


class TestFactorizedMethod:
    def test_identical_to_thomas(self):
        u0 = gaussian_field(34).astype(np.float64)
        ref = ADIDiffusion2D(u0.copy(), alpha=0.1, dt=0.2,
                             method="thomas")
        fac = ADIDiffusion2D(u0.copy(), alpha=0.1, dt=0.2,
                             method="factorized")
        ref.step(3)
        fac.step(3)
        np.testing.assert_allclose(fac.u, ref.u, rtol=1e-13, atol=1e-15)

    def test_factors_cached_per_direction(self):
        u0 = np.zeros((18, 34))
        adi = ADIDiffusion2D(u0, dt=0.3, method="factorized")
        adi.step(4)
        # One factorization per sweep direction, built once.
        assert len(adi._factors) == 2

    def test_rectangular_grid_correct(self):
        u0 = np.zeros((18, 34))
        u0[8:10, 15:19] = 1.0
        ref = ADIDiffusion2D(u0.copy(), alpha=0.2, dt=0.3,
                             method="thomas")
        fac = ADIDiffusion2D(u0.copy(), alpha=0.2, dt=0.3,
                             method="factorized")
        ref.step(3)
        fac.step(3)
        np.testing.assert_allclose(fac.u, ref.u, rtol=1e-13, atol=1e-15)
