"""Application end-to-end runs judged by the differential harness.

Instead of ad-hoc per-test tolerances, the tridiagonal batches each
application actually builds are solved with the paper's GPU-path
methods and judged by :func:`repro.verify.verify_solution` -- same
float64 pivoting oracle, same §5.4 budgets as the synthetic grid.
"""

import numpy as np
import pytest

from repro.applications import (ADIDiffusion3D, OceanColumnModel,
                                ShallowWater1D)
from repro.applications.adi3d import build_sweep_systems
from repro.solvers.api import solve
from repro.verify import verify_solution

pytestmark = pytest.mark.verify


def solve_batch(systems, method):
    return np.atleast_2d(np.asarray(
        solve(systems.a, systems.b, systems.c, systems.d, method=method)))


# ----------------------------------------------------------------------
# 3-D ADI diffusion
# ----------------------------------------------------------------------

def test_adi3d_sweep_systems_are_dominant():
    rng = np.random.default_rng(0)
    field = rng.random((8, 8, 16))
    s = build_sweep_systems(field, r=0.4, axis=2)
    assert s.shape == (64, 16)
    assert bool(np.all(s.is_diagonally_dominant(strict=True)))


@pytest.mark.parametrize("axis", [0, 1, 2])
@pytest.mark.parametrize("method", ["cr", "cr_pcr"])
def test_adi3d_sweeps_pass_the_harness(axis, method):
    rng = np.random.default_rng(1)
    field = rng.random((8, 16, 8))
    s = build_sweep_systems(field, r=0.35, axis=axis)
    cell = verify_solution(s, solve_batch(s, method), solver=method,
                           label=f"adi3d-axis{axis}")
    assert cell.status == "pass", cell.message


def test_adi3d_end_to_end_stays_bounded():
    rng = np.random.default_rng(2)
    u0 = rng.random((8, 8, 8))
    model = ADIDiffusion3D(u0, dt=0.05, method="cr_pcr")
    model.step(3)
    held = model.u.copy()
    delta_early = np.abs(model.step(1) - held).max()
    model.step(15)
    prev = model.u.copy()
    delta_late = np.abs(model.step(1) - prev).max()
    assert np.isfinite(model.u).all()
    # Max principle: diffusion cannot exceed the initial extremes.
    assert model.u.min() >= u0.min() - 1e-8
    assert model.u.max() <= u0.max() + 1e-8
    # Contraction toward the steady state set by the fixed boundary.
    assert delta_late < delta_early


# ----------------------------------------------------------------------
# Ocean column model
# ----------------------------------------------------------------------

def test_ocean_systems_pass_the_harness():
    rng = np.random.default_rng(3)
    model = OceanColumnModel(18.0 + rng.random((8, 64)), dt=1800.0,
                             surface_flux=1e-5)
    s = model.build_systems()
    cell = verify_solution(s, solve_batch(s, "cr"), solver="cr",
                           label="ocean-column")
    assert cell.status == "pass", cell.message


def test_ocean_step_conserves_heat_without_forcing():
    rng = np.random.default_rng(4)
    model = OceanColumnModel(10.0 + rng.random((4, 32)), dt=3600.0,
                             surface_flux=0.0, method="cr_pcr")
    before = model.heat_content()
    model.step(4)
    assert np.allclose(model.heat_content(), before, rtol=1e-10)


# ----------------------------------------------------------------------
# Shallow water
# ----------------------------------------------------------------------

def test_shallow_water_systems_pass_the_harness():
    x = np.linspace(0, 2 * np.pi, 128)
    height = 1.0 + 0.1 * np.sin(x)[None, :] * np.ones((4, 1))
    model = ShallowWater1D(height, dt=0.05)
    s = model.build_systems()
    cell = verify_solution(s, solve_batch(s, "pcr"), solver="pcr",
                           label="shallow-water")
    assert cell.status == "pass", cell.message


def test_shallow_water_step_conserves_volume():
    x = np.linspace(0, 2 * np.pi, 64)
    height = 1.0 + 0.05 * np.cos(x)[None, :]
    model = ShallowWater1D(height, dt=0.05, method="cr")
    before = model.total_volume()
    model.step(5)
    assert np.allclose(model.total_volume(), before, rtol=1e-9)
