"""Semi-coarsening multigrid with line relaxation (paper ref [24])."""

import numpy as np
import pytest

from repro.applications.multigrid import (AnisotropicPoisson2D,
                                          point_jacobi_factor)


def problem(ny=32, nx=31, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((ny, nx))


class TestConvergence:
    @pytest.mark.parametrize("eps", [1.0, 0.1, 0.01, 0.001])
    def test_fast_convergence_across_anisotropy(self, eps):
        """Line relaxation + semi-coarsening is robust in eps -- the
        whole point of ref [24]."""
        mg = AnisotropicPoisson2D(problem(), eps=eps)
        mg.solve(tol=1e-8, max_cycles=25)
        assert mg.history[-1] < 1e-8
        assert mg.convergence_factor() < 0.25

    def test_beats_point_jacobi_under_anisotropy(self):
        f = problem()
        mg = AnisotropicPoisson2D(f, eps=0.01)
        mg.solve(tol=1e-8)
        assert mg.convergence_factor() < 0.2
        assert point_jacobi_factor(f, eps=0.01) > 0.9

    def test_solution_satisfies_pde(self):
        from repro.applications.multigrid import _apply_operator
        f = problem(24, 31, seed=1)
        mg = AnisotropicPoisson2D(f, eps=0.05)
        u = mg.solve(tol=1e-10)
        r = f - _apply_operator(u, 0.05, 1.0, 1.0)
        assert np.linalg.norm(r) / np.linalg.norm(f) < 1e-9

    def test_gpu_backend(self):
        f = problem(16, 31, seed=2)
        ref = AnisotropicPoisson2D(f, eps=0.01, method="thomas")
        got = AnisotropicPoisson2D(f, eps=0.01, method="cr_pcr")
        u_ref = ref.solve(tol=1e-9)
        u_got = got.solve(tol=1e-9)
        np.testing.assert_allclose(u_got, u_ref, rtol=1e-5, atol=1e-7)


class TestTransfers:
    def test_restrict_prolong_shapes(self):
        r = np.arange(30.0).reshape(2, 15)
        rc = AnisotropicPoisson2D.restrict_x(r)
        assert rc.shape == (2, 7)
        e = AnisotropicPoisson2D.prolong_x(rc, 15)
        assert e.shape == (2, 15)

    def test_prolong_exact_on_injected_columns(self):
        e = np.random.default_rng(3).standard_normal((4, 7))
        fine = AnisotropicPoisson2D.prolong_x(e, 15)
        np.testing.assert_array_equal(fine[:, 1::2], e)

    def test_restriction_preserves_constants_weighting(self):
        r = np.ones((3, 15))
        rc = AnisotropicPoisson2D.restrict_x(r)
        np.testing.assert_allclose(rc, 1.0)


class TestValidation:
    def test_bad_nx(self):
        with pytest.raises(ValueError, match="2\\^k"):
            AnisotropicPoisson2D(np.zeros((8, 10)))

    def test_bad_eps(self):
        with pytest.raises(ValueError, match="eps"):
            AnisotropicPoisson2D(np.zeros((8, 7)), eps=0.0)

    def test_zebra_halves_are_exact_line_solves(self):
        """After one even half-sweep, the even columns' equations hold
        exactly (given the current odd columns)."""
        from repro.applications.multigrid import _apply_operator
        f = problem(12, 15, seed=4)
        mg = AnisotropicPoisson2D(f, eps=0.1)
        u = np.random.default_rng(5).standard_normal(f.shape)
        mg._line_solve(u, f, np.arange(0, 15, 2), 0.1, 1.0)
        r = f - _apply_operator(u, 0.1, 1.0, 1.0)
        assert np.max(np.abs(r[:, 0::2])) < 1e-10
