"""Shared fixtures for the test suite.

Batches are kept small (n <= 64, a handful of systems) so the whole
suite runs quickly; integration tests that need the paper's 512x512
configuration build it explicitly and are marked ``slow``-ish by being
few.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim import tracecache
from repro.numerics.generators import (close_values,
                                       diagonally_dominant_fluid,
                                       random_dominant, toeplitz_spd)
from repro.solvers.systems import TridiagonalSystems


@pytest.fixture(autouse=True)
def _fresh_trace_cache():
    """Start every test with an empty default trace cache.

    The process-wide cache is deliberately enabled under test (the
    memoized path must satisfy the whole suite), but entries must not
    leak between tests: a test asserting per-launch step telemetry
    would otherwise depend on whether an earlier test populated the
    cache for the same launch signature.
    """
    cache = tracecache.default_cache()
    if cache is not None:
        cache.clear()
    yield


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def dominant_small():
    """8 diagonally dominant systems of 32 unknowns, float32."""
    return diagonally_dominant_fluid(8, 32, seed=7)


@pytest.fixture
def dominant_batch():
    """16 diagonally dominant systems of 64 unknowns, float32."""
    return diagonally_dominant_fluid(16, 64, seed=11)


@pytest.fixture
def close_batch():
    """RD-friendly close-values systems (not diagonally dominant)."""
    return close_values(8, 64, seed=13)


@pytest.fixture
def spd_batch():
    return toeplitz_spd(4, 32, seed=17)


@pytest.fixture
def dominant_f64():
    return random_dominant(8, 32, seed=19, dtype=np.float64)


def make_systems(S, n, seed=0, dtype=np.float32) -> TridiagonalSystems:
    """Helper for parametrised tests: dominant systems of any shape."""
    return diagonally_dominant_fluid(S, n, seed=seed, dtype=dtype)
