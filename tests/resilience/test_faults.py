"""Seeded fault injection: taxonomy, determinism, executor hooks."""

import subprocess
import sys

import numpy as np
import pytest

from repro import telemetry
from repro.gpusim import (DataCorruptionError, FaultPlan, GlobalArray,
                          KernelLaunchError, active_plan, inject, launch)
from repro.gpusim.faults import (BACKOFF_CAP_S, flip_bit, retry_backoff_s,
                                 sleep_backoff)
from repro.kernels.api import run_kernel
from repro.solvers.api import solve


def noop_kernel(ctx):
    return None


def array_kernel(ctx, g):
    return None


class TestFlipBit:
    def test_float32_sign_bit(self):
        data = np.array([1.0, 2.0], dtype=np.float32)
        old, new = flip_bit(data, 1, 31)
        assert (old, new) == (2.0, -2.0)
        assert data[1] == -2.0
        assert data[0] == 1.0

    def test_double_flip_restores(self):
        data = np.array([3.25], dtype=np.float64)
        flip_bit(data, 0, 17)
        assert data[0] != 3.25
        flip_bit(data, 0, 17)
        assert data[0] == 3.25

    def test_bit_wraps_modulo_width(self):
        data = np.array([1.0], dtype=np.float32)
        flip_bit(data, 0, 32 + 31)      # same as bit 31
        assert data[0] == -1.0


class TestFaultPlan:
    def test_zero_rates_inject_nothing(self):
        plan = FaultPlan(seed=0)
        assert plan.draw_launch_fault("k") is None
        arr = np.ones(8, dtype=np.float32)
        assert plan.corrupt_global_arrays([arr]) == []
        plan.corrupt_transfer([arr], direction="h2d")
        assert plan.events == []
        assert np.all(arr == 1)

    def test_fatal_rate_one_always_fatal(self):
        plan = FaultPlan(seed=1, launch_fatal_rate=1.0)
        assert plan.draw_launch_fault("k") == "fatal"
        assert plan.counts() == {"launch_fatal": 1}

    def test_transient_rate_one(self):
        plan = FaultPlan(seed=1, launch_transient_rate=1.0)
        assert plan.draw_launch_fault("k") == "transient"

    def test_max_faults_budget(self):
        plan = FaultPlan(seed=2, launch_transient_rate=1.0, max_faults=3)
        fates = [plan.draw_launch_fault("k") for _ in range(10)]
        assert fates[:3] == ["transient"] * 3
        assert fates[3:] == [None] * 7
        assert plan.fault_count == 3

    def test_same_seed_same_fault_sequence(self):
        """The determinism anchor: identical plans on identical
        workloads inject identical faults."""
        def run(seed):
            plan = FaultPlan(seed=seed, launch_transient_rate=0.3,
                             global_bitflip_rate=0.5, ecc_detect_rate=0.5,
                             transfer_corruption_rate=0.3)
            arr = np.arange(32, dtype=np.float32) + 1
            for _ in range(5):
                plan.draw_launch_fault("k")
                plan.corrupt_global_arrays([arr], kernel="k")
                try:
                    plan.corrupt_transfer([arr], direction="d2h")
                except DataCorruptionError:
                    pass
            return [(ev.kind, ev.detail) for ev in plan.events], arr

        events_a, arr_a = run(9)
        events_b, arr_b = run(9)
        assert events_a == events_b
        np.testing.assert_array_equal(arr_a, arr_b)
        events_c, _ = run(10)
        assert events_a != events_c

    def test_detected_transfer_corruption_raises(self):
        plan = FaultPlan(seed=3, transfer_corruption_rate=1.0,
                         ecc_detect_rate=1.0)
        arr = np.ones(16, dtype=np.float32)
        with pytest.raises(DataCorruptionError, match="CRC"):
            plan.corrupt_transfer([arr], direction="h2d")

    def test_silent_transfer_corruption_flips_without_raising(self):
        plan = FaultPlan(seed=3, transfer_corruption_rate=1.0,
                         ecc_detect_rate=0.0)
        arr = np.ones(16, dtype=np.float32)
        plan.corrupt_transfer([arr], direction="h2d")
        assert plan.counts() == {"transfer_corrupt": 1}
        assert (arr != 1).sum() == 1      # exactly one word corrupted

    def test_global_corruption_detected_subset(self):
        plan = FaultPlan(seed=4, global_bitflip_rate=1.0,
                         ecc_detect_rate=1.0)
        g = GlobalArray.from_array(np.ones(8, dtype=np.float32))
        detected = plan.corrupt_global_arrays([g], kernel="k")
        assert len(detected) == 1
        assert detected[0].kind == "bitflip_global"

    def test_fault_events_counted_in_telemetry(self):
        plan = FaultPlan(seed=5, launch_fatal_rate=1.0)
        with telemetry.collect() as col:
            plan.draw_launch_fault("k")
        counter = col.metrics.counter("faults.injected", "")
        assert counter.value(kind="launch_fatal") == 1
        assert any(e.name == "fault.injected" for e in col.events)


class TestInjectLifecycle:
    def test_inject_scopes_and_restores(self):
        assert active_plan() is None
        outer = FaultPlan(seed=0)
        inner = FaultPlan(seed=1)
        with inject(outer):
            assert active_plan() is outer
            with inject(inner):
                assert active_plan() is inner
            assert active_plan() is outer
        assert active_plan() is None

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            with inject(FaultPlan(seed=0)):
                raise RuntimeError("boom")
        assert active_plan() is None

    def test_backoff_schedule_bounded(self):
        assert retry_backoff_s(0, 0.0) == 0.0
        assert retry_backoff_s(0, 0.01) == 0.01
        assert retry_backoff_s(1, 0.01) == 0.02
        assert retry_backoff_s(10, 0.01) == 0.1      # capped


class TestJitteredBackoff:
    def test_full_jitter_stays_under_the_envelope(self):
        rng = np.random.default_rng(0)
        for attempt in range(12):
            envelope = min(0.01 * 2.0 ** attempt, BACKOFF_CAP_S)
            for _ in range(20):
                wait = retry_backoff_s(attempt, 0.01, rng=rng)
                assert 0.0 <= wait <= envelope

    def test_seeded_rng_reproduces_the_schedule(self):
        a = [retry_backoff_s(i, 0.01, rng=np.random.default_rng(42))
             for i in range(8)]
        b = [retry_backoff_s(i, 0.01, rng=np.random.default_rng(42))
             for i in range(8)]
        assert a == b

    def test_jitter_decorrelates_concurrent_retries(self):
        waits = {retry_backoff_s(3, 0.01, rng=np.random.default_rng(s))
                 for s in range(16)}
        assert len(waits) == 16   # sixteen "workers", sixteen waits

    def test_custom_cap(self):
        assert retry_backoff_s(20, 1.0, cap_s=0.5) == 0.5
        rng = np.random.default_rng(1)
        assert retry_backoff_s(20, 1.0, rng=rng, cap_s=0.5) <= 0.5

    def test_zero_base_skips_the_draw(self):
        """The strict no-wait fast path must not consume entropy, so a
        shared plan RNG stays bit-identical whether or not retries
        happened with backoff disabled."""
        rng = np.random.default_rng(7)
        before = rng.bit_generator.state["state"]["state"]
        assert retry_backoff_s(5, 0.0, rng=rng) == 0.0
        assert sleep_backoff(5, 0.0, rng=rng) == 0.0
        assert rng.bit_generator.state["state"]["state"] == before

    def test_sleep_backoff_returns_the_wait(self, monkeypatch):
        import time as _time
        slept = []
        monkeypatch.setattr(_time, "sleep", slept.append)
        wait = sleep_backoff(0, 0.001, rng=np.random.default_rng(3))
        assert slept == [wait]
        assert 0.0 < wait <= 0.001

    def test_plan_exposes_its_rng(self):
        plan = FaultPlan(seed=5)
        assert retry_backoff_s(0, 0.01, rng=plan.rng) <= 0.01


class TestExecutorHooks:
    def test_fatal_launch_raises_immediately(self):
        plan = FaultPlan(seed=0, launch_fatal_rate=1.0)
        with inject(plan):
            with pytest.raises(KernelLaunchError, match="fatal"):
                launch(noop_kernel, num_blocks=1, threads_per_block=32)
        assert plan.counts() == {"launch_fatal": 1}

    def test_transient_exhausts_retries(self):
        plan = FaultPlan(seed=0, launch_transient_rate=1.0)
        with inject(plan):
            with pytest.raises(KernelLaunchError, match="after 3 attempts"):
                launch(noop_kernel, num_blocks=1, threads_per_block=32)
        assert plan.counts() == {"launch_transient": 3}

    def test_transient_then_success(self):
        """A bounded burst of transients is retried away invisibly."""
        plan = FaultPlan(seed=0, launch_transient_rate=1.0, max_faults=2)
        with inject(plan), telemetry.collect() as col:
            result = launch(noop_kernel, num_blocks=1, threads_per_block=32)
        assert result.num_blocks == 1
        retries = col.metrics.counter("sim.launch_retries", "")
        assert retries.value(kernel="noop_kernel") == 2

    def test_detected_global_corruption_raises(self):
        plan = FaultPlan(seed=1, global_bitflip_rate=1.0,
                         ecc_detect_rate=1.0)
        g = GlobalArray.from_array(np.ones(64, dtype=np.float32))
        with inject(plan):
            with pytest.raises(DataCorruptionError, match="ECC"):
                launch(array_kernel, num_blocks=1, threads_per_block=32,
                       g=g)

    def test_silent_global_corruption_passes_through(self):
        plan = FaultPlan(seed=1, global_bitflip_rate=1.0,
                         ecc_detect_rate=0.0)
        g = GlobalArray.from_array(np.ones(64, dtype=np.float32))
        with inject(plan):
            launch(array_kernel, num_blocks=1, threads_per_block=32, g=g)
        assert plan.counts() == {"bitflip_global": 1}
        assert (g.data != 1).sum() == 1

    def test_run_kernel_under_faults_stays_deterministic(self,
                                                         dominant_small):
        def run():
            plan = FaultPlan(seed=21, global_bitflip_rate=0.3,
                             shared_bitflip_rate=0.01)
            with inject(plan):
                x, _res = run_kernel("cr", dominant_small.copy())
            return x, [ev.kind for ev in plan.events]

        x_a, ev_a = run()
        x_b, ev_b = run()
        assert ev_a == ev_b and len(ev_a) > 0
        np.testing.assert_array_equal(x_a, x_b)


class TestDisabledOverhead:
    """Mirrors the telemetry no-op guarantee: with no active plan the
    solve path must never consult FaultPlan machinery at all."""

    def test_plain_solve_never_touches_fault_hooks(self, dominant_small,
                                                   monkeypatch):
        from repro.gpusim import faults

        def boom(*a, **k):
            raise AssertionError("fault hook consulted with no plan")

        for name in ("draw_launch_fault", "corrupt_global_arrays",
                     "maybe_flip_shared", "corrupt_transfer"):
            monkeypatch.setattr(FaultPlan, name, boom)
        assert faults.active_plan() is None
        s = dominant_small
        x = solve(s.a, s.b, s.c, s.d, method="cr_pcr")
        assert np.isfinite(x).all()
        x2, _res = run_kernel("cr", s)      # sim path: same guarantee
        assert np.isfinite(x2).all()

    def test_plain_solve_does_not_import_resilience(self):
        """The guarded pipeline is opt-in: a plain solve() must not
        even pay its import."""
        import os
        import repro
        src = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        code = ("import sys; from repro.solvers.api import solve; "
                "import numpy as np; n = 32; "
                "x = solve(np.ones(n, np.float32), "
                "np.full(n, 4, np.float32), np.ones(n, np.float32), "
                "np.ones(n, np.float32)); "
                "assert 'repro.resilience' not in sys.modules, "
                "'resilience imported on the plain path'")
        subprocess.run([sys.executable, "-c", code], check=True, env=env)
