"""The guarded solve pipeline: routing, gating, escalation, reports."""

import numpy as np
import pytest

from repro import robust_solve, telemetry
from repro.numerics.generators import close_values, diagonally_dominant_fluid
from repro.resilience import SolveFailedError, SolveReport
from repro.solvers.api import SOLVERS
from repro.solvers.validate import InputValidationError
from repro.telemetry import resilience_summary
from repro.telemetry.metrics import FALLBACK_TOTAL, RESIDUAL_MAX


class TestHappyPath:
    def test_dominant_batch_first_method_accepts_all(self, dominant_small):
        s = dominant_small
        report = robust_solve(s.a, s.b, s.c, s.d)
        assert isinstance(report, SolveReport)
        assert report.all_accepted
        assert report.num_fallbacks == 0
        assert report.routes() == {("cr_pcr",): s.num_systems}
        assert report.methods_used() == {"cr_pcr": s.num_systems}
        assert report.max_residual < 1e-4
        for sr in report.systems:
            assert sr.reason == "ok"

    def test_single_system_keeps_1d_shape(self):
        s = diagonally_dominant_fluid(1, 64, seed=3)
        report = robust_solve(s.a[0], s.b[0], s.c[0], s.d[0])
        assert report.x.shape == (64,)
        assert report.all_accepted

    def test_non_power_of_two_padded_and_cropped(self):
        s = diagonally_dominant_fluid(4, 48, seed=5)
        report = robust_solve(s.a, s.b, s.c, s.d)
        assert report.x.shape == (4, 48)
        assert report.all_accepted
        # The answer matches the pivoting reference on the original size.
        x_ref = SOLVERS["gep"](s, intermediate_size=None)
        np.testing.assert_allclose(report.x, x_ref, rtol=1e-3, atol=1e-5)

    def test_pad_false_rejects_odd_sizes(self):
        s = diagonally_dominant_fluid(2, 48, seed=5)
        with pytest.raises(ValueError, match="pad=False"):
            robust_solve(s.a, s.b, s.c, s.d, pad=False)


class TestStabilityRouting:
    def test_non_dominant_pre_routes_to_pivoting(self, close_batch):
        """§5.4: systems the no-pivoting solvers cannot be trusted on
        never touch them."""
        s = close_batch
        report = robust_solve(s.a, s.b, s.c, s.d)
        assert report.all_accepted
        assert report.routes() == {("gep",): s.num_systems}
        assert report.max_residual < 1e-4

    def test_zero_pivot_system_routes_to_gep(self):
        # Nonsingular but with a zero leading pivot: fatal to every
        # no-pivoting method, routine for partial pivoting.
        a = np.array([0, 1, 1, 1], dtype=np.float32)
        b = np.array([0, 4, 4, 4], dtype=np.float32)
        c = np.array([1, 1, 1, 0], dtype=np.float32)
        d = np.array([1, 2, 3, 4], dtype=np.float32)
        report = robust_solve(a, b, c, d)
        (sr,) = report.systems
        assert sr.route == ["gep"]
        assert sr.accepted and sr.residual < 1e-6

    def test_mixed_batch_splits_routes(self):
        dom = diagonally_dominant_fluid(4, 64, seed=7)
        close = close_values(4, 64, seed=8)
        a = np.vstack([dom.a, close.a])
        b = np.vstack([dom.b, close.b])
        c = np.vstack([dom.c, close.c])
        d = np.vstack([dom.d, close.d])
        report = robust_solve(a, b, c, d)
        assert report.all_accepted
        routes = report.routes()
        assert routes[("cr_pcr",)] == 4
        assert routes[("gep",)] == 4
        # Pre-routed systems carry the unstable marker until accepted.
        assert all(report.systems[i].method == "gep" for i in range(4, 8))

    def test_exactly_singular_system_exhausts_chain(self):
        a = np.array([0, 0, 1, 1], dtype=np.float32)
        b = np.array([1, 0, 1, 4], dtype=np.float32)   # zero row: singular
        c = np.array([1, 0, 1, 0], dtype=np.float32)
        d = np.array([1, 2, 3, 4], dtype=np.float32)
        with pytest.raises(SolveFailedError) as exc_info:
            robust_solve(a, b, c, d)
        report = exc_info.value.report
        assert report.failed_indices == [0]
        assert report.systems[0].reason == "exhausted"

    def test_raise_on_failure_false_returns_flagged_report(self):
        a = np.array([0, 0, 1, 1], dtype=np.float32)
        b = np.array([1, 0, 1, 4], dtype=np.float32)
        c = np.array([1, 0, 1, 0], dtype=np.float32)
        d = np.array([1, 2, 3, 4], dtype=np.float32)
        report = robust_solve(a, b, c, d, raise_on_failure=False)
        assert not report.all_accepted
        assert report.systems[0].accepted is False


class TestValidation:
    def test_nan_input_rejected_at_boundary(self, dominant_small):
        s = dominant_small.copy()
        s.d[2, 5] = np.nan
        with pytest.raises(InputValidationError, match="system index 2"):
            robust_solve(s.a, s.b, s.c, s.d)

    def test_check_finite_false_skips_validation(self, dominant_small):
        s = dominant_small.copy()
        s.d[0, 0] = np.nan
        report = robust_solve(s.a, s.b, s.c, s.d, check_finite=False,
                              raise_on_failure=False)
        # The poisoned system fails every method but is flagged, never
        # silently wrong; the healthy systems are unaffected.
        assert report.failed_indices == [0]
        assert all(sr.accepted for sr in report.systems[1:])

    def test_unknown_chain_method(self, dominant_small):
        s = dominant_small
        with pytest.raises(ValueError, match="unknown chain methods"):
            robust_solve(s.a, s.b, s.c, s.d, chain=("cr_pcr", "magma"))

    def test_empty_chain(self, dominant_small):
        s = dominant_small
        with pytest.raises(ValueError, match="must not be empty"):
            robust_solve(s.a, s.b, s.c, s.d, chain=())


class TestEscalationAndRefine:
    def test_tight_tolerance_escalates_on_residual(self, dominant_small):
        """A tolerance below float32 reach forces residual escalations
        and records each hop."""
        s = dominant_small
        report = robust_solve(s.a, s.b, s.c, s.d, residual_tol=1e-10,
                              raise_on_failure=False)
        assert report.num_fallbacks > 0
        rejected = [sr for sr in report.systems if len(sr.route) > 1]
        assert rejected
        assert all(sr.route[0] == "cr_pcr" for sr in rejected)

    def test_refine_retry_rescues_tight_tolerance(self):
        """With refine=True the same tight tolerance is met on the
        first method via mixed-precision refinement -- no fallback."""
        s = diagonally_dominant_fluid(6, 64, seed=9)
        report = robust_solve(s.a, s.b, s.c, s.d, chain=("cr_pcr", "gep"),
                              residual_tol=1e-9, refine=True)
        assert report.all_accepted
        assert report.routes() == {("cr_pcr",): 6}
        assert report.attempts[0].refine_retries == 6
        assert report.total_retries == 6
        assert report.max_residual < 1e-9


class TestReport:
    def test_to_dict_round_trips_key_fields(self, dominant_small):
        s = dominant_small
        report = robust_solve(s.a, s.b, s.c, s.d)
        doc = report.to_dict()
        assert doc["all_accepted"] is True
        assert doc["num_systems"] == s.num_systems
        assert doc["chain"] == ["cr_pcr", "pcr", "thomas", "gep"]
        assert doc["routes"] == {"cr_pcr": s.num_systems}
        assert len(doc["systems"]) == s.num_systems
        assert doc["attempts"][0]["method"] == "cr_pcr"
        import json
        json.dumps(doc)     # JSON-ready, as promised

    def test_summary_renders(self, close_batch):
        s = close_batch
        report = robust_solve(s.a, s.b, s.c, s.d)
        text = report.summary()
        assert "robust solve report" in text
        assert "gep" in text
        assert f"{s.num_systems} (" in text


class TestTelemetryIntegration:
    def test_fallback_counter_and_residual_histogram(self, close_batch):
        s = close_batch
        with telemetry.collect() as col:
            robust_solve(s.a, s.b, s.c, s.d)
        fallback = col.metrics.counter(FALLBACK_TOTAL, "")
        assert fallback.value(**{"from": "(entry)", "to": "gep",
                                 "reason": "unstable"}) == s.num_systems
        hist = col.metrics.histogram(RESIDUAL_MAX, "")
        assert hist.count(method="gep") == 1
        span_names = [sp.name for sp in col.spans]
        assert "robust_solve" in span_names

    def test_resilience_section_in_text_summary(self, close_batch):
        s = close_batch
        with telemetry.collect() as col:
            robust_solve(s.a, s.b, s.c, s.d)
        lines = resilience_summary(col)
        joined = "\n".join(lines)
        assert "unstable" in joined and "gep" in joined
        assert joined in telemetry.text_summary(col)

    def test_disabled_telemetry_records_nothing(self, dominant_small):
        s = dominant_small
        assert not telemetry.enabled()
        report = robust_solve(s.a, s.b, s.c, s.d)
        assert report.all_accepted
