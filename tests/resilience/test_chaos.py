"""Chaos suite: the guarded pipeline under seeded device faults.

The acceptance contract (docs/robustness.md): under injected launch
failures, DRAM/shared bit flips and transfer corruption, every system
either meets the residual tolerance or fails with a typed error --
never a silently wrong answer.  Fixed seeds make every run exactly
reproducible; ``make chaos`` runs this module twice to prove it.
"""

import numpy as np
import pytest
from scipy.linalg import solve_banded

from repro.gpusim import FaultPlan, KernelLaunchError, inject
from repro.numerics.generators import close_values, diagonally_dominant_fluid
from repro.resilience import SolveFailedError, robust_solve

pytestmark = pytest.mark.chaos

TOL = 1e-4


def chaos_plan(seed: int) -> FaultPlan:
    """The standard chaos mix: retryable launches, DRAM and shared
    upsets, corrupted transfers, half of them ECC/CRC-detected."""
    return FaultPlan(seed=seed, launch_transient_rate=0.2,
                     global_bitflip_rate=0.3, shared_bitflip_rate=0.02,
                     transfer_corruption_rate=0.1, ecc_detect_rate=0.5)


def independent_residuals(systems, x) -> np.ndarray:
    """Relative residuals recomputed outside the pipeline (float64)."""
    dn = np.linalg.norm(systems.d.astype(np.float64), axis=1)
    return systems.residual(np.atleast_2d(x).astype(np.float64)) / dn


def scipy_reference(systems) -> np.ndarray:
    out = np.zeros(systems.shape)
    for i in range(systems.num_systems):
        ab = np.zeros((3, systems.n))
        ab[0, 1:] = systems.c[i, :-1].astype(np.float64)
        ab[1] = systems.b[i].astype(np.float64)
        ab[2, :-1] = systems.a[i, 1:].astype(np.float64)
        out[i] = solve_banded((1, 1), ab, systems.d[i].astype(np.float64))
    return out


class TestNoSilentCorruption:
    @pytest.mark.parametrize("seed", [1, 2, 3, 42])
    def test_accepted_systems_verify_independently(self, dominant_batch,
                                                   seed):
        """Every accepted answer survives an out-of-band residual
        check; every miss is flagged -- zero silent corruption."""
        s = dominant_batch
        with inject(chaos_plan(seed)) as plan:
            report = robust_solve(s.a, s.b, s.c, s.d, engine="sim",
                                  raise_on_failure=False)
        rel = independent_residuals(s, report.x)
        for sr in report.systems:
            if sr.accepted:
                assert rel[sr.index] <= TOL, (seed, sr.index)
            else:
                assert sr.reason == "exhausted"
        # The plan actually did something (the suite is not vacuous).
        assert plan.fault_count > 0
        assert report.fault_events == plan.fault_count

    def test_detected_faults_cost_retries_not_correctness(self,
                                                          dominant_batch):
        """Seed 3 injects enough faults to drive the batch down to the
        thomas hop; the answers still verify."""
        s = dominant_batch
        with inject(chaos_plan(3)):
            report = robust_solve(s.a, s.b, s.c, s.d, engine="sim")
        assert report.all_accepted
        assert report.num_fallbacks > 0
        assert independent_residuals(s, report.x).max() <= TOL


class TestDeterminism:
    def test_same_seed_same_report_and_faults(self, dominant_batch):
        """The whole chaos run -- faults, routes, residuals -- is a
        pure function of (workload, plan seed)."""
        s = dominant_batch

        def run():
            with inject(chaos_plan(42)) as plan:
                report = robust_solve(s.a, s.b, s.c, s.d, engine="sim",
                                      raise_on_failure=False)
            return report, plan

        report_a, plan_a = run()
        report_b, plan_b = run()
        assert plan_a.counts() == plan_b.counts()
        assert [(e.kind, e.detail) for e in plan_a.events] == \
               [(e.kind, e.detail) for e in plan_b.events]
        assert report_a.to_dict() == report_b.to_dict()
        np.testing.assert_array_equal(report_a.x, report_b.x)

    def test_different_seeds_differ(self, dominant_batch):
        s = dominant_batch
        counts = []
        for seed in (2, 3):
            with inject(chaos_plan(seed)) as plan:
                robust_solve(s.a, s.b, s.c, s.d, engine="sim",
                             raise_on_failure=False)
            counts.append(plan.counts())
        assert counts[0] != counts[1]


class TestTypedFailures:
    def test_unrecoverable_faults_surface_as_typed_error(self,
                                                         dominant_small):
        """A chain with no healthy method left ends in SolveFailedError
        carrying the report -- never a quiet wrong answer."""
        s = dominant_small
        plan = FaultPlan(seed=0, launch_fatal_rate=1.0)
        with inject(plan):
            with pytest.raises(SolveFailedError) as exc_info:
                robust_solve(s.a, s.b, s.c, s.d, engine="sim",
                             chain=("cr",), method_retries=0)
        report = exc_info.value.report
        assert len(report.failed_indices) == s.num_systems
        assert report.attempts[0].error == "KernelLaunchError"

    def test_transient_storm_exhausts_launch_retries(self,
                                                     dominant_small):
        s = dominant_small
        plan = FaultPlan(seed=0, launch_transient_rate=1.0)
        with inject(plan):
            with pytest.raises(KernelLaunchError):
                from repro.kernels.api import run_kernel
                run_kernel("cr", s)


class TestOffDominantUnderChaos:
    def test_close_values_route_to_pivoting_with_scipy_accuracy(self):
        """Off the paper's dominant class the batch pre-routes to gep
        (a numpy-path method the injected device faults cannot touch)
        and matches the scipy reference."""
        s = close_values(8, 64, seed=13)
        with inject(chaos_plan(42)):
            report = robust_solve(s.a, s.b, s.c, s.d, engine="sim")
        assert report.routes() == {("gep",): s.num_systems}
        ref = scipy_reference(s)
        err = np.abs(report.x - ref) / np.maximum(np.abs(ref), 1e-30)
        assert err.max() < 5e-4
        for sr in report.systems:
            assert sr.reason == "ok"
