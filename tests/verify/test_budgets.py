"""The §5.4 budget taxonomy: who carries a contract where."""

import pytest

from repro.verify.budgets import (PIVOTING_FAMILY, RD_FAMILY, budget_for,
                                  budget_table)
from repro.verify.generators import DOMINANT_CLASSES, VERIFY_CLASSES

pytestmark = pytest.mark.verify

ALL_SOLVERS = ("thomas", "gep", "qr", "twoway", "cr", "pcr", "rd",
               "cr_pcr", "cr_rd", "pcr_pingpong", "cr_split", "cr_global",
               "rd_full")


@pytest.mark.parametrize("solver", sorted(PIVOTING_FAMILY))
@pytest.mark.parametrize("klass", sorted(VERIFY_CLASSES))
def test_pivoting_solvers_are_under_contract_everywhere(solver, klass):
    b = budget_for(solver, klass)
    assert b.enforced
    assert not b.allow_overflow


def test_near_singular_budget_is_looser_for_pivoting():
    easy = budget_for("gep", "diagonally_dominant")
    hard = budget_for("gep", "near_singular")
    assert hard.rel_residual > easy.rel_residual


@pytest.mark.parametrize("solver", sorted(RD_FAMILY))
def test_rd_family_contract_is_close_values_only(solver):
    for klass in VERIFY_CLASSES:
        b = budget_for(solver, klass)
        if klass == "close_values":
            assert b.enforced, "RD is accurate on close values (§5.4)"
        else:
            assert not b.enforced
            assert b.allow_overflow, \
                "RD may overflow off the close-values class (Fig 18)"


@pytest.mark.parametrize("solver", ["thomas", "twoway", "cr", "pcr",
                                    "cr_pcr", "cr_split", "cr_global",
                                    "pcr_pingpong"])
def test_stable_elimination_contract_is_dominant_only(solver):
    for klass in VERIFY_CLASSES:
        b = budget_for(solver, klass)
        assert b.enforced == (klass in DOMINANT_CLASSES)


def test_unknown_class_raises():
    with pytest.raises(ValueError):
        budget_for("cr", "bogus")


def test_budget_table_covers_the_full_grid():
    table = budget_table(ALL_SOLVERS)
    assert len(table) == len(ALL_SOLVERS) * len(VERIFY_CLASSES)
    assert all(hasattr(b, "rel_residual") for b in table.values())


def test_budget_serializes():
    d = budget_for("rd", "diagonally_dominant").to_dict()
    assert d == {"rel_residual": None, "max_ulps": None,
                 "allow_overflow": True}
