"""Differential harness: grid enumeration, judging, skip logic."""

import numpy as np
import pytest

from repro import telemetry
from repro.numerics.generators import diagonally_dominant_fluid
from repro.verify import run_differential, verify_cell, verify_solution
from repro.verify.budgets import budget_for
from repro.verify.differential import (NUMPY_LAYOUTS, SIM_RUNNERS, CellSpec,
                                       applicable, grid, judge)
from repro.verify.oracle import compare_to_oracle, oracle_solve

pytestmark = pytest.mark.verify


def spec(engine="numpy", solver="cr", layout="rows",
         klass="diagonally_dominant", n=16, num_systems=3, seed=0):
    return CellSpec(engine, solver, layout, klass, n, num_systems, seed)


def test_small_numpy_grid_is_green():
    report = run_differential(sizes=(16,), num_systems=3, seed=0,
                              engines=("numpy",),
                              classes=("diagonally_dominant",
                                       "close_values"),
                              solvers=("gep", "cr", "rd"))
    assert report.ok, report.summary()
    # 3 solvers x 3 layouts x 2 classes at one size.
    assert len(report.cells) == 18
    assert report.counts().get("pass", 0) > 0


def test_small_sim_grid_is_green():
    report = run_differential(sizes=(16,), num_systems=2, seed=0,
                              engines=("sim",),
                              classes=("diagonally_dominant",),
                              solvers=("cr", "pcr"))
    assert report.ok, report.summary()
    assert {c.spec.engine for c in report.cells} == {"sim"}


@pytest.mark.parametrize("layout", NUMPY_LAYOUTS)
def test_every_layout_matches_the_oracle(layout):
    cell = verify_cell(spec(solver="cr_pcr", layout=layout, n=32))
    assert cell.status == "pass", cell.message
    assert cell.rel_residual_max < 5e-3


@pytest.mark.parametrize("solver", ["cr_split", "pcr_pingpong", "rd_full"])
def test_oversized_shared_footprints_are_architectural_skips(solver):
    s = spec(engine="sim", solver=solver, layout="global", n=512)
    assert applicable(s) is not None
    cell = verify_cell(s)
    assert cell.status == "skipped"
    assert "shared memory" in cell.message
    # The same kernels run fine at n <= 256.
    assert applicable(spec(engine="sim", solver=solver,
                           layout="global", n=256)) is None


def test_crash_is_a_contract_violation():
    cell = verify_cell(spec(layout="bogus"))
    assert cell.status == "fail"
    assert "solver raised" in cell.message


def test_judge_rejects_unsanctioned_overflow():
    s = diagonally_dominant_fluid(4, 16, seed=5)
    x = oracle_solve(s).astype(np.float32)
    x[0] = np.nan
    sp = spec(solver="cr", num_systems=4)
    cell = judge(sp, budget_for("cr", "diagonally_dominant"),
                 compare_to_oracle(s, x))
    assert cell.status == "fail"
    assert "overflowed" in cell.message


def test_judge_tolerates_rd_overflow():
    s = diagonally_dominant_fluid(4, 16, seed=5)
    x = oracle_solve(s).astype(np.float32)
    x[0] = np.inf
    sp = spec(solver="rd", num_systems=4)
    cell = judge(sp, budget_for("rd", "diagonally_dominant"),
                 compare_to_oracle(s, x))
    assert cell.ok
    assert cell.status == "recorded"     # no contract on this cell


def test_grid_enumerates_from_the_live_registries():
    specs = grid(sizes=(8,), num_systems=1, seed=0)
    solvers = {s.solver for s in specs if s.engine == "sim"}
    assert solvers == set(SIM_RUNNERS)
    layouts = {s.layout for s in specs if s.engine == "numpy"}
    assert layouts == set(NUMPY_LAYOUTS)


def test_verify_solution_judges_external_solves():
    s = diagonally_dominant_fluid(4, 32, seed=9)
    good = verify_solution(s, oracle_solve(s), solver="thomas")
    assert good.status == "pass"
    bad = verify_solution(s, np.zeros((4, 32)), solver="thomas")
    assert bad.status == "fail"


def test_cells_feed_the_telemetry_counter():
    with telemetry.collect() as col:
        verify_cell(spec(solver="gep", n=8))
    counter = col.metrics.counter("verify.cells")
    assert counter.value(status="pass", solver="gep",
                         matrix_class="diagonally_dominant",
                         engine="numpy") == 1


def test_report_to_dict_is_json_ready():
    import json
    report = run_differential(sizes=(8,), num_systems=1, seed=0,
                              engines=("numpy",),
                              classes=("diagonally_dominant",),
                              solvers=("gep",))
    json.dumps(report.to_dict())    # must not raise on inf/nan
