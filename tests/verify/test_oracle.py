"""Oracle solve, ULP metric, and the comparison container."""

import numpy as np
import pytest

from repro.numerics.generators import diagonally_dominant_fluid
from repro.verify.oracle import (compare_to_oracle, oracle_solve,
                                 ulp_distance)

pytestmark = pytest.mark.verify


def test_oracle_is_float64_and_accurate():
    s = diagonally_dominant_fluid(4, 64, seed=0)
    x = oracle_solve(s)
    assert x.dtype == np.float64
    assert s.astype(np.float64).residual(x).max() < 1e-12


def test_ulp_distance_identity_and_neighbours():
    x = np.array([1.0, -2.5, 0.0, 3e7], dtype=np.float32)
    assert ulp_distance(x, x).max() == 0
    up = np.nextafter(x, np.float32(np.inf), dtype=np.float32)
    assert np.all(ulp_distance(x, up) == 1)


def test_ulp_distance_across_zero():
    tiny = np.float32(1e-45)        # smallest subnormal
    d = ulp_distance(np.array([-tiny]), np.array([tiny]))
    assert d[0] == 2                # -den, (+/-)0, +den


def test_ulp_distance_signed_zeros_coincide():
    d = ulp_distance(np.array([-0.0], dtype=np.float32),
                     np.array([0.0], dtype=np.float32))
    assert d[0] == 0


def test_ulp_distance_nonfinite_is_inf():
    d = ulp_distance(np.array([np.nan, 1.0, np.inf], dtype=np.float32),
                     np.array([1.0, 1.0, 1.0], dtype=np.float32))
    assert np.isinf(d[0]) and d[1] == 0 and np.isinf(d[2])


def test_compare_to_oracle_flags_overflowed_systems():
    s = diagonally_dominant_fluid(4, 16, seed=1)
    x = oracle_solve(s).astype(np.float32)
    x[2] = np.inf
    cmp_ = compare_to_oracle(s, x)
    assert cmp_.overflow_fraction == pytest.approx(0.25)
    assert np.isinf(cmp_.rel_residual[2])
    finite = np.isfinite(cmp_.rel_residual)
    assert cmp_.rel_residual[finite].max() < 1e-5
    assert cmp_.rel_residual_max < 1e-5   # property skips the inf row


def test_compare_to_oracle_accepts_precomputed_reference():
    s = diagonally_dominant_fluid(2, 16, seed=2)
    ref = oracle_solve(s)
    cmp_ = compare_to_oracle(s, ref.astype(np.float32), ref)
    assert cmp_.ulp_worst <= 1
