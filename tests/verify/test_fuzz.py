"""Seeded fuzzer: determinism, repro files, shrinking, bug injection."""

import dataclasses
import json

import numpy as np
import pytest

import repro.solvers.cr as crmod
from repro.numerics.generators import diagonally_dominant_fluid
from repro.verify import (load_repro, replay_repro, run_fuzz,
                          shrink_failure, write_repro)
from repro.verify.differential import CellSpec
from repro.verify.fuzz import draw_case

pytestmark = pytest.mark.fuzz

CR_FAMILY = {"cr", "cr_pcr", "cr_rd"}


@pytest.fixture
def flipped_cr_sign(monkeypatch):
    """Deliberately inject a bug: flip the sign of the reduced rhs in
    one CR forward-reduction update (the acceptance scenario for the
    harness -- a seeded solver defect the fuzzer must catch and
    shrink)."""
    orig = crmod.forward_reduction_level

    def buggy(a, b, c, d, idx, s, n):
        orig(a, b, c, d, idx, s, n)
        d[:, idx] = -d[:, idx]

    monkeypatch.setattr(crmod, "forward_reduction_level", buggy)


def test_draw_case_is_deterministic():
    for i in range(10):
        assert draw_case(i, seed=7) == draw_case(i, seed=7)
    specs = {draw_case(i, seed=7).spec for i in range(20)}
    assert len(specs) > 10      # actually varied


def test_clean_fuzz_run_has_no_failures(tmp_path):
    report = run_fuzz(seed=0, iters=40, corpus_dir=tmp_path)
    assert report.ok, report.summary()
    assert report.iterations == 40
    assert list(tmp_path.glob("*.json")) == []


def test_repro_file_round_trip_is_bitwise(tmp_path):
    s = diagonally_dominant_fluid(2, 16, seed=3)
    spec = CellSpec("numpy", "cr", "rows", "diagonally_dominant", 16, 2, 3)
    path = write_repro(tmp_path / "case.json", spec, s,
                       message="demo", shrink_steps=["batch -> 2 systems"])
    spec2, s2 = load_repro(path)
    assert spec2 == spec
    for x, y in ((s.a, s2.a), (s.b, s2.b), (s.c, s2.c), (s.d, s2.d)):
        assert np.array_equal(x, y) and x.dtype == y.dtype
    payload = json.loads((tmp_path / "case.json").read_text())
    assert payload["shrink_steps"] == ["batch -> 2 systems"]


def test_repro_version_guard(tmp_path):
    s = diagonally_dominant_fluid(1, 8, seed=0)
    spec = CellSpec("numpy", "gep", "rows", "diagonally_dominant", 8, 1, 0)
    write_repro(tmp_path / "old.json", spec, s)
    payload = json.loads((tmp_path / "old.json").read_text())
    payload["version"] = 99
    (tmp_path / "old.json").write_text(json.dumps(payload))
    with pytest.raises(ValueError, match="unsupported repro version"):
        load_repro(tmp_path / "old.json")


def test_passing_corpus_replays_clean(tmp_path):
    s = diagonally_dominant_fluid(2, 16, seed=3)
    spec = CellSpec("numpy", "gep", "rows", "diagonally_dominant", 16, 2, 3)
    write_repro(tmp_path / "ok.json", spec, s)
    report = run_fuzz(seed=0, iters=0, corpus_dir=tmp_path)
    assert report.corpus_replayed == 1
    assert report.ok


def test_shrink_refuses_a_passing_cell():
    spec = CellSpec("numpy", "gep", "rows", "diagonally_dominant", 16, 4, 0)
    with pytest.raises(ValueError, match="does not fail"):
        shrink_failure(spec)


def test_injected_cr_bug_is_caught_and_shrunk(tmp_path, flipped_cr_sign):
    report = run_fuzz(seed=0, iters=60, corpus_dir=tmp_path)
    assert not report.ok, "seeded CR defect must be detected"
    assert all(f.case.spec.solver in CR_FAMILY for f in report.failures), \
        "only CR-path solvers may implicate the injected bug"
    for f in report.failures:
        # Acceptance bar: minimized to a <= 4-system reproduction.
        assert f.shrunk_systems.num_systems <= 4
        assert f.repro_path is not None
        # The repro file replays to the same verdict while the bug is in.
        assert replay_repro(f.repro_path).status == "fail"


def test_injected_bug_repro_passes_once_fixed(tmp_path):
    """The minimized repro is a regression test: failing under the bug,
    green on the fixed solver."""
    with pytest.MonkeyPatch.context() as mp:
        orig = crmod.forward_reduction_level

        def buggy(a, b, c, d, idx, s, n):
            orig(a, b, c, d, idx, s, n)
            d[:, idx] = -d[:, idx]

        mp.setattr(crmod, "forward_reduction_level", buggy)
        report = run_fuzz(seed=0, iters=60, corpus_dir=tmp_path)
        assert report.failures
    # Bug reverted ("fixed"): every minimized repro now passes.
    for f in report.failures:
        result = replay_repro(f.repro_path)
        assert result.status != "fail", result.message


def test_shrunk_spec_matches_shrunk_systems(tmp_path, flipped_cr_sign):
    report = run_fuzz(seed=0, iters=60, corpus_dir=None)
    assert report.failures
    f = report.failures[0]
    assert f.shrunk_spec.num_systems == f.shrunk_systems.num_systems
    assert f.shrunk_spec.n == f.shrunk_systems.n
    assert f.shrunk_spec == dataclasses.replace(
        f.case.spec, num_systems=f.shrunk_systems.num_systems,
        n=f.shrunk_systems.n)
