"""Property tests for the invariant checker's vectorized tally.

``repro.verify.invariants._Tally`` re-derives bank-conflict cycles and
coalesced transactions independently of the simulator.  Its hot
methods were vectorized (np.unique / reduceat encodings); the original
per-group loops are kept as ``_reference_bank_cycles`` /
``_reference_transactions`` and the two implementations are held equal
here on random address patterns, including the degenerate shapes the
encodings must survive (empty, single lane, duplicate addresses,
sparse lane ids, address 0 spans).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.gpusim.device import GTX280, TESLA_C1060
from repro.verify.invariants import _Tally

_addr_lists = st.lists(st.integers(min_value=0, max_value=4095),
                       min_size=1, max_size=64)


class TestBankCycles:
    @settings(max_examples=200, deadline=None)
    @given(addrs=_addr_lists, data=st.data())
    def test_matches_reference_on_sparse_lanes(self, addrs, data):
        """Lane ids drawn independently of addresses: half-warp
        grouping keys on lane id, not array position."""
        lanes = data.draw(st.lists(
            st.integers(min_value=0, max_value=511),
            min_size=len(addrs), max_size=len(addrs), unique=True))
        t = _Tally(GTX280)
        a = np.asarray(addrs, dtype=np.int64)
        l = np.asarray(sorted(lanes), dtype=np.int64)
        assert t._bank_cycles(a, l) == t._reference_bank_cycles(a, l)

    @settings(max_examples=100, deadline=None)
    @given(addrs=_addr_lists)
    def test_matches_reference_on_prefix_lanes(self, addrs):
        t = _Tally(GTX280)
        a = np.asarray(addrs, dtype=np.int64)
        l = np.arange(a.size, dtype=np.int64)
        assert t._bank_cycles(a, l) == t._reference_bank_cycles(a, l)

    def test_empty(self):
        t = _Tally(GTX280)
        empty = np.empty(0, dtype=np.int64)
        assert t._bank_cycles(empty, empty) == (0, 0)

    def test_all_zero_addresses(self):
        """span = max + 1 must not collapse when every address is 0."""
        t = _Tally(GTX280)
        a = np.zeros(33, dtype=np.int64)
        l = np.arange(33, dtype=np.int64)
        assert t._bank_cycles(a, l) == t._reference_bank_cycles(a, l) \
            == (3, 3)

    def test_16_way_conflict(self):
        """All 16 lanes of one half-warp on distinct words of one
        bank: the paper's worst case serializes into 16 cycles."""
        t = _Tally(GTX280)
        a = np.arange(16, dtype=np.int64) * t.banks
        l = np.arange(16, dtype=np.int64)
        assert t._bank_cycles(a, l) == (16, 1)

    @settings(max_examples=50, deadline=None)
    @given(addrs=_addr_lists)
    def test_other_device_geometry(self, addrs):
        t = _Tally(TESLA_C1060)
        a = np.asarray(addrs, dtype=np.int64)
        l = np.arange(a.size, dtype=np.int64)
        assert t._bank_cycles(a, l) == t._reference_bank_cycles(a, l)


class TestTransactions:
    @settings(max_examples=200, deadline=None)
    @given(idx=_addr_lists)
    def test_matches_reference(self, idx):
        t = _Tally(GTX280)
        i = np.asarray(idx, dtype=np.int64)
        assert t._transactions(i) == t._reference_transactions(i)

    def test_empty(self):
        assert _Tally(GTX280)._transactions(
            np.empty(0, dtype=np.int64)) == 0

    def test_contiguous_half_warp_is_one_transaction(self):
        t = _Tally(GTX280)
        i = np.arange(16, dtype=np.int64)
        assert t._transactions(i) == 1

    def test_strided_half_warp_is_sixteen(self):
        """Stride 16 words puts every lane in its own 64-byte
        segment -- fully uncoalesced."""
        t = _Tally(GTX280)
        i = np.arange(16, dtype=np.int64) * t.seg_words
        assert t._transactions(i) == 16

    def test_duplicate_addresses_coalesce(self):
        t = _Tally(GTX280)
        i = np.zeros(16, dtype=np.int64)
        assert t._transactions(i) == 1
