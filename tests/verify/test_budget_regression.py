"""Regression lock on the §5.4 residual table.

``tests/data/sec54_residuals.json`` pins, for every solver x matrix
class at the paper's flagship n=512, the verification *status* (pass /
recorded / overflow_ok) and the residual magnitudes of one seeded
batch.  A drifting status means a solver gained or lost accuracy on a
class -- exactly the §5.4 findings this repo reproduces -- and must be
an intentional change.

Regenerate after an intentional accuracy change with::

    PYTHONPATH=src python -m repro verify --emit-golden \
        tests/data/sec54_residuals.json

and explain the diff in the commit message.
"""

import json
import math
from functools import lru_cache
from pathlib import Path

import pytest

from repro.verify import golden_table

pytestmark = pytest.mark.verify

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "sec54_residuals.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

#: Residual magnitudes may drift a little across numpy versions and
#: platforms (different summation orders); an order of magnitude of
#: slack still pins the §5.4 story, which spans ~30 orders.
REL_SLACK = 10.0


@lru_cache(maxsize=1)
def regenerated() -> dict:
    return golden_table(seed=GOLDEN["seed"], n=GOLDEN["n"],
                        num_systems=GOLDEN["num_systems"])


def test_golden_file_shape():
    assert GOLDEN["version"] == 1
    assert GOLDEN["n"] == 512
    # 9 registry solvers x 7 matrix classes.
    assert len(GOLDEN["rows"]) == 63


@pytest.mark.parametrize("key", sorted(GOLDEN["rows"]))
def test_cell_matches_golden(key):
    want = GOLDEN["rows"][key]
    got = regenerated()["rows"][key]
    assert got["status"] == want["status"], \
        f"{key}: status {got['status']!r} drifted from golden " \
        f"{want['status']!r} -- see module docstring to regenerate"
    assert got["overflow_fraction"] == pytest.approx(
        want["overflow_fraction"])
    for field in ("median_rel_residual", "max_rel_residual"):
        w, g = want.get(field), got.get(field)
        if w is None or g is None:
            assert w == g, f"{key}: {field} presence changed"
            continue
        if w == 0 or g == 0:
            assert w == g
            continue
        ratio = g / w
        assert 1 / REL_SLACK < ratio < REL_SLACK, \
            f"{key}: {field} {g:.3e} vs golden {w:.3e}"


def test_rd_overflows_on_dominant_but_not_close_values():
    """The headline Fig 18 claim, read straight off the golden table."""
    rows = GOLDEN["rows"]
    assert rows["rd|diagonally_dominant"]["overflow_fraction"] == 1.0
    assert rows["rd|close_values"]["overflow_fraction"] == 0.0
    assert rows["rd|close_values"]["status"] in ("pass", "overflow_ok")
    assert rows["gep|diagonally_dominant"]["status"] == "pass"
    assert not math.isnan(
        rows["cr_pcr|diagonally_dominant"]["max_rel_residual"])
