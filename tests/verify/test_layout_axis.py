"""Layout as a real axis of the sim verification grid."""

import numpy as np
import pytest

from repro.verify.differential import (SIM_LAYOUT_AWARE, SIM_LAYOUTS,
                                       CellSpec, applicable, grid,
                                       verify_cell)
from repro.verify.generators import generate


def _spec(solver, layout, n=64, num_systems=4, klass="diagonally_dominant"):
    return CellSpec("sim", solver, layout, klass, n, num_systems, seed=0)


class TestGridEnumeratesLayouts:
    def test_layout_aware_solvers_get_both_layouts(self):
        specs = grid(sizes=(64,), engines=("sim",), solvers=["thomas"],
                     classes=["diagonally_dominant"])
        assert {s.layout for s in specs} == set(SIM_LAYOUTS)

    def test_shared_memory_solvers_stay_sequential(self):
        specs = grid(sizes=(64,), engines=("sim",), solvers=["cr", "pcr"],
                     classes=["diagonally_dominant"])
        assert {s.layout for s in specs} == {"global"}

    def test_full_sim_grid_contains_interleaved_thomas(self):
        specs = grid(sizes=(64,), engines=("sim",),
                     classes=["diagonally_dominant"])
        pairs = {(s.solver, s.layout) for s in specs}
        assert ("thomas", "interleaved") in pairs
        assert ("thomas", "global") in pairs


class TestApplicability:
    def test_interleaved_thomas_runs(self):
        assert applicable(_spec("thomas", "interleaved")) is None

    def test_interleaved_rejected_for_shared_memory_kernels(self):
        reason = applicable(_spec("cr", "interleaved"))
        assert reason is not None and "sequential layout" in reason

    def test_skip_reason_surfaces_in_cell_result(self):
        cell = verify_cell(_spec("pcr", "interleaved"))
        assert cell.status == "skipped"
        assert "sequential layout" in cell.message


class TestInterleavedThomasCells:
    @pytest.mark.parametrize("n", [33, 64])
    def test_cell_passes_budget(self, n):
        cell = verify_cell(_spec("thomas", "interleaved", n=n))
        assert cell.status == "pass", cell.message

    def test_interleaved_bitwise_equals_sequential(self):
        """The tentpole contract: the interleaved kernel is the same
        per-lane float32 program behind a different address map, so
        its solutions match the sequential cell *bitwise*."""
        from repro.kernels import run_thomas_batch
        systems = generate("diagonally_dominant", 6, 64, seed=3)
        for layout_pair in [("sequential", "interleaved")]:
            xs, _ = run_thomas_batch(systems, layout=layout_pair[0])
            xi, _ = run_thomas_batch(systems, layout=layout_pair[1])
            np.testing.assert_array_equal(xs, xi)
        # and both cells pass the differential budget independently
        for lay in ("global", "interleaved"):
            cell = verify_cell(CellSpec("sim", "thomas", lay,
                                        "diagonally_dominant", 64, 6, 3))
            assert cell.status == "pass", cell.message

    def test_thomas_is_the_only_aware_solver_today(self):
        assert SIM_LAYOUT_AWARE == frozenset({"thomas"})
