"""Matrix-class registry: shapes, determinism, dominance taxonomy."""

import numpy as np
import pytest

from repro.verify.generators import (DOMINANT_CLASSES, VERIFY_CLASSES,
                                     generate, graded, near_singular,
                                     periodic_coeff)

pytestmark = pytest.mark.verify


@pytest.mark.parametrize("klass", sorted(VERIFY_CLASSES))
def test_shape_dtype_and_determinism(klass):
    s1 = generate(klass, 3, 16, seed=42)
    s2 = generate(klass, 3, 16, seed=42)
    assert s1.shape == (3, 16)
    assert s1.dtype == np.float32
    for x, y in ((s1.a, s2.a), (s1.b, s2.b), (s1.c, s2.c), (s1.d, s2.d)):
        assert np.array_equal(x, y)


@pytest.mark.parametrize("klass", sorted(VERIFY_CLASSES))
def test_seed_changes_the_draw(klass):
    s1 = generate(klass, 3, 16, seed=0)
    s2 = generate(klass, 3, 16, seed=1)
    assert not (np.array_equal(s1.b, s2.b) and np.array_equal(s1.d, s2.d))


@pytest.mark.parametrize("klass", sorted(DOMINANT_CLASSES))
def test_dominant_classes_are_dominant(klass):
    s = generate(klass, 4, 32, seed=3)
    assert bool(np.all(s.is_diagonally_dominant(strict=False)))


def test_near_singular_breaks_dominance():
    s = near_singular(4, 32, seed=3)
    assert not bool(np.all(s.is_diagonally_dominant(strict=True)))


def test_graded_sweeps_the_advertised_decades():
    s = graded(1, 64, seed=0, decades=4.0, dtype=np.float64)
    row_mag = np.abs(s.b[0])
    # Last rows are ~10^4 times the first rows (geometric grading).
    assert row_mag[-1] / row_mag[0] > 1e3


def test_periodic_coeff_has_varying_couplings():
    s = periodic_coeff(1, 64, seed=0)
    interior = s.a[0, 1:]
    assert interior.std() > 0.1 * np.abs(interior).mean()


def test_unknown_class_raises():
    with pytest.raises(ValueError, match="unknown matrix class"):
        generate("bogus", 1, 8, seed=0)
