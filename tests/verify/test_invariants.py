"""Invariant checker: analytic expectations vs recorded traces."""

import math

import pytest

from repro.verify import check_invariants, expected_counters
from repro.verify.invariants import (CHECKED_COUNTERS, INVARIANT_KERNELS,
                                     InvariantMismatch, InvariantReport)

pytestmark = pytest.mark.verify


def test_small_sizes_have_zero_mismatches():
    report = check_invariants(sizes=(8, 32), kernels=INVARIANT_KERNELS)
    assert report.ok, report.summary()
    assert report.checked == 2 * len(INVARIANT_KERNELS)


def test_flagship_size_cr_matches_trace():
    report = check_invariants(sizes=(512,), kernels=("cr",))
    assert report.ok, report.summary()


@pytest.mark.parametrize("n", [8, 64, 256])
def test_cr_closed_forms(n):
    L = int(math.log2(n))
    e = expected_counters("cr", n)
    assert e["steps"] == 2 * L - 1
    assert e["syncs"] == 2 * L
    assert e["shared_words"] == 28 * n - 38


@pytest.mark.parametrize("n", [8, 64, 256])
def test_pcr_closed_forms(n):
    L = int(math.log2(n))
    e = expected_counters("pcr", n)
    assert e["steps"] == L
    assert e["syncs"] == 2 * L


@pytest.mark.parametrize("n", [8, 64, 256])
def test_rd_closed_forms(n):
    L = int(math.log2(n))
    e = expected_counters("rd", n)
    assert e["steps"] == L + 2
    assert e["syncs"] == 2 * L + 3


def test_cr_global_transactions_at_flagship_size():
    # 512-unknown CR moves 5 coalesced arrays in and 1 out:
    # ceil-per-16 segments over 512-long rows -> 160 transactions.
    assert expected_counters("cr", 512)["global_transactions"] == 160


def test_expected_counters_cover_the_checked_set():
    e = expected_counters("cr_pcr", 64)
    for counter in CHECKED_COUNTERS:
        assert counter in e
    assert isinstance(e["forward_step_shared_cycles"], list)


def test_mismatch_reporting_shape():
    report = InvariantReport(checked=1, mismatches=[
        InvariantMismatch("cr", 64, "syncs", 12, 13)])
    assert not report.ok
    assert "MISMATCH" in report.summary()
    doc = report.to_dict()
    assert doc["ok"] is False and len(doc["mismatches"]) == 1
