"""Tridiagonal inverse elements (Usmani recurrences, log form)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.numerics.generators import (close_values,
                                       diagonally_dominant_fluid,
                                       toeplitz_spd)
from repro.numerics.inverse import (greens_function, inverse_diagonal,
                                    inverse_elements)


def dense_inverse(systems):
    return np.linalg.inv(systems.astype(np.float64).to_dense())


class TestAgainstDense:
    @pytest.mark.parametrize("gen,seed", [
        (diagonally_dominant_fluid, 0), (close_values, 1),
        (toeplitz_spd, 2)])
    def test_all_entries(self, gen, seed):
        s = gen(3, 10, seed=seed, dtype=np.float64)
        inv = dense_inverse(s)
        ii, jj = np.meshgrid(np.arange(10), np.arange(10), indexing="ij")
        got = inverse_elements(s, ii.ravel(), jj.ravel())
        np.testing.assert_allclose(got.reshape(3, 10, 10), inv,
                                   rtol=1e-10, atol=1e-12)

    def test_diagonal(self):
        s = diagonally_dominant_fluid(2, 16, seed=3, dtype=np.float64)
        inv = dense_inverse(s)
        np.testing.assert_allclose(
            inverse_diagonal(s),
            inv[:, np.arange(16), np.arange(16)], rtol=1e-11)

    def test_greens_function_column(self):
        s = toeplitz_spd(1, 20, seed=4, dtype=np.float64)
        inv = dense_inverse(s)
        np.testing.assert_allclose(greens_function(s, 7), inv[:, :, 7],
                                   rtol=1e-11)


class TestOverflowRobustness:
    def test_large_n_stays_finite(self):
        """theta_n overflows float64 well below n = 512 for dominant
        matrices; the log-form recurrences must not care."""
        s = diagonally_dominant_fluid(2, 512, seed=5, dtype=np.float64)
        d = inverse_diagonal(s)
        assert np.isfinite(d).all()

    def test_large_n_matches_solve(self):
        """Cross-check one Green's column against a linear solve."""
        from repro.solvers.thomas import thomas_batched
        from repro.solvers.systems import TridiagonalSystems
        s = diagonally_dominant_fluid(2, 256, seed=6, dtype=np.float64)
        col = 100
        e = np.zeros(s.shape)
        e[:, col] = 1.0
        x = thomas_batched(TridiagonalSystems(s.a, s.b, s.c, e))
        np.testing.assert_allclose(greens_function(s, col), x,
                                   rtol=1e-9, atol=1e-12)


class TestStructure:
    def test_symmetric_matrix_symmetric_inverse(self):
        s = toeplitz_spd(1, 12, seed=7, dtype=np.float64)
        i = np.array([2, 3, 4])
        j = np.array([8, 9, 10])
        np.testing.assert_allclose(inverse_elements(s, i, j),
                                   inverse_elements(s, j, i), rtol=1e-11)

    def test_greens_decay_for_dominant(self):
        """Dominant operators have exponentially decaying inverses --
        entries far from the diagonal are tiny."""
        s = diagonally_dominant_fluid(1, 64, seed=8, dtype=np.float64)
        g = np.abs(greens_function(s, 32)[0])
        assert g[32] > 100 * g[0]
        assert g[32] > 100 * g[-1]

    def test_index_validation(self):
        s = diagonally_dominant_fluid(1, 8, seed=9)
        with pytest.raises(ValueError, match="out of range"):
            inverse_elements(s, np.array([0]), np.array([8]))
        with pytest.raises(ValueError, match="same shape"):
            inverse_elements(s, np.array([0, 1]), np.array([0]))


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=2, max_value=16),
       seed=st.integers(min_value=0, max_value=10**6))
def test_property_matches_dense(n, seed):
    s = close_values(2, n, seed=seed, dtype=np.float64)
    inv = dense_inverse(s)
    rng = np.random.default_rng(seed)
    i = rng.integers(0, n, 6)
    j = rng.integers(0, n, 6)
    np.testing.assert_allclose(inverse_elements(s, i, j), inv[:, i, j],
                               rtol=1e-8, atol=1e-10)
