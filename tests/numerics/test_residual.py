"""Accuracy metrics, overflow classification."""

import numpy as np
import pytest

from repro.numerics.generators import diagonally_dominant_fluid
from repro.numerics.residual import (AccuracyResult, evaluate_accuracy,
                                     forward_error, relative_residual)
from repro.solvers.thomas import thomas_batched


class TestEvaluateAccuracy:
    def test_clean_solution(self, dominant_small):
        x = thomas_batched(dominant_small)
        res = evaluate_accuracy("thomas", dominant_small, x)
        assert not res.overflowed
        assert res.median_residual < 1e-4
        assert "thomas" in res.summary()

    def test_partial_overflow(self, dominant_small):
        x = thomas_batched(dominant_small).astype(np.float64)
        x[0, 0] = np.inf
        res = evaluate_accuracy("broken", dominant_small, x)
        assert res.overflow_fraction == pytest.approx(1 / 8)
        assert res.overflowed
        assert np.isnan(res.residuals[0])
        assert np.isfinite(res.residuals[1:]).all()

    def test_total_overflow_summary(self, dominant_small):
        x = np.full(dominant_small.shape, np.nan)
        res = evaluate_accuracy("rd", dominant_small, x)
        assert res.summary() == "rd: overflow"
        assert np.isnan(res.median_residual)


class TestErrorMetrics:
    def test_forward_error_zero_for_exact(self):
        x = np.random.default_rng(0).uniform(-1, 1, (3, 8))
        np.testing.assert_allclose(forward_error(x, x), 0, atol=1e-15)

    def test_forward_error_relative(self):
        x_true = np.ones((1, 4))
        x = x_true * 1.01
        assert forward_error(x, x_true)[0] == pytest.approx(0.01)

    def test_relative_residual(self, dominant_small):
        x = thomas_batched(dominant_small)
        rel = relative_residual(dominant_small, x)
        assert (rel < 1e-5).all()
