"""Matrix generators: class properties the experiments depend on."""

import numpy as np
import pytest

from repro.numerics.generators import (MATRIX_CLASSES, close_values,
                                       diagonally_dominant_fluid,
                                       ill_conditioned, random_dominant,
                                       toeplitz_spd, with_known_solution)


class TestDominantFluid:
    def test_strictly_dominant(self):
        s = diagonally_dominant_fluid(8, 64, seed=0)
        assert s.is_diagonally_dominant(strict=True).all()

    def test_symmetric(self):
        from repro.numerics.stability import is_symmetric
        s = diagonally_dominant_fluid(4, 32, seed=1, dtype=np.float64)
        assert is_symmetric(s).all()

    def test_reproducible(self):
        a = diagonally_dominant_fluid(2, 16, seed=42)
        b = diagonally_dominant_fluid(2, 16, seed=42)
        np.testing.assert_array_equal(a.b, b.b)

    def test_dtype(self):
        s = diagonally_dominant_fluid(1, 8, seed=0, dtype=np.float64)
        assert s.dtype == np.float64

    def test_coupling_scales_offdiagonals(self):
        weak = diagonally_dominant_fluid(2, 16, seed=3, coupling=0.1)
        strong = diagonally_dominant_fluid(2, 16, seed=3, coupling=1.0)
        assert np.abs(weak.a).max() < np.abs(strong.a).max()


class TestCloseValues:
    def test_rows_are_close(self):
        s = close_values(4, 32, seed=0, spread=0.05)
        rows = np.stack([np.abs(s.a[:, 1:-1]), np.abs(s.b[:, 1:-1]),
                         np.abs(s.c[:, 1:-1])])
        ratio = rows.max(axis=0) / rows.min(axis=0)
        assert ratio.max() < 1.3

    def test_not_dominant(self):
        s = close_values(8, 64, seed=1)
        assert not s.is_diagonally_dominant().any()

    def test_rd_growth_bounded(self):
        from repro.numerics.stability import rd_overflow_risk
        s = close_values(4, 512, seed=2)
        assert not rd_overflow_risk(s).any()


class TestOtherClasses:
    def test_toeplitz_is_poisson_stencil(self):
        s = toeplitz_spd(1, 8)
        assert np.all(s.b == 2.0)
        assert np.all(s.a[:, 1:] == -1.0)

    def test_toeplitz_rejects_non_spd(self):
        with pytest.raises(ValueError):
            toeplitz_spd(1, 8, diag=1.0, off=-1.0)

    def test_random_dominant(self):
        s = random_dominant(8, 32, seed=3)
        assert s.is_diagonally_dominant(strict=True).all()

    def test_ill_conditioned_has_tiny_pivots(self):
        s = ill_conditioned(16, 64, seed=4, epsilon=1e-3)
        assert np.abs(s.b).min() <= 1e-3

    def test_registry_complete(self):
        assert set(MATRIX_CLASSES) == {
            "diagonally_dominant", "close_values", "toeplitz_spd",
            "random_dominant", "ill_conditioned"}
        for gen in MATRIX_CLASSES.values():
            s = gen(2, 8, seed=0)
            assert s.shape == (2, 8)


class TestKnownSolution:
    def test_solution_recovered(self):
        from repro.solvers.thomas import thomas_batched
        base = diagonally_dominant_fluid(4, 32, seed=5, dtype=np.float64)
        s, x_true = with_known_solution(base, seed=6)
        x = thomas_batched(s)
        np.testing.assert_allclose(x, x_true, rtol=1e-9, atol=1e-11)
