"""Condition estimation (Hager/Higham on tridiagonal solves)."""

import numpy as np
import pytest

from repro.numerics.condition import (condition_estimate,
                                      estimate_inverse_norm_1,
                                      float32_accuracy_forecast, norm_inf)
from repro.numerics.generators import (close_values,
                                       diagonally_dominant_fluid,
                                       ill_conditioned, toeplitz_spd)
from repro.solvers.systems import TridiagonalSystems


def dense_cond_1(systems):
    d = systems.astype(np.float64).to_dense()
    return np.array([np.linalg.cond(d[i], 1)
                     for i in range(systems.num_systems)])


class TestNormInf:
    def test_matches_dense(self):
        s = close_values(3, 16, seed=0, dtype=np.float64)
        dense = s.to_dense()
        expected = np.abs(dense).sum(axis=2).max(axis=1)
        np.testing.assert_allclose(norm_inf(s), expected, rtol=1e-14)


class TestInverseNormEstimate:
    def test_identity(self):
        n = 8
        s = TridiagonalSystems(np.zeros((2, n)), np.ones((2, n)),
                               np.zeros((2, n)), np.ones((2, n)))
        np.testing.assert_allclose(estimate_inverse_norm_1(s), 1.0,
                                   rtol=1e-12)

    @pytest.mark.parametrize("gen,seed", [
        (close_values, 1), (diagonally_dominant_fluid, 2),
        (toeplitz_spd, 3)])
    def test_close_to_dense_truth(self, gen, seed):
        s = gen(4, 24, seed=seed, dtype=np.float64)
        est = condition_estimate(s)
        true = dense_cond_1(s)
        # Hager's estimate is a lower bound, usually tight.
        assert np.all(est <= true * 1.01)
        assert np.all(est >= true * 0.3)


class TestForecast:
    def test_ill_conditioned_flagged(self):
        good = diagonally_dominant_fluid(4, 32, seed=4, dtype=np.float64)
        bad = ill_conditioned(4, 32, seed=5, dtype=np.float64)
        assert (float32_accuracy_forecast(bad).max()
                > 10 * float32_accuracy_forecast(good).max())

    def test_forecast_tracks_observed_float32_error(self):
        """The eps32*kappa forecast should upper-bound (within a small
        factor) the observed forward error of a stable float32 solve."""
        from repro.numerics.generators import with_known_solution
        from repro.numerics.residual import forward_error
        from repro.solvers.gauss import gep_batched
        base = close_values(8, 64, seed=6, dtype=np.float64)
        s, x_true = with_known_solution(base, seed=7)
        x32 = gep_batched(s.astype(np.float32))
        err = forward_error(x32, x_true)
        forecast = float32_accuracy_forecast(s)
        assert np.all(err <= 50 * forecast)
