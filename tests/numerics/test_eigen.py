"""Sturm-bisection eigenvalues (the paper's ref [31] algorithm)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.numerics.eigen import (eigvals_in_interval,
                                  eigvalsh_tridiagonal, gershgorin_bounds,
                                  spectral_condition_spd, sturm_count)


def random_symmetric(S, n, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.uniform(-2, 2, (S, n)), rng.uniform(-1, 1, (S, n - 1)))


def dense_eigs(d, e):
    out = []
    for i in range(d.shape[0]):
        T = np.diag(d[i]) + np.diag(e[i], 1) + np.diag(e[i], -1)
        out.append(np.linalg.eigvalsh(T))
    return np.array(out)


class TestSturmCount:
    def test_counts_match_dense(self):
        d, e = random_symmetric(3, 16, seed=1)
        ref = dense_eigs(d, e)
        shifts = np.linspace(-4, 4, 9)[None, :].repeat(3, axis=0)
        counts = sturm_count(d, e, shifts)
        expected = (ref[:, None, :] < shifts[:, :, None]).sum(axis=2)
        np.testing.assert_array_equal(counts, expected)

    def test_monotone_in_shift(self):
        d, e = random_symmetric(2, 24, seed=2)
        shifts = np.linspace(-5, 5, 21)[None, :].repeat(2, axis=0)
        counts = sturm_count(d, e, shifts)
        assert np.all(np.diff(counts, axis=1) >= 0)

    def test_extremes(self):
        d, e = random_symmetric(2, 8, seed=3)
        lo, hi = gershgorin_bounds(d, e)
        assert np.all(sturm_count(d, e, (lo - 1)[:, None]) == 0)
        assert np.all(sturm_count(d, e, (hi + 1)[:, None]) == 8)

    def test_bad_off_diagonal_length(self):
        with pytest.raises(ValueError, match="n-1"):
            sturm_count(np.zeros((1, 8)), np.zeros((1, 4)), [[0.0]])


class TestBisection:
    @pytest.mark.parametrize("n", [2, 8, 33])
    def test_matches_lapack(self, n):
        d, e = random_symmetric(3, n, seed=n)
        eigs = eigvalsh_tridiagonal(d, e)
        np.testing.assert_allclose(eigs, dense_eigs(d, e), atol=1e-9)

    def test_poisson_analytic(self):
        n = 32
        d = np.full((1, n), 2.0)
        e = np.full((1, n - 1), -1.0)
        eigs = eigvalsh_tridiagonal(d, e)[0]
        k = np.arange(1, n + 1)
        exact = 2.0 - 2.0 * np.cos(np.pi * k / (n + 1))
        np.testing.assert_allclose(np.sort(eigs), np.sort(exact),
                                   atol=1e-10)

    def test_ascending_order(self):
        d, e = random_symmetric(4, 20, seed=4)
        eigs = eigvalsh_tridiagonal(d, e)
        assert np.all(np.diff(eigs, axis=1) >= -1e-10)

    def test_multiple_eigenvalues(self):
        """Decoupled blocks create exact multiplicities; bisection must
        still count them correctly."""
        n = 8
        d = np.full((1, n), 3.0)
        e = np.zeros((1, n - 1))  # diagonal matrix: eigenvalue 3, x8
        eigs = eigvalsh_tridiagonal(d, e)
        np.testing.assert_allclose(eigs, 3.0, atol=1e-10)


class TestHelpers:
    def test_interval_selection(self):
        d, e = random_symmetric(2, 16, seed=5)
        ref = dense_eigs(d, e)
        got = eigvals_in_interval(d, e, 0.0, 2.0)
        for i in range(2):
            expected = ref[i][(ref[i] > 0.0) & (ref[i] <= 2.0)]
            np.testing.assert_allclose(np.sort(got[i]), np.sort(expected),
                                       atol=1e-8)

    def test_spd_condition(self):
        n = 16
        d = np.full((1, n), 2.0)
        e = np.full((1, n - 1), -1.0)
        kappa = spectral_condition_spd(d, e)[0]
        lam = 2.0 - 2.0 * np.cos(np.pi * np.arange(1, n + 1) / (n + 1))
        assert kappa == pytest.approx(lam.max() / lam.min(), rel=1e-8)

    def test_indefinite_rejected(self):
        d = np.array([[1.0, -1.0, 1.0]])
        e = np.zeros((1, 2))
        with pytest.raises(ValueError, match="positive definite"):
            spectral_condition_spd(d, e)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=2, max_value=24),
       seed=st.integers(min_value=0, max_value=10**6))
def test_property_bisection_matches_lapack(n, seed):
    d, e = random_symmetric(2, n, seed=seed)
    eigs = eigvalsh_tridiagonal(d, e)
    np.testing.assert_allclose(eigs, dense_eigs(d, e), atol=1e-8)
