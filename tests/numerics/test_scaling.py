"""Scaled recursive doubling: the §5.4 overflow remedy."""

import warnings

import numpy as np
import pytest

from repro.numerics.generators import close_values, diagonally_dominant_fluid
from repro.numerics.scaling import (scaled_recursive_doubling,
                                    scan_rescale_count)
from repro.solvers.rd import recursive_doubling
from repro.solvers.thomas import thomas_batched


class TestFiniteGuarantee:
    @pytest.mark.parametrize("n", [64, 128, 512])
    def test_always_finite_on_dominant(self, n):
        """Plain float32 RD overflows here; scaled RD must not."""
        s = diagonally_dominant_fluid(4, n, seed=n)
        x = scaled_recursive_doubling(s)
        assert np.isfinite(x).all()

    def test_plain_rd_overflows_same_input(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            s = diagonally_dominant_fluid(4, 128, seed=128)
            assert not np.isfinite(recursive_doubling(s)).all()


class TestAccuracyWherePlainRdWorks:
    def test_close_values_matches_thomas(self):
        s = close_values(4, 128, seed=0, dtype=np.float64)
        x = scaled_recursive_doubling(s)
        ref = thomas_batched(s)
        np.testing.assert_allclose(x, ref, rtol=1e-4, atol=1e-5)

    def test_small_dominant_accurate(self):
        s = diagonally_dominant_fluid(4, 16, seed=1, dtype=np.float64)
        x = scaled_recursive_doubling(s)
        assert s.residual(x).max() < 1e-5


class TestControlOverhead:
    def test_rescales_grow_with_dominant_size(self):
        c = [scan_rescale_count(diagonally_dominant_fluid(2, n, seed=2))
             for n in (32, 128, 512)]
        assert c[0] < c[1] < c[2]

    def test_no_rescales_on_close_values(self):
        s = close_values(2, 128, seed=3)
        assert scan_rescale_count(s) == 0
