"""Stability predicates: the §5.4 decision logic."""

import numpy as np
import pytest

from repro.numerics.generators import (close_values,
                                       diagonally_dominant_fluid)
from repro.numerics.stability import (classify, cr_stable_without_pivoting,
                                      is_symmetric, rd_applicable,
                                      rd_growth_log2, rd_overflow_risk,
                                      recommend_solver)


class TestPredicates:
    def test_cr_stable_on_dominant(self, dominant_small):
        assert cr_stable_without_pivoting(dominant_small).all()

    def test_cr_unsafe_on_close_values(self, close_batch):
        assert not cr_stable_without_pivoting(close_batch).any()

    def test_symmetry_detection(self):
        s = diagonally_dominant_fluid(2, 16, seed=0, dtype=np.float64)
        assert is_symmetric(s).all()
        s2 = s.copy()
        s2.a[:, 5] *= 2.0
        assert not is_symmetric(s2).any()


class TestRdOverflowBoundary:
    def test_paper_boundary_around_64(self):
        """§5.4: "for the systems of size larger than 64, RD favors
        matrices with close values in rows ... otherwise it might
        overflow"."""
        small = diagonally_dominant_fluid(8, 16, seed=1)
        large = diagonally_dominant_fluid(8, 128, seed=1)
        assert not rd_overflow_risk(small).any()
        assert rd_overflow_risk(large).all()

    def test_close_values_never_at_risk(self):
        s = close_values(8, 512, seed=2)
        assert not rd_overflow_risk(s).any()

    def test_growth_monotone_in_n(self):
        g = [rd_growth_log2(diagonally_dominant_fluid(2, n, seed=3)).max()
             for n in (16, 64, 256)]
        assert g[0] < g[1] < g[2]

    def test_risk_predicts_actual_overflow(self):
        """The predicate agrees with what float32 RD actually does."""
        import warnings
        from repro.solvers.rd import recursive_doubling
        for n, seed in ((16, 4), (256, 5)):
            s = diagonally_dominant_fluid(4, n, seed=seed)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                x = recursive_doubling(s)
            predicted = rd_overflow_risk(s).any()
            actual = not np.isfinite(x).all()
            assert predicted == actual, n

    def test_rd_applicable_rejects_zero_c(self, close_batch):
        s = close_batch.copy()
        s.c[0, 5] = 0.0
        ok = rd_applicable(s)
        assert not ok[0]
        assert ok[1:].all()


class TestPathological:
    """The inputs the predicates exist to catch (§5.4 failure modes)."""

    def test_zero_diagonal_not_cr_stable(self, dominant_small):
        s = dominant_small.copy()
        s.b[0, 3] = 0.0        # off-diagonals stay nonzero: not dominant
        ok = cr_stable_without_pivoting(s)
        assert not ok[0]
        assert ok[1:].all()

    def test_exactly_singular_system_not_recommended_fast(self,
                                                          dominant_small):
        s = dominant_small.copy()
        s.b[0, 3] = 0.0
        assert recommend_solver(s) == "gep"
        assert not classify(s)["diagonally_dominant"]

    def test_all_zero_row_passes_weak_dominance(self):
        """A fully zero row satisfies *non-strict* dominance (0 >= 0):
        the predicate alone does not rule it out, which is why the
        resilience pipeline additionally requires nonzero diagonals."""
        s = diagonally_dominant_fluid(1, 16, seed=6, dtype=np.float64)
        s.a[0, 4] = s.b[0, 4] = s.c[0, 4] = 0.0
        assert cr_stable_without_pivoting(s).all()
        assert np.any(s.b == 0)     # the pipeline's extra check fires

    def test_rd_overflow_boundary_straddles_64(self):
        """Float32 RD: safe at n=32, fully at risk by n=128, and the
        boundary itself lands inside an n=64 dominant batch -- the
        paper's "larger than 64 ... might overflow" line."""
        at32 = rd_overflow_risk(diagonally_dominant_fluid(8, 32, seed=1))
        at64 = rd_overflow_risk(diagonally_dominant_fluid(8, 64, seed=1))
        at128 = rd_overflow_risk(diagonally_dominant_fluid(8, 128, seed=1))
        assert not at32.any()
        assert at64.any() and not at64.all()
        assert at128.all()

    def test_zero_super_diagonal_infinite_growth_estimate(self):
        s = diagonally_dominant_fluid(2, 16, seed=7, dtype=np.float64)
        s.c[0, 5] = 0.0
        g = rd_growth_log2(s)
        assert np.isinf(g[0])
        assert np.isfinite(g[1])
        assert rd_overflow_risk(s)[0]


class TestRecommendation:
    def test_non_dominant_gets_gep(self, close_batch):
        assert recommend_solver(close_batch) == "gep"

    def test_dominant_gets_hybrid(self, dominant_small):
        assert recommend_solver(dominant_small) == "cr_pcr"

    def test_classify_report(self, dominant_small):
        rep = classify(dominant_small)
        assert rep["diagonally_dominant"]
        assert rep["recommended"] == "cr_pcr"
        assert set(rep) == {"diagonally_dominant", "symmetric",
                            "rd_overflow_risk", "rd_applicable",
                            "recommended"}
