"""Checkpoint format: bitwise round-trip, barrier semantics, guards."""

import json

import numpy as np
import pytest

from repro.numerics.generators import diagonally_dominant_fluid
from repro.serve import (CheckpointMismatchError, CheckpointWriter,
                         ChunkRecord, digest_array, load_checkpoint)

from .conftest import make_job


@pytest.fixture
def job():
    return make_job(diagonally_dominant_fluid(8, 32, seed=7), job_id="ckpt")


def write_chunks(path, job, chunk_ids, *, barrier_after=None):
    """Write records for ``chunk_ids`` with one barrier at the end (or
    at ``barrier_after``)."""
    rng = np.random.default_rng(0)
    xs = {}
    with CheckpointWriter(str(path), job) as w:
        for cid in chunk_ids:
            x = rng.standard_normal((job.chunk_size, job.systems.n))
            xs[cid] = x
            record = ChunkRecord(chunk_id=cid, status="ok", device="gpu0",
                                 start_ms=float(cid), end_ms=float(cid) + 1,
                                 modeled_ms=1.0, digest=digest_array(x))
            w.add_chunk(record, x)
            if cid == barrier_after:
                w.barrier(cid, now_ms=float(cid) + 1,
                          device_clocks={"gpu0": float(cid) + 1},
                          cpu_clock_ms=0.0, breakers={})
        if barrier_after is None and chunk_ids:
            last = chunk_ids[-1]
            w.barrier(last, now_ms=float(last) + 1,
                      device_clocks={"gpu0": float(last) + 1},
                      cpu_clock_ms=0.25, breakers={})
    return xs


def test_bitwise_round_trip(tmp_path, job):
    path = tmp_path / "job.jsonl"
    xs = write_chunks(path, job, [0, 1])
    state = load_checkpoint(str(path), job)
    assert sorted(state.chunks) == [0, 1]
    for cid, x in xs.items():
        record, restored = state.chunks[cid]
        assert restored.dtype == x.dtype
        assert np.array_equal(restored, x)       # bitwise, not approx
        assert record.digest == digest_array(restored)
    assert state.after_chunk == 1
    assert state.device_clocks == {"gpu0": 2.0}
    assert state.cpu_clock_ms == 0.25


def test_unbarriered_chunks_are_dropped_on_close(tmp_path, job):
    """Kill semantics: only barrier() persists buffered chunk lines."""
    path = tmp_path / "job.jsonl"
    write_chunks(path, job, [0, 1, 2], barrier_after=1)
    state = load_checkpoint(str(path), job)
    assert sorted(state.chunks) == [0, 1]        # chunk 2 never flushed
    assert state.after_chunk == 1


def test_chunks_after_last_state_line_are_ignored(tmp_path, job):
    path = tmp_path / "job.jsonl"
    xs = write_chunks(path, job, [0])
    # Simulate a chunk line flushed by a later partial block whose
    # state line never landed.
    x = xs[0]
    stray = {"type": "chunk", "chunk_id": 5, "status": "ok",
             "device": "gpu0", "attempts": [], "start_ms": 0.0,
             "end_ms": 1.0, "modeled_ms": 1.0,
             "digest": digest_array(x), "dtype": str(x.dtype),
             "shape": list(x.shape), "x_hex": x.tobytes().hex()}
    with open(path, "a") as fh:
        fh.write(json.dumps(stray) + "\n")
    state = load_checkpoint(str(path), job)
    assert sorted(state.chunks) == [0]


def test_torn_final_line_is_tolerated(tmp_path, job):
    path = tmp_path / "job.jsonl"
    write_chunks(path, job, [0])
    with open(path, "a") as fh:
        fh.write('{"type": "chunk", "chunk_id": 9, "x_hex": "dead')  # torn
    state = load_checkpoint(str(path), job)
    assert sorted(state.chunks) == [0]
    assert state.after_chunk == 0


def test_input_digest_guard(tmp_path, job):
    path = tmp_path / "job.jsonl"
    write_chunks(path, job, [0])
    other = make_job(diagonally_dominant_fluid(8, 32, seed=8),
                     job_id="ckpt")
    with pytest.raises(CheckpointMismatchError):
        load_checkpoint(str(path), other)


def test_spec_change_also_trips_the_guard(tmp_path, job):
    path = tmp_path / "job.jsonl"
    write_chunks(path, job, [0])
    respec = make_job(job.systems, job_id="ckpt", chunk_size=2)
    with pytest.raises(CheckpointMismatchError):
        load_checkpoint(str(path), respec)


def test_non_checkpoint_file_rejected(tmp_path, job):
    path = tmp_path / "junk.jsonl"
    path.write_text('{"type": "chunk"}\n')
    with pytest.raises(CheckpointMismatchError):
        load_checkpoint(str(path), job)


def test_header_only_file_resumes_empty(tmp_path, job):
    path = tmp_path / "job.jsonl"
    CheckpointWriter(str(path), job).close()
    state = load_checkpoint(str(path), job)
    assert state.chunks == {}
    assert state.after_chunk == -1


def test_torn_state_line_falls_back_to_previous_barrier(tmp_path, job):
    """A kill can tear the *state* line itself; resume must land on the
    last complete barrier, not the torn one."""
    path = tmp_path / "job.jsonl"
    write_chunks(path, job, [0])
    with open(path, "a") as fh:
        fh.write('{"type": "chunk", "chunk_id": 1, "status": "ok"}\n'
                 '{"type": "state", "after_chunk": 1, "now_ms": 2.0')  # torn
    state = load_checkpoint(str(path), job)
    assert state.after_chunk == 0
    assert sorted(state.chunks) == [0]


def test_torn_line_truncates_everything_after_it(tmp_path, job):
    """Parsing stops at the first undecodable line: later lines cannot
    be trusted to belong to a consistent block, even if they parse."""
    path = tmp_path / "job.jsonl"
    xs = write_chunks(path, job, [0])
    x = xs[0]
    with open(path, "a") as fh:
        fh.write('{"type": "chunk", "chunk_id": 3, "x_hex": "de')  # torn
        fh.write("\n")
        fh.write(json.dumps({"type": "state", "after_chunk": 3,
                             "now_ms": 9.0, "device_clocks": {},
                             "cpu_clock_ms": 0.0, "breakers": {}}) + "\n")
    state = load_checkpoint(str(path), job)
    assert state.after_chunk == 0          # the post-tear barrier is ignored
    assert sorted(state.chunks) == [0]


def test_torn_header_is_rejected(tmp_path, job):
    path = tmp_path / "job.jsonl"
    path.write_text('{"type": "header", "version": 1, "job_id": "ck')
    with pytest.raises(CheckpointMismatchError, match="missing header"):
        load_checkpoint(str(path), job)


def test_empty_file_is_rejected(tmp_path, job):
    path = tmp_path / "job.jsonl"
    path.write_text("")
    with pytest.raises(CheckpointMismatchError):
        load_checkpoint(str(path), job)


def test_blank_lines_are_tolerated(tmp_path, job):
    path = tmp_path / "job.jsonl"
    write_chunks(path, job, [0])
    text = path.read_text().replace("\n", "\n\n")
    path.write_text("\n" + text)
    state = load_checkpoint(str(path), job)
    assert sorted(state.chunks) == [0]
    assert state.after_chunk == 0


def test_version_mismatch_is_rejected(tmp_path, job):
    path = tmp_path / "job.jsonl"
    write_chunks(path, job, [0])
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    header["version"] = 99
    path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
    with pytest.raises(CheckpointMismatchError, match="version"):
        load_checkpoint(str(path), job)


def test_resume_append_supersedes_earlier_barrier(tmp_path, job):
    """Reopening with resume=True appends (no second header); the last
    barrier wins and earlier chunks stay restorable."""
    path = tmp_path / "job.jsonl"
    xs = write_chunks(path, job, [0])
    rng = np.random.default_rng(1)
    x1 = rng.standard_normal((job.chunk_size, job.systems.n))
    with CheckpointWriter(str(path), job, resume=True) as w:
        w.add_chunk(ChunkRecord(chunk_id=1, status="ok", device="gpu0",
                                start_ms=1.0, end_ms=2.0, modeled_ms=1.0,
                                digest=digest_array(x1)), x1)
        w.barrier(1, now_ms=2.0, device_clocks={"gpu0": 2.0},
                  cpu_clock_ms=0.5, breakers={})
    headers = [line for line in path.read_text().splitlines()
               if '"type": "header"' in line]
    assert len(headers) == 1
    state = load_checkpoint(str(path), job)
    assert state.after_chunk == 1
    assert sorted(state.chunks) == [0, 1]
    assert np.array_equal(state.chunks[0][1], xs[0])
    assert np.array_equal(state.chunks[1][1], x1)
    assert state.cpu_clock_ms == 0.5
