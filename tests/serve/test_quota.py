"""Units for the tenant quota / fair-queueing primitives."""

from __future__ import annotations

import pytest

from repro.serve import TenantSpec, TokenBucket, WeightedFairQueue

pytestmark = pytest.mark.serve


class TestTenantSpec:
    def test_defaults_are_unlimited(self):
        spec = TenantSpec("acme")
        assert spec.unlimited()
        assert spec.weight == 1.0

    def test_invalid_specs_raise(self):
        with pytest.raises(ValueError):
            TenantSpec("")
        with pytest.raises(ValueError):
            TenantSpec("t", weight=0.0)
        with pytest.raises(ValueError):
            TenantSpec("t", quota_rate=-1.0)
        with pytest.raises(ValueError):
            TenantSpec("t", quota_burst=-0.5)


class TestTokenBucket:
    def test_unlimited_always_admits(self):
        b = TokenBucket(None, 0.0)
        assert b.try_take(1e9, at_ms=0.0)
        assert b.peek(0.0) == float("inf")

    def test_zero_quota_always_denies(self):
        b = TokenBucket(0.0, 0.0)
        assert not b.try_take(1e-9, at_ms=0.0)
        assert not b.try_take(1e-9, at_ms=1e6)   # refill never helps

    def test_burst_then_refill(self):
        b = TokenBucket(1.0, 2.0, start_ms=0.0)   # 1 token/ms, burst 2
        assert b.try_take(2.0, at_ms=0.0)          # burst drained
        assert not b.try_take(0.5, at_ms=0.1)      # only 0.1 refilled
        assert b.try_take(0.5, at_ms=0.6)          # 0.6 refilled by now

    def test_deny_is_atomic(self):
        b = TokenBucket(0.0, 1.0)
        assert not b.try_take(2.0, at_ms=0.0)
        assert b.tokens == pytest.approx(1.0)      # nothing consumed
        assert b.try_take(1.0, at_ms=0.0)

    def test_refill_caps_at_burst(self):
        b = TokenBucket(10.0, 1.5, start_ms=0.0)
        assert b.peek(100.0) == pytest.approx(1.5)

    def test_refund_caps_at_burst(self):
        b = TokenBucket(1.0, 1.0, start_ms=0.0)
        assert b.try_take(1.0, at_ms=0.0)
        b.refund(5.0)
        assert b.tokens == pytest.approx(1.0)

    def test_clock_never_rewinds(self):
        b = TokenBucket(1.0, 10.0, start_ms=0.0)
        assert b.try_take(10.0, at_ms=5.0)
        # An earlier timestamp must not mint negative elapsed time.
        assert not b.try_take(6.0, at_ms=1.0)
        assert b.last_ms == pytest.approx(5.0)


class TestWeightedFairQueue:
    def test_fifo_for_equal_tenants(self):
        q = WeightedFairQueue()
        for i in range(4):
            q.push(i, tenant="t", weight=1.0, cost=1.0)
        assert [q.pop() for _ in range(4)] == [0, 1, 2, 3]
        assert q.pop() is None

    def test_weighted_interleave(self):
        # Tenant a (weight 2) should be served twice as often as b.
        q = WeightedFairQueue()
        for i in range(4):
            q.push(("a", i), tenant="a", weight=2.0, cost=1.0)
            q.push(("b", i), tenant="b", weight=1.0, cost=1.0)
        first6 = [q.pop()[0] for _ in range(6)]
        assert first6.count("a") == 4
        assert first6.count("b") == 2

    def test_backlogged_tenant_cannot_starve_late_arrival(self):
        q = WeightedFairQueue()
        for i in range(16):
            q.push(("hog", i), tenant="hog", weight=1.0, cost=1.0)
        q.pop()                                     # advance virtual time
        q.push(("late", 0), tenant="late", weight=1.0, cost=1.0)
        # The late tenant's finish tag starts at the *current* virtual
        # time, so it is served long before the hog's backlog drains.
        drained = [q.pop() for _ in range(3)]
        assert ("late", 0) in drained

    def test_pop_tail_evicts_latest_finish(self):
        q = WeightedFairQueue()
        q.push("early", tenant="t", weight=1.0, cost=1.0)
        q.push("late", tenant="t", weight=1.0, cost=1.0)
        assert q.pop_tail() == "late"
        assert q.pop() == "early"
        assert q.pop_tail() is None

    def test_eviction_then_pop_skips_dead_entries(self):
        q = WeightedFairQueue()
        for i in range(5):
            q.push(i, tenant="t", weight=1.0, cost=1.0)
        assert q.pop_tail() == 4
        assert q.pop_tail() == 3
        assert [q.pop() for _ in range(3)] == [0, 1, 2]
        assert len(q) == 0

    def test_deterministic_tiebreak_on_equal_tags(self):
        def drain():
            q = WeightedFairQueue()
            for t in ("x", "y", "z"):
                q.push(t, tenant=t, weight=1.0, cost=1.0)
            return [q.pop() for _ in range(3)]
        assert drain() == drain() == ["x", "y", "z"]

    def test_items_in_finish_order(self):
        q = WeightedFairQueue()
        q.push("b1", tenant="b", weight=1.0, cost=3.0)
        q.push("a1", tenant="a", weight=1.0, cost=1.0)
        assert list(q.items()) == ["a1", "b1"]
