"""Overload acceptance suite (ISSUE 8).

At sustained ~2x admission capacity the front end must:

* keep interactive p99 within the class objective,
* shed exclusively by class -- batch before standard, never
  interactive,
* be bitwise reproducible: two same-seed runs produce identical shed
  sets, identical JobReports and identical telemetry JSONL,
* never re-admit a shed request across kill/resume.

Run with ``pytest -m overload`` (CI runs it twice for determinism).
"""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.gpusim.pool import make_pool
from repro.serve import FrontendConfig, ServeFrontend, loadgen

from .conftest import make_sched

pytestmark = [pytest.mark.serve, pytest.mark.overload]

SEED = 42
HORIZON_MS = 3.0
LOAD = 2.0


def overload_requests(seed=SEED, horizon_ms=HORIZON_MS, load=LOAD):
    return loadgen.generate(
        loadgen.overload_profiles(load, scenario="mixed", tenants=3),
        horizon_ms=horizon_ms, seed=seed)


def run_overload(seed=SEED, *, checkpoint_dir=None, resume=False,
                 stop_after_jobs=None, horizon_ms=HORIZON_MS):
    """One full overload run under the deterministic collector."""
    col = telemetry.deterministic_collector(seed)
    with telemetry.collect(col):
        sched = make_sched(make_pool(2, seed=5), seed=seed,
                           queue_capacity=2,
                           checkpoint_dir=checkpoint_dir)
        fe = ServeFrontend(sched, config=FrontendConfig(), resume=resume)
        rep = fe.run(overload_requests(seed, horizon_ms),
                     stop_after_jobs=stop_after_jobs)
        fe.close()
    return rep, col


class TestOverloadAcceptance:
    @pytest.fixture(scope="class")
    def run(self):
        return run_overload()

    def test_sustained_overload_actually_sheds(self, run):
        rep, _ = run
        assert len(rep.outcomes) > 100
        assert len(rep.shed) > 10
        assert rep.completed, "service must keep doing useful work"

    def test_shedding_is_strictly_by_class(self, run):
        rep, _ = run
        by_class = rep.shed_by_class()
        assert set(by_class) <= {"batch", "standard"}
        assert by_class.get("batch", 0) > 0
        assert "interactive" not in by_class

    def test_interactive_p99_within_objective(self, run):
        rep, _ = run
        lat = rep.latency_report()["interactive"]
        assert lat["count"] > 0
        assert lat["p99"] is not None
        assert lat["p99"] <= lat["objective_p99_ms"]

    def test_goodput_dominates_under_overload(self, run):
        rep, _ = run
        assert len(rep.completed) > len(rep.shed)
        assert all(o.report.ok for o in rep.completed)

    def test_shed_outcomes_fully_attributed(self, run):
        rep, _ = run
        for o in rep.shed:
            assert o.reason in ("overload", "quota",
                                "deadline_unmeetable", "deadline",
                                "capacity")
            assert o.stage in ("quota", "admission", "capacity",
                               "scheduler", "resume")
            assert o.tenant.startswith("tenant")


class TestOverloadDeterminism:
    def test_same_seed_runs_bitwise_identical(self):
        rep_a, col_a = run_overload()
        rep_b, col_b = run_overload()
        # Identical shed sets...
        assert rep_a.shed_set() == rep_b.shed_set()
        # ...identical JobReports (digests included)...
        assert [o.report.to_dict() for o in rep_a.completed] == \
            [o.report.to_dict() for o in rep_b.completed]
        # ...and bitwise-identical telemetry.
        assert telemetry.to_jsonl(col_a) == telemetry.to_jsonl(col_b)
        assert telemetry.prometheus_text(col_a) == \
            telemetry.prometheus_text(col_b)

    def test_different_seeds_differ(self):
        rep_a, _ = run_overload(seed=42)
        rep_b, _ = run_overload(seed=43)
        assert rep_a.shed_set() != rep_b.shed_set()


class TestOverloadResume:
    def test_shed_requests_never_readmitted(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        partial, _ = run_overload(checkpoint_dir=ckpt,
                                  stop_after_jobs=60)
        shed_before = {rid for rid, _, _ in partial.shed_set()}
        assert shed_before, "partial run must have shed something"

        resumed, _ = run_overload(checkpoint_dir=ckpt, resume=True)
        # Every request shed before the kill stays shed -- replayed
        # from the ledger, attributed to the resume stage.
        replayed = {o.request_id: o for o in resumed.shed}
        for rid in shed_before:
            assert rid in replayed
            assert replayed[rid].stage == "resume"
        completed_ids = {o.request_id for o in resumed.completed}
        assert not (shed_before & completed_ids)

    def test_resume_completions_match_straight_run(self, tmp_path):
        straight, _ = run_overload()
        ckpt = str(tmp_path / "ckpt")
        run_overload(checkpoint_dir=ckpt, stop_after_jobs=60)
        resumed, _ = run_overload(checkpoint_dir=ckpt, resume=True)
        digest = {o.request_id: o.report.solution_digest()
                  for o in straight.completed}
        for o in resumed.completed:
            if o.request_id in digest:
                assert o.report.solution_digest() == digest[o.request_id]
