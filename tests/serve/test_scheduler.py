"""Scheduler behaviour on healthy and faulty pools (non-chaos paths:
sharding, placement, correctness, degradation, deadlines)."""

import numpy as np
import pytest

from repro.gpusim.pool import make_pool
from repro.numerics.generators import diagonally_dominant_fluid
from repro.resilience.pipeline import _relative_residuals
from repro.serve import OPEN

from .conftest import make_job, make_sched


def residual_ok(systems, x, tol=1e-4):
    return bool(np.all(_relative_residuals(systems, x) <= tol))


class TestHealthyPool:
    def test_solves_and_shards(self, batch, healthy_pool):
        sched = make_sched(healthy_pool)
        report = sched.run_job(make_job(batch))
        assert report.ok and report.outcome == "ok"
        assert report.num_chunks == 6
        assert all(c.status == "ok" for c in report.chunks)
        assert report.total_retries == 0
        assert residual_ok(batch, report.x)

    def test_work_spreads_across_the_pool(self, batch, healthy_pool):
        sched = make_sched(healthy_pool)
        report = sched.run_job(make_job(batch))
        used = report.devices_used()
        assert set(used) == {"gpu0", "gpu1", "gpu2"}
        assert used == {"gpu0": 2, "gpu1": 2, "gpu2": 2}

    def test_uneven_tail_chunk(self, healthy_pool):
        batch = diagonally_dominant_fluid(10, 32, seed=2)
        sched = make_sched(healthy_pool)
        report = sched.run_job(make_job(batch, chunk_size=4))
        assert report.num_chunks == 3
        assert report.ok
        assert residual_ok(batch, report.x)

    def test_matches_direct_solve(self, batch, healthy_pool):
        from repro.kernels.api import run_kernel
        sched = make_sched(healthy_pool)
        report = sched.run_job(make_job(batch, method="pcr"))
        direct, _ = run_kernel("pcr", batch)
        assert np.array_equal(report.x,
                              np.asarray(direct, dtype=np.float64))

    def test_queue_drain_fifo(self, healthy_pool):
        sched = make_sched(healthy_pool)
        for name in ("a", "b"):
            sched.submit(make_job(
                diagonally_dominant_fluid(8, 32, seed=4), job_id=name))
        reports = sched.run()
        assert [r.job_id for r in reports] == ["a", "b"]
        assert all(r.ok for r in reports)


class TestFaultyPool:
    def test_reroutes_off_the_hot_device(self, batch, hot_pool):
        sched = make_sched(hot_pool, failure_threshold=2)
        report = sched.run_job(make_job(batch))
        assert report.ok
        used = report.devices_used()
        assert used.get("gpu1", 0) == 0       # every launch there dies
        assert used.get("gpu0", 0) + used.get("gpu2", 0) == 6
        assert report.total_retries >= 2      # the failed gpu1 attempts
        assert residual_ok(batch, report.x)

    def test_hot_device_breaker_opens(self, batch, hot_pool):
        sched = make_sched(hot_pool, failure_threshold=2,
                           cooldown_ms=1e9)
        report = sched.run_job(make_job(batch))
        assert report.ok
        assert sched.breakers["gpu1"].state == OPEN
        reasons = [t.reason for t in sched.breakers["gpu1"].transitions]
        assert reasons == ["trip"]

    def test_degrades_when_every_device_is_hot(self, batch):
        pool = make_pool(2, seed=5, hot=0,
                         hot_rates={"launch_fatal_rate": 1.0})
        for dev in pool:
            dev.fault_rates = {"launch_fatal_rate": 1.0}
        sched = make_sched(pool, failure_threshold=1, cooldown_ms=1e9)
        report = sched.run_job(make_job(batch))
        assert report.outcome == "ok"          # degraded, not failed
        assert all(c.status == "degraded" for c in report.chunks)
        assert report.devices_used() == {"cpu": 6}
        assert residual_ok(batch, report.x)

    def test_chunk_timeout_counts_as_device_failure(self, batch,
                                                    healthy_pool):
        sched = make_sched(healthy_pool, chunk_timeout_ms=1e-9,
                           failure_threshold=1, cooldown_ms=1e9)
        report = sched.run_job(make_job(batch))
        # Every GPU attempt "hangs"; all breakers open; CPU finishes.
        assert all(b.state == OPEN for b in sched.breakers.values())
        assert all(c.status == "degraded" for c in report.chunks)
        assert all(a.outcome == "timeout"
                   for c in report.chunks for a in c.attempts)
        assert residual_ok(batch, report.x)


class TestDeadlines:
    def test_generous_deadline_met(self, batch, healthy_pool):
        sched = make_sched(healthy_pool)
        report = sched.run_job(make_job(batch, deadline_ms=1e6))
        assert report.ok and report.deadline_met

    def test_blown_deadline_stops_the_job(self, batch, healthy_pool):
        sched = make_sched(healthy_pool)
        report = sched.run_job(make_job(batch, deadline_ms=1e-6))
        assert report.outcome == "deadline"
        assert not report.deadline_met and not report.completed
        assert not report.ok
        assert report.num_chunks < 6          # stopped early

    def test_makespan_is_modeled_time(self, batch, healthy_pool):
        sched = make_sched(healthy_pool)
        report = sched.run_job(make_job(batch))
        assert report.makespan_ms > 0
        assert report.makespan_ms == pytest.approx(
            max(c.end_ms for c in report.chunks))


class TestEstimator:
    def test_estimate_positive_and_scales(self, batch, healthy_pool):
        sched = make_sched(healthy_pool)
        small = sched.estimate_job_ms(make_job(batch))
        big = sched.estimate_job_ms(make_job(
            diagonally_dominant_fluid(96, 64, seed=11)))
        assert 0 < small < big

    def test_wired_into_admission(self, batch, healthy_pool):
        from repro.serve import DeadlineUnmeetableError
        sched = make_sched(healthy_pool)
        with pytest.raises(DeadlineUnmeetableError):
            sched.submit(make_job(batch, deadline_ms=1e-9))
