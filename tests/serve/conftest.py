"""Shared fixtures for the serving-layer suite."""

from __future__ import annotations

import pytest

from repro.gpusim.pool import make_pool
from repro.numerics.generators import diagonally_dominant_fluid
from repro.serve import BatchScheduler, SolveJob


@pytest.fixture
def batch():
    """24 dominant systems of 64 unknowns -- 6 chunks at chunk_size=4."""
    return diagonally_dominant_fluid(24, 64, seed=11)


@pytest.fixture
def healthy_pool():
    return make_pool(3, seed=5)


@pytest.fixture
def hot_pool():
    """gpu1 fails every launch fatally; gpu0/gpu2 healthy."""
    return make_pool(3, seed=5, hot=1,
                     hot_rates={"launch_fatal_rate": 1.0})


def make_job(systems, **kw) -> SolveJob:
    kw.setdefault("chunk_size", 4)
    return SolveJob(kw.pop("job_id", "job"), systems, **kw)


def make_sched(pool, **kw) -> BatchScheduler:
    kw.setdefault("checkpoint_every", 2)
    return BatchScheduler(pool, **kw)
