"""Serving-layer chaos acceptance suite.

The three contracts ISSUE.md pins down, each under seeded fault
injection:

1. a breaker tripped mid-job still lets the job complete within its
   deadline (rerouting to healthy devices, CPU degradation as the
   last resort);
2. a run killed mid-job and resumed from its checkpoint produces a
   solution bitwise identical to the uninterrupted run;
3. two identical seeded runs produce identical reports and metric
   counters.

Everything here is modeled time over derived seeds, so this suite is
run twice in CI (and by ``make serve-chaos``) as a determinism proof.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.gpusim.pool import make_pool
from repro.numerics.generators import diagonally_dominant_fluid
from repro.resilience.pipeline import _relative_residuals
from repro.serve import CLOSED, HALF_OPEN, OPEN

from .conftest import make_job, make_sched

pytestmark = [pytest.mark.serve, pytest.mark.chaos]


def hot_pool():
    return make_pool(3, seed=5, hot=1,
                     hot_rates={"launch_fatal_rate": 1.0})


def batch():
    return diagonally_dominant_fluid(24, 64, seed=11)


class TestBreakerTripMidJob:
    """Acceptance 1: trip a breaker mid-job, still meet the deadline."""

    def run_once(self):
        sched = make_sched(hot_pool(), failure_threshold=2,
                           cooldown_ms=1e9)
        report = sched.run_job(make_job(batch(), deadline_ms=500.0))
        return sched, report

    def test_breaker_trips_and_job_completes_in_deadline(self):
        sched, report = self.run_once()
        assert sched.breakers["gpu1"].state == OPEN       # tripped...
        assert report.completed and report.deadline_met   # ...job fine
        assert report.outcome == "ok"
        assert report.makespan_ms <= 500.0

    def test_rerouted_chunks_land_on_healthy_devices(self):
        _, report = self.run_once()
        used = report.devices_used()
        assert used.get("gpu1", 0) == 0
        assert sum(used.values()) == report.num_chunks == 6
        assert report.total_retries >= 2   # gpu1's failed attempts
        rel = _relative_residuals(batch(), report.x)
        assert bool(np.all(rel <= 1e-4))

    def test_half_open_recovery_after_cooldown(self):
        """With a finite cooldown the tripped device is probed again
        and, now healthy (failures were injected per-attempt), the
        breaker closes: the full closed->open->half_open->closed cycle
        under scheduler control."""
        pool = make_pool(3, seed=5, hot=1,
                         hot_rates={"launch_fatal_rate": 1.0})
        # threshold 1: the breaker trips on gpu1's first failed attempt,
        # however the seeded backoff jitter orders the device clocks.
        sched = make_sched(pool, failure_threshold=1, cooldown_ms=0.02)
        sched.run_job(make_job(batch(), job_id="warm"))
        b = sched.breakers["gpu1"]
        assert b.state == OPEN
        # Heal the device, then keep feeding jobs through the same
        # scheduler: once the modeled clock clears the cooldown, a
        # probe flows and the breaker closes.
        pool.by_name("gpu1").fault_rates = {}
        report = None
        for i in range(5):
            report = sched.run_job(make_job(batch(), job_id=f"after{i}"))
            assert report.ok
            if b.state == CLOSED:
                break
        assert b.state == CLOSED
        trans = [(t.to, t.reason) for t in b.transitions]
        assert trans[0] == (OPEN, "trip")
        assert (HALF_OPEN, "cooldown") in trans
        assert trans[-1] == (CLOSED, "probe_ok")
        assert report.devices_used().get("gpu1", 0) > 0


class TestKillResumeBitwise:
    """Acceptance 2: kill + resume == uninterrupted, bitwise."""

    def test_resumed_run_is_bitwise_identical(self, tmp_path):
        job_kw = dict(job_id="kr", deadline_ms=500.0)

        straight = make_sched(hot_pool(), failure_threshold=2,
                              checkpoint_dir=str(tmp_path / "a"))
        full = straight.run_job(make_job(batch(), **job_kw))
        assert full.ok

        killed = make_sched(hot_pool(), failure_threshold=2,
                            checkpoint_dir=str(tmp_path / "b"))
        partial = killed.run_job(make_job(batch(), **job_kw),
                                 stop_after=3)
        assert partial.outcome == "stopped"
        assert not partial.completed

        resumed_sched = make_sched(hot_pool(), failure_threshold=2,
                                   checkpoint_dir=str(tmp_path / "b"))
        resumed = resumed_sched.run_job(make_job(batch(), **job_kw),
                                        resume=True)
        assert resumed.ok
        # checkpoint_every=2 and stop_after=3: chunks 0-1 hit a
        # barrier, chunk 2's buffered line died with the "process".
        assert resumed.restored_chunks == [0, 1]
        assert np.array_equal(resumed.x, full.x)
        assert resumed.solution_digest() == full.solution_digest()
        # Scheduling context was restored too, not just results: the
        # recomputed suffix used the same devices as the straight run.
        assert {c.chunk_id: c.device for c in full.chunks} == \
            {c.chunk_id: c.device for c in resumed.chunks}

    def test_resume_without_checkpoint_recomputes_everything(
            self, tmp_path):
        sched = make_sched(hot_pool(), failure_threshold=2,
                           checkpoint_dir=str(tmp_path))
        report = sched.run_job(make_job(batch(), job_id="cold"),
                               resume=True)
        assert report.ok and report.restored_chunks == []


class TestSeededDeterminism:
    """Acceptance 3: identical seeds -> identical reports + counters."""

    def run_once(self):
        with telemetry.collect() as col:
            sched = make_sched(hot_pool(), failure_threshold=2)
            sched.submit(make_job(batch(), job_id="det",
                                  deadline_ms=500.0))
            reports = sched.run()
        return reports, col.metrics.snapshot()

    def test_reports_and_counters_identical(self):
        reports_a, snap_a = self.run_once()
        reports_b, snap_b = self.run_once()
        assert [r.to_dict() for r in reports_a] == \
            [r.to_dict() for r in reports_b]
        assert snap_a["counters"] == snap_b["counters"]
        assert snap_a["gauges"] == snap_b["gauges"]

    def test_fault_plans_are_coordinate_pure(self):
        """Same (device, job, chunk, attempt) -> same plan, regardless
        of call order."""
        d1 = hot_pool().by_name("gpu1")
        d2 = hot_pool().by_name("gpu1")
        p_fwd = [d1.plan_for("det", c, 0).seed for c in range(6)]
        p_rev = [d2.plan_for("det", c, 0).seed
                 for c in reversed(range(6))]
        assert p_fwd == list(reversed(p_rev))
        assert len(set(p_fwd)) == 6          # and they decorrelate
