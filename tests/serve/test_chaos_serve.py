"""Serving-layer chaos acceptance suite.

The three contracts ISSUE.md pins down, each under seeded fault
injection:

1. a breaker tripped mid-job still lets the job complete within its
   deadline (rerouting to healthy devices, CPU degradation as the
   last resort);
2. a run killed mid-job and resumed from its checkpoint produces a
   solution bitwise identical to the uninterrupted run;
3. two identical seeded runs produce identical reports and metric
   counters.

Everything here is modeled time over derived seeds, so this suite is
run twice in CI (and by ``make serve-chaos``) as a determinism proof.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.gpusim.pool import make_pool
from repro.numerics.generators import diagonally_dominant_fluid
from repro.resilience.pipeline import _relative_residuals
from repro.serve import CLOSED, HALF_OPEN, OPEN

from .conftest import make_job, make_sched

pytestmark = [pytest.mark.serve, pytest.mark.chaos]


def hot_pool():
    return make_pool(3, seed=5, hot=1,
                     hot_rates={"launch_fatal_rate": 1.0})


def batch():
    return diagonally_dominant_fluid(24, 64, seed=11)


class TestBreakerTripMidJob:
    """Acceptance 1: trip a breaker mid-job, still meet the deadline."""

    def run_once(self):
        sched = make_sched(hot_pool(), failure_threshold=2,
                           cooldown_ms=1e9)
        report = sched.run_job(make_job(batch(), deadline_ms=500.0))
        return sched, report

    def test_breaker_trips_and_job_completes_in_deadline(self):
        sched, report = self.run_once()
        assert sched.breakers["gpu1"].state == OPEN       # tripped...
        assert report.completed and report.deadline_met   # ...job fine
        assert report.outcome == "ok"
        assert report.makespan_ms <= 500.0

    def test_rerouted_chunks_land_on_healthy_devices(self):
        _, report = self.run_once()
        used = report.devices_used()
        assert used.get("gpu1", 0) == 0
        assert sum(used.values()) == report.num_chunks == 6
        assert report.total_retries >= 2   # gpu1's failed attempts
        rel = _relative_residuals(batch(), report.x)
        assert bool(np.all(rel <= 1e-4))

    def test_half_open_recovery_after_cooldown(self):
        """With a finite cooldown the tripped device is probed again
        and, now healthy (failures were injected per-attempt), the
        breaker closes: the full closed->open->half_open->closed cycle
        under scheduler control."""
        pool = make_pool(3, seed=5, hot=1,
                         hot_rates={"launch_fatal_rate": 1.0})
        # threshold 1: the breaker trips on gpu1's first failed attempt,
        # however the seeded backoff jitter orders the device clocks.
        sched = make_sched(pool, failure_threshold=1, cooldown_ms=0.02)
        sched.run_job(make_job(batch(), job_id="warm"))
        b = sched.breakers["gpu1"]
        assert b.state == OPEN
        # Heal the device, then keep feeding jobs through the same
        # scheduler: once the modeled clock clears the cooldown, a
        # probe flows and the breaker closes.
        pool.by_name("gpu1").fault_rates = {}
        report = None
        for i in range(5):
            report = sched.run_job(make_job(batch(), job_id=f"after{i}"))
            assert report.ok
            if b.state == CLOSED:
                break
        assert b.state == CLOSED
        trans = [(t.to, t.reason) for t in b.transitions]
        assert trans[0] == (OPEN, "trip")
        assert (HALF_OPEN, "cooldown") in trans
        assert trans[-1] == (CLOSED, "probe_ok")
        assert report.devices_used().get("gpu1", 0) > 0


class TestKillResumeBitwise:
    """Acceptance 2: kill + resume == uninterrupted, bitwise."""

    def test_resumed_run_is_bitwise_identical(self, tmp_path):
        job_kw = dict(job_id="kr", deadline_ms=500.0)

        straight = make_sched(hot_pool(), failure_threshold=2,
                              checkpoint_dir=str(tmp_path / "a"))
        full = straight.run_job(make_job(batch(), **job_kw))
        assert full.ok

        killed = make_sched(hot_pool(), failure_threshold=2,
                            checkpoint_dir=str(tmp_path / "b"))
        partial = killed.run_job(make_job(batch(), **job_kw),
                                 stop_after=3)
        assert partial.outcome == "stopped"
        assert not partial.completed

        resumed_sched = make_sched(hot_pool(), failure_threshold=2,
                                   checkpoint_dir=str(tmp_path / "b"))
        resumed = resumed_sched.run_job(make_job(batch(), **job_kw),
                                        resume=True)
        assert resumed.ok
        # checkpoint_every=2 and stop_after=3: chunks 0-1 hit a
        # barrier, chunk 2's buffered line died with the "process".
        assert resumed.restored_chunks == [0, 1]
        assert np.array_equal(resumed.x, full.x)
        assert resumed.solution_digest() == full.solution_digest()
        # Scheduling context was restored too, not just results: the
        # recomputed suffix used the same devices as the straight run.
        assert {c.chunk_id: c.device for c in full.chunks} == \
            {c.chunk_id: c.device for c in resumed.chunks}

    def test_resume_without_checkpoint_recomputes_everything(
            self, tmp_path):
        sched = make_sched(hot_pool(), failure_threshold=2,
                           checkpoint_dir=str(tmp_path))
        report = sched.run_job(make_job(batch(), job_id="cold"),
                               resume=True)
        assert report.ok and report.restored_chunks == []


class TestSeededDeterminism:
    """Acceptance 3: identical seeds -> identical reports + counters."""

    def run_once(self):
        with telemetry.collect() as col:
            sched = make_sched(hot_pool(), failure_threshold=2)
            sched.submit(make_job(batch(), job_id="det",
                                  deadline_ms=500.0))
            reports = sched.run()
        return reports, col.metrics.snapshot()

    def test_reports_and_counters_identical(self):
        reports_a, snap_a = self.run_once()
        reports_b, snap_b = self.run_once()
        assert [r.to_dict() for r in reports_a] == \
            [r.to_dict() for r in reports_b]
        assert snap_a["counters"] == snap_b["counters"]
        assert snap_a["gauges"] == snap_b["gauges"]

    def test_fault_plans_are_coordinate_pure(self):
        """Same (device, job, chunk, attempt) -> same plan, regardless
        of call order."""
        d1 = hot_pool().by_name("gpu1")
        d2 = hot_pool().by_name("gpu1")
        p_fwd = [d1.plan_for("det", c, 0).seed for c in range(6)]
        p_rev = [d2.plan_for("det", c, 0).seed
                 for c in reversed(range(6))]
        assert p_fwd == list(reversed(p_rev))
        assert len(set(p_fwd)) == 6          # and they decorrelate


class TestTraceObservability:
    """ISSUE 6 acceptance: one connected trace tree per job, with
    bitwise-identical exports across two same-seed runs."""

    def run_traced(self, seed=17):
        col = telemetry.deterministic_collector(seed)
        with telemetry.collect(col):
            sched = make_sched(hot_pool(), failure_threshold=2, seed=seed)
            for i in range(2):
                sched.submit(make_job(batch(), job_id=f"t{i}",
                                      deadline_ms=500.0))
            reports = sched.run()
        return col, sched, reports

    def test_every_job_is_one_connected_tree(self):
        col, sched, reports = self.run_traced()
        trees = telemetry.trace_trees(col)
        assert len(reports) == 2
        for report in reports:
            assert report.trace_id is not None
            tree = trees[report.trace_id]
            assert tree["connected"], report.trace_id
            assert tree["root"].name == "serve.trace"

    def test_tree_spans_scheduler_to_launch(self):
        col, _sched, reports = self.run_traced()
        trees = telemetry.trace_trees(col)
        for report in reports:
            names = {s.name for s in trees[report.trace_id]["spans"]}
            # Scheduler layer down into the simulated device layer.
            assert {"serve.trace", "serve.admit", "serve.job",
                    "serve.chunk", "serve.attempt"} <= names
            assert any(n.startswith("sim.launch:") for n in names)
            assert any(n.startswith("sim.phase:") for n in names)

    def test_trace_ids_are_deterministic_functions_of_seed(self):
        _, sched_a, reports_a = self.run_traced(seed=17)
        _, sched_b, reports_b = self.run_traced(seed=17)
        assert [r.trace_id for r in reports_a] == \
            [r.trace_id for r in reports_b]
        assert sched_a.trace_id_for("t0") == reports_a[0].trace_id
        # Distinct jobs get distinct traces.
        assert len({r.trace_id for r in reports_a}) == 2

    def test_jsonl_export_bitwise_identical(self):
        col_a, _, _ = self.run_traced(seed=17)
        col_b, _, _ = self.run_traced(seed=17)
        assert telemetry.to_jsonl(col_a) == telemetry.to_jsonl(col_b)

    def test_slo_report_identical_across_runs(self):
        _, sched_a, _ = self.run_traced(seed=17)
        _, sched_b, _ = self.run_traced(seed=17)
        assert sched_a.slo.report() == sched_b.slo.report()
        assert sched_a.slo.snapshot() == sched_b.slo.snapshot()

    def test_prometheus_exposition_identical_across_runs(self):
        col_a, _, _ = self.run_traced(seed=17)
        col_b, _, _ = self.run_traced(seed=17)
        text = telemetry.prometheus_text(col_a)
        assert text == telemetry.prometheus_text(col_b)
        assert "repro_serve_latency_ms_bucket" in text

    def test_estimator_residuals_recorded_per_chunk(self):
        col, _, reports = self.run_traced()
        hist = col.metrics.histogram(telemetry.COST_RESIDUAL)
        total_chunks = sum(r.num_chunks for r in reports)
        assert hist.count(solver="cr_pcr", layout="global", n=64) == \
            total_chunks

    def test_slo_attribution_sees_breaker_trip(self):
        _, sched, _ = self.run_traced()
        snap = sched.slo.snapshot()["standard"]
        assert snap["breaker_trips"].get("gpu1", 0) >= 1
        assert snap["jobs"] == 2
