"""Units for the multi-tenant serve front end (admission pipeline,
quotas, downgrade, eviction order, asyncio facade)."""

from __future__ import annotations

import asyncio

import pytest

from repro.gpusim.pool import make_pool
from repro.numerics.generators import diagonally_dominant_fluid
from repro.serve import (BatchScheduler, FrontendConfig, ServeFrontend,
                         ServeRequest, TenantSpec)
from repro.serve.frontend import AsyncServeFrontend

from .conftest import make_sched

pytestmark = pytest.mark.serve


def small_batch(seed=11, num=4, n=32):
    return diagonally_dominant_fluid(num, n, seed=seed)


def req(rid, *, tenant="acme", cls="standard", at=0.0, seed=11,
        num=4, n=32, deadline=None):
    return ServeRequest(request_id=rid, tenant=tenant,
                        systems=small_batch(seed=seed, num=num, n=n),
                        arrival_ms=at, slo_class=cls,
                        deadline_ms=deadline)


def make_frontend(pool=None, *, tenants=None, config=None, sched_kw=None,
                  resume=False):
    sched = make_sched(pool or make_pool(2, seed=5), seed=0,
                       **(sched_kw or {}))
    return ServeFrontend(sched, tenants, config=config, resume=resume)


class TestPipeline:
    def test_single_request_completes(self):
        fe = make_frontend()
        assert fe.offer(req("r0")) is None
        out = fe.dispatch_once()
        assert out.state == "completed"
        assert out.report.ok
        assert out.latency_ms >= 0.0
        assert fe.dispatch_once() is None

    def test_unknown_tenant_auto_registers_unlimited(self):
        fe = make_frontend(tenants=[TenantSpec("acme")])
        assert fe.offer(req("r0", tenant="stranger")) is None
        assert fe.dispatch_once().state == "completed"

    def test_unknown_slo_class_does_not_crash(self):
        fe = make_frontend()
        fe.offer(req("r0", cls="bulk"))
        out = fe.dispatch_once()
        assert out is not None and out.slo_class == "bulk"

    def test_report_preserves_decision_order(self):
        fe = make_frontend()
        for i in range(3):
            fe.offer(req(f"r{i}"))
        while fe.dispatch_once() is not None:
            pass
        rep = fe.report()
        assert [o.request_id for o in rep.outcomes] == ["r0", "r1", "r2"]
        assert rep.to_dict()["format"] == "repro.serve.frontend/v1"


class TestQuota:
    def test_zero_quota_tenant_admits_nothing(self):
        # Satellite: a tenant with zero quota is denied at the quota
        # stage every time, and never reaches the scheduler.
        fe = make_frontend(tenants=[
            TenantSpec("frozen", quota_rate=0.0, quota_burst=0.0),
            TenantSpec("acme"),
        ])
        for i in range(5):
            out = fe.offer(req(f"f{i}", tenant="frozen", at=float(i)))
            assert out is not None and out.state == "shed"
            assert out.reason == "quota" and out.stage == "quota"
        assert fe.offer(req("a0", tenant="acme", at=0.0)) is None
        rep_mid = fe.report()
        assert rep_mid.quota_denied == {"frozen": 5}
        assert fe.dispatch_once().state == "completed"

    def test_quota_denial_consumes_nothing(self):
        # One request's worth of burst: first admitted, second denied,
        # and the denial leaves the bucket able to refill normally.
        fe = make_frontend(tenants=[
            TenantSpec("t", quota_rate=0.001, quota_burst=0.01)])
        assert fe.offer(req("r0", tenant="t", at=0.0)) is None
        out = fe.offer(req("r1", tenant="t", at=0.0))
        assert out is not None and out.reason == "quota"
        # After enough refill time the tenant is admitted again.
        assert fe.offer(req("r2", tenant="t", at=100.0)) is None

    def test_eviction_refunds_victim_tokens(self):
        fe = make_frontend(
            tenants=[TenantSpec("t", quota_rate=0.001, quota_burst=0.05)],
            config=FrontendConfig(pending_capacity=1, handoff_depth=1,
                                  admission_slack=1e9))
        assert fe.offer(req("r0", tenant="t", cls="batch")) is None
        before = fe._buckets["t"].tokens
        # r1 arrives last so it carries the latest virtual finish and
        # evicts itself; the eviction refunds its tokens, so the failed
        # admission costs the tenant net zero.
        out = fe.offer(req("r1", tenant="t", cls="batch"))
        assert out is not None and out.request_id == "r1"
        assert out.reason == "overload" and out.stage == "capacity"
        assert fe._buckets["t"].tokens == pytest.approx(before)


class TestAdmission:
    def test_impossible_deadline_is_shed_unmeetable(self):
        fe = make_frontend()
        out = fe.offer(req("r0", cls="interactive", deadline=1e-9))
        assert out is not None
        assert out.reason == "deadline_unmeetable"
        assert out.stage == "admission"

    def test_downgrade_before_shed(self):
        # Pre-load enough interactive backlog that the cost model
        # cannot meet the 5 ms objective, but batch still admits.
        fe = make_frontend(config=FrontendConfig(
            pending_capacity=500, handoff_depth=1, admission_slack=1.0))
        for i in range(400):
            fe.offer(req(f"bg{i}", cls="interactive", num=16, n=64))
        before = fe.downgrades
        fe.offer(req("hot", cls="interactive", num=16, n=64))
        assert fe.downgrades > before
        rep = fe.report()
        assert rep.downgrades == fe.downgrades

    def test_no_downgrade_when_disallowed(self):
        fe = make_frontend(config=FrontendConfig(
            pending_capacity=500, handoff_depth=1, admission_slack=1.0,
            allow_downgrade=False))
        for i in range(400):
            fe.offer(req(f"bg{i}", cls="interactive", num=16, n=64))
        out = fe.offer(req("hot", cls="interactive", num=16, n=64))
        assert out is not None and out.reason == "deadline_unmeetable"


class TestCapacityShedding:
    def cfg(self, cap):
        # Huge slack disables the admission stage so only the bounded
        # buffer sheds; handoff_depth=1 keeps requests evictable.
        return FrontendConfig(pending_capacity=cap, handoff_depth=1,
                              admission_slack=1e9)

    def test_overflow_sheds_lowest_class_latest_finish(self):
        fe = make_frontend(config=self.cfg(3))
        fe.offer(req("i0", cls="interactive"))
        fe.offer(req("s0", cls="standard"))
        fe.offer(req("b0", cls="batch"))
        out = fe.offer(req("i1", cls="interactive"))
        # Overflow evicts the batch request, not the new interactive.
        assert out is None
        shed = [o for o in fe.outcomes.values() if o.state == "shed"]
        assert [o.request_id for o in shed] == ["b0"]
        assert shed[0].reason == "overload"
        assert shed[0].stage == "capacity"

    def test_interactive_shed_only_when_alone(self):
        fe = make_frontend(config=self.cfg(2))
        fe.offer(req("i0", cls="interactive"))
        fe.offer(req("i1", cls="interactive"))
        out = fe.offer(req("i2", cls="interactive"))
        assert out is not None and out.request_id == "i2"
        assert out.reason == "overload"

    def test_committed_handoff_jobs_are_not_evictable(self):
        fe = make_frontend(config=self.cfg(2))
        fe.offer(req("b0", cls="batch"))
        fe._fill_handoff()             # b0 now committed to scheduler
        fe.offer(req("i0", cls="interactive"))
        fe.offer(req("i1", cls="interactive"))
        fe.offer(req("i2", cls="interactive"))
        shed = [o for o in fe.outcomes.values() if o.state == "shed"]
        # b0 is beyond the shedder's reach; interactive overflow sheds
        # interactive -- which is why handoff_depth stays small.
        assert all(o.slo_class == "interactive" for o in shed)
        assert "b0" not in {o.request_id for o in shed}


class TestDispatchOrder:
    def test_strict_priority_across_classes(self):
        fe = make_frontend(config=FrontendConfig(
            pending_capacity=24, handoff_depth=1, admission_slack=1e9))
        fe.offer(req("b0", cls="batch"))
        fe.offer(req("s0", cls="standard"))
        fe.offer(req("i0", cls="interactive"))
        order = [fe.dispatch_once().request_id for _ in range(3)]
        assert order == ["i0", "s0", "b0"]

    def test_wfq_weights_within_class(self):
        fe = make_frontend(
            tenants=[TenantSpec("heavy", weight=2.0),
                     TenantSpec("light", weight=1.0)],
            config=FrontendConfig(pending_capacity=64, handoff_depth=1,
                                  admission_slack=1e9))
        for i in range(6):
            fe.offer(req(f"h{i}", tenant="heavy"))
            fe.offer(req(f"l{i}", tenant="light"))
        first = [fe.dispatch_once().request_id[0] for _ in range(6)]
        assert first.count("h") == 4 and first.count("l") == 2


class TestSingleTenantSaturation:
    def test_one_tenant_cannot_monopolise_another(self):
        # Satellite: one tenant saturates the pool; a second tenant's
        # sparse interactive traffic still completes without shedding.
        fe = make_frontend(config=FrontendConfig(pending_capacity=8))
        requests = [req(f"hog-{i:03d}", tenant="hog", cls="batch",
                        at=0.0, num=16, n=64) for i in range(40)]
        requests += [req(f"vip-{i}", tenant="vip", cls="interactive",
                         at=float(i) * 0.05) for i in range(4)]
        rep = fe.run(sorted(requests,
                            key=lambda r: (r.arrival_ms, r.tenant,
                                           r.request_id)))
        vip = [o for o in rep.outcomes if o.tenant == "vip"]
        assert len(vip) == 4
        assert all(o.state == "completed" for o in vip)
        # All shedding lands on the saturating tenant's batch work.
        assert all(o.tenant == "hog" and o.slo_class == "batch"
                   for o in rep.shed)
        assert rep.shed, "hog overload should force shedding"


class TestAsyncFacade:
    def run_async(self, coro):
        return asyncio.run(coro)

    def test_submit_returns_completed_outcome(self):
        async def go():
            fe = make_frontend()
            async with AsyncServeFrontend(fe) as svc:
                out = await svc.submit(req("r0"))
            return out

        out = self.run_async(go())
        assert out.state == "completed" and out.report.ok

    def test_concurrent_submissions_all_resolve(self):
        async def go():
            fe = make_frontend(config=FrontendConfig(pending_capacity=4))
            async with AsyncServeFrontend(fe) as svc:
                outs = await asyncio.gather(
                    *(svc.submit(req(f"r{i}", cls="batch"))
                      for i in range(8)))
            return outs

        outs = self.run_async(go())
        assert len(outs) == 8
        states = {o.state for o in outs}
        assert "completed" in states
        # Overflowed requests come back as shed responses, never as
        # exceptions or hung futures.
        for o in outs:
            assert o.state in ("completed", "shed")

    def test_async_path_matches_sync_decisions(self):
        def stream():
            return [req(f"r{i}", cls="batch") for i in range(6)]

        cfg = FrontendConfig(pending_capacity=3, handoff_depth=1,
                             admission_slack=1e9)

        fe_sync = make_frontend(config=cfg)
        for r in stream():
            fe_sync.offer(r)
        while fe_sync.dispatch_once() is not None:
            pass

        async def go():
            fe = make_frontend(config=cfg)
            async with AsyncServeFrontend(fe) as svc:
                outs = await asyncio.gather(
                    *(svc.submit(r) for r in stream()))
            return fe, outs

        fe_async, _ = self.run_async(go())
        assert fe_sync.report().shed_set() == fe_async.report().shed_set()
