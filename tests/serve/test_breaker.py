"""Circuit-breaker state machine: the full closed -> open -> half-open
-> closed walk, plus the failure paths off it."""

import pytest

from repro import telemetry
from repro.serve import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


def make_breaker(**kw) -> CircuitBreaker:
    kw.setdefault("failure_threshold", 3)
    kw.setdefault("cooldown_ms", 10.0)
    kw.setdefault("half_open_successes", 2)
    return CircuitBreaker(name="gpu0", **kw)


class TestClosedToOpen:
    def test_trips_after_threshold_consecutive_failures(self):
        b = make_breaker()
        for t in (1.0, 2.0):
            b.record_failure(t)
            assert b.state == CLOSED
        b.record_failure(3.0)
        assert b.state == OPEN
        assert b.opened_at_ms == 3.0
        assert [(tr.frm, tr.to, tr.reason) for tr in b.transitions] == \
            [(CLOSED, OPEN, "trip")]

    def test_success_resets_the_consecutive_count(self):
        b = make_breaker()
        b.record_failure(1.0)
        b.record_failure(2.0)
        b.record_success(3.0)
        b.record_failure(4.0)
        b.record_failure(5.0)
        assert b.state == CLOSED   # never 3 *consecutive*
        b.record_failure(6.0)
        assert b.state == OPEN


class TestOpenToHalfOpenToClosed:
    def trip(self, b):
        for t in (1.0, 2.0, 3.0):
            b.record_failure(t)
        assert b.state == OPEN

    def test_open_blocks_until_cooldown(self):
        b = make_breaker()
        self.trip(b)
        assert not b.allow(5.0)          # 2ms into a 10ms cooldown
        assert b.state == OPEN

    def test_full_recovery_walk(self):
        """closed -> open -> half-open -> closed, transition by
        transition (the satellite's required coverage)."""
        b = make_breaker()
        self.trip(b)                      # closed -> open at 3.0
        assert b.allow(13.0)              # cooldown elapsed -> half-open
        assert b.state == HALF_OPEN
        b.record_success(14.0)
        assert b.state == HALF_OPEN       # needs 2 probe successes
        b.record_success(15.0)
        assert b.state == CLOSED
        assert b.consecutive_failures == 0
        assert [(tr.frm, tr.to, tr.reason) for tr in b.transitions] == [
            (CLOSED, OPEN, "trip"),
            (OPEN, HALF_OPEN, "cooldown"),
            (HALF_OPEN, CLOSED, "probe_ok"),
        ]

    def test_failed_probe_reopens_and_restarts_cooldown(self):
        b = make_breaker()
        self.trip(b)
        assert b.allow(13.0)
        b.record_failure(14.0, "launch_error")
        assert b.state == OPEN
        assert b.opened_at_ms == 14.0
        assert not b.allow(20.0)          # new cooldown, not the old one
        assert b.allow(24.5)
        assert b.state == HALF_OPEN

    def test_transitions_counted_in_telemetry(self):
        with telemetry.collect() as col:
            b = make_breaker()
            self.trip(b)
            assert b.allow(13.0)
        counter = col.metrics.counter("serve.breaker_transitions")
        assert counter.value(device="gpu0", **{"from": CLOSED,
                                               "to": OPEN}) == 1
        assert counter.value(device="gpu0", **{"from": OPEN,
                                               "to": HALF_OPEN}) == 1


class TestSerialisation:
    def test_state_dict_round_trip(self):
        b = make_breaker()
        for t in (1.0, 2.0, 3.0):
            b.record_failure(t)
        b.allow(13.0)
        snap = b.state_dict()
        fresh = make_breaker()
        fresh.load_state_dict(snap)
        assert fresh.state == HALF_OPEN
        assert fresh.opened_at_ms == 3.0
        assert fresh.state_dict() == snap

    def test_state_dict_is_json_ready(self):
        import json
        b = make_breaker()
        b.record_failure(1.0)
        assert json.loads(json.dumps(b.state_dict())) == b.state_dict()
