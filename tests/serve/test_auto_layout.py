"""Joint solver+layout placement in the serving layer."""

import numpy as np
import pytest

from repro.numerics.generators import diagonally_dominant_fluid
from repro.resilience.pipeline import _relative_residuals
from repro.serve import SolveJob

from .conftest import make_job, make_sched


class TestJobValidation:
    def test_defaults_sequential(self, batch):
        job = make_job(batch)
        assert job.layout == "sequential"

    def test_unknown_layout_rejected(self, batch):
        with pytest.raises(ValueError, match="layout"):
            make_job(batch, layout="diagonal")

    def test_interleaved_needs_layout_aware_method(self, batch):
        with pytest.raises(ValueError, match="interleaved"):
            make_job(batch, method="cr", layout="interleaved")

    def test_interleaved_thomas_accepted(self, batch):
        job = make_job(batch, method="thomas", layout="interleaved")
        assert (job.method, job.layout) == ("thomas", "interleaved")

    def test_auto_method_accepted(self, batch):
        assert make_job(batch, method="auto").method == "auto"

    def test_thomas_takes_non_power_of_two_n(self):
        s = diagonally_dominant_fluid(8, 33, seed=1)
        job = make_job(s, method="thomas")
        assert job.systems.n == 33


class TestDigest:
    def test_digest_unchanged_for_default_layout(self, batch):
        """Checkpoint back-compat: sequential jobs must hash exactly as
        they did before the layout field existed."""
        a = make_job(batch).input_digest()
        b = make_job(batch, layout="sequential").input_digest()
        assert a == b
        assert "layout" not in "".join(
            c for c in a if not c.isdigit())  # digest is opaque hex

    def test_digest_differs_for_interleaved(self, batch):
        a = make_job(batch, method="thomas").input_digest()
        b = make_job(batch, method="thomas",
                     layout="interleaved").input_digest()
        assert a != b


class TestAutoResolution:
    def test_estimate_resolves_method_and_layout(self, healthy_pool):
        s = diagonally_dominant_fluid(2048, 8, seed=2)
        sched = make_sched(healthy_pool)
        job = make_job(s, method="auto", chunk_size=2048)
        ms = sched.estimate_job_ms(job)
        assert ms > 0
        assert (job.method, job.layout) == ("thomas", "interleaved")

    def test_single_large_system_stays_sequential(self, healthy_pool):
        s = diagonally_dominant_fluid(1, 512, seed=2)
        sched = make_sched(healthy_pool)
        job = make_job(s, method="auto", chunk_size=4)
        sched.estimate_job_ms(job)
        assert job.layout == "sequential"
        assert job.method in ("cr_pcr", "pcr")

    def test_run_job_resolves_and_solves(self, healthy_pool):
        s = diagonally_dominant_fluid(32, 16, seed=3)
        sched = make_sched(healthy_pool)
        job = make_job(s, method="auto")
        report = sched.run_job(job)
        assert report.ok
        assert job.method != "auto"
        assert np.all(_relative_residuals(s, report.x) <= 1e-4)

    def test_explicit_interleaved_thomas_end_to_end(self, healthy_pool):
        s = diagonally_dominant_fluid(24, 33, seed=4)   # non-pot n
        sched = make_sched(healthy_pool)
        report = sched.run_job(make_job(s, method="thomas",
                                        layout="interleaved"))
        assert report.ok
        assert np.all(_relative_residuals(s, report.x) <= 1e-4)
