"""Units for the seeded open-loop load generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import loadgen
from repro.serve.loadgen import (ArrivalProcess, SizeClass, TenantProfile,
                                 TenantSpec)

pytestmark = pytest.mark.serve


class TestArrivalProcess:
    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalProcess(rate_per_ms=0.0)
        with pytest.raises(ValueError):
            ArrivalProcess(rate_per_ms=1.0, burst_mean=0.5)

    def test_times_sorted_within_horizon(self):
        proc = ArrivalProcess(rate_per_ms=50.0, burst_mean=3.0,
                              burst_gap_ms=0.002)
        times = proc.times(np.random.default_rng(0), horizon_ms=4.0)
        assert times == sorted(times)
        assert all(0.0 <= t < 4.0 for t in times)

    def test_mean_rate_tracks_target_despite_bursts(self):
        rng = np.random.default_rng(1)
        for burst in (1.0, 4.0):
            proc = ArrivalProcess(rate_per_ms=100.0, burst_mean=burst)
            n = len(proc.times(rng, horizon_ms=50.0))
            assert n == pytest.approx(5000, rel=0.15)


class TestGenerate:
    def profiles(self):
        return loadgen.overload_profiles(2.0, scenario="mixed", tenants=3)

    def test_same_seed_same_stream(self):
        a = loadgen.generate(self.profiles(), horizon_ms=2.0, seed=42)
        b = loadgen.generate(self.profiles(), horizon_ms=2.0, seed=42)
        assert len(a) == len(b) > 0
        for ra, rb in zip(a, b):
            assert ra.request_id == rb.request_id
            assert ra.arrival_ms == rb.arrival_ms
            assert ra.slo_class == rb.slo_class
            assert np.array_equal(ra.systems.d, rb.systems.d)

    def test_different_seed_different_stream(self):
        a = loadgen.generate(self.profiles(), horizon_ms=2.0, seed=42)
        b = loadgen.generate(self.profiles(), horizon_ms=2.0, seed=43)
        assert [r.request_id for r in a] != [r.request_id for r in b] \
            or [r.arrival_ms for r in a] != [r.arrival_ms for r in b]

    def test_stream_is_totally_ordered(self):
        reqs = loadgen.generate(self.profiles(), horizon_ms=2.0, seed=7)
        keys = [(r.arrival_ms, r.tenant, r.request_id) for r in reqs]
        assert keys == sorted(keys)

    def test_tenant_independence(self):
        # Adding a tenant must not perturb the other tenants' streams.
        two = loadgen.generate(self.profiles()[:2], horizon_ms=2.0, seed=9)
        three = loadgen.generate(self.profiles(), horizon_ms=2.0, seed=9)
        kept = [r for r in three if r.tenant != "tenant2"]
        assert [r.request_id for r in kept] == [r.request_id for r in two]

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            TenantProfile(spec=TenantSpec("t"),
                          arrivals=ArrivalProcess(rate_per_ms=1.0),
                          mix=())


class TestOverloadProfiles:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            loadgen.overload_profiles(2.0, scenario="nope")

    def test_offered_load_near_multiplier(self):
        # The calibrated mean-cost constants should put the offered
        # load within ~35% of the requested multiplier.
        from repro.gpusim.pool import make_pool
        from repro.serve import BatchScheduler
        sched = BatchScheduler(make_pool(2, seed=5), seed=0)
        horizon = 4.0
        reqs = loadgen.generate(
            loadgen.overload_profiles(2.0, scenario="mixed", tenants=3),
            horizon_ms=horizon, seed=42)
        offered = loadgen.offered_cost_ms(reqs, sched.estimate_job_ms)
        assert offered / horizon == pytest.approx(2.0, rel=0.35)

    def test_mixes_cover_all_classes(self):
        for mix in (loadgen.adi3d_mix(), loadgen.ocean_mix()):
            classes = {s.slo_class for s in mix}
            assert classes == {"interactive", "standard", "batch"}
            assert all(isinstance(s, SizeClass) for s in mix)
