"""Device health lifecycle suite: quarantine/readmission, warm spares,
hedged chunks, correlated-failure chaos.

The acceptance contracts:

1. a staged brownout on one device ends with that device quarantined,
   zero failed jobs, and tail latency within 2x the healthy-pool
   baseline;
2. the "brownout + flap + 1 warm spare" chaos scenario completes with
   zero failed jobs, the flapping device evicted and the spare
   promoted;
3. two same-seed runs are bitwise identical (reports, lifecycle
   transitions, telemetry JSONL) -- including across a kill/resume at
   mid-run.

Everything is modeled time over derived seeds; CI runs this file twice
(and ``make serve-health`` does the same) as a determinism proof.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.gpusim.device import GTX280
from repro.gpusim.faults import (BrownoutProcess, DegradationProcess,
                                 FlappingProcess, combine_rates,
                                 evaluate_processes)
from repro.gpusim.pool import DevicePool, PooledDevice, derive_seed, make_pool
from repro.numerics.generators import diagonally_dominant_fluid
from repro.serve import (ACTIVE, EVICTED, PROBATION, QUARANTINED, SPARE,
                         SUSPECT, CircuitBreaker, HealthMonitor,
                         HealthPolicy, OPEN)

from .conftest import make_job, make_sched

pytestmark = pytest.mark.health


def batch():
    return diagonally_dominant_fluid(24, 64, seed=11)


# ---------------------------------------------------------------------------
# Correlated fault processes


class TestFaultProcesses:
    def test_brownout_window_and_multiplier(self):
        p = BrownoutProcess(start_ms=1.0, duration_ms=2.0, multiplier=3.0)
        assert p.latency_multiplier_at(0.5) == 1.0
        assert p.latency_multiplier_at(1.0) == 3.0
        assert p.latency_multiplier_at(2.9) == 3.0
        assert p.latency_multiplier_at(3.0) == 1.0   # half-open window
        assert p.rates_at(1.5) == {}                 # slow, not faulty

    def test_flapping_is_deterministic_and_respects_duty(self):
        p = FlappingProcess(seed=42, period_ms=0.1, duty=0.5)
        downs = [p.down_at(w * 0.1) for w in range(50)]
        assert downs == [p.down_at(w * 0.1) for w in range(50)]
        assert any(downs) and not all(downs)
        assert all(FlappingProcess(seed=1, duty=1.0).down_at(t)
                   for t in (0.0, 1.0, 7.3))
        assert not any(FlappingProcess(seed=1, duty=0.0).down_at(t)
                       for t in (0.0, 1.0, 7.3))

    def test_flapping_rates_only_while_down(self):
        p = FlappingProcess(seed=0, period_ms=1.0, duty=0.5,
                            fault_rate=0.9)
        for w in range(20):
            t = w * 1.0
            if p.down_at(t):
                assert p.rates_at(t) == {"launch_fatal_rate": 0.9}
            else:
                assert p.rates_at(t) == {}

    def test_degradation_ramps_and_caps(self):
        p = DegradationProcess(start_ms=1.0, rate_per_ms=0.1, max_rate=0.5)
        assert p.rate_at(0.5) == 0.0
        assert p.rate_at(1.0) == 0.0
        assert p.rate_at(2.0) == pytest.approx(0.1)
        assert p.rate_at(100.0) == 0.5               # capped
        assert p.rates_at(0.5) == {}
        assert p.rates_at(3.0) == {"launch_fatal_rate": pytest.approx(0.2)}

    def test_evaluate_processes_combines_rates_and_multipliers(self):
        procs = (BrownoutProcess(multiplier=2.0),
                 FlappingProcess(seed=1, duty=1.0, fault_rate=0.5),
                 DegradationProcess(start_ms=0.0, rate_per_ms=1.0,
                                    max_rate=0.5))
        rates, mult = evaluate_processes(procs, 1.0)
        assert mult == 2.0
        # Independent processes combine as 1 - (1-r1)(1-r2).
        assert rates["launch_fatal_rate"] == \
            pytest.approx(combine_rates(0.5, 0.5))
        assert combine_rates(0.5, 0.5) == pytest.approx(0.75)
        assert combine_rates(1.0, 0.3) == 1.0

    def test_plan_carries_multiplier_but_seed_ignores_time(self):
        dev = PooledDevice("g", GTX280, seed=3, processes=(
            BrownoutProcess(start_ms=0.0, duration_ms=5.0,
                            multiplier=2.5),))
        early = dev.plan_for("job", 0, 0, at_ms=1.0)
        late = dev.plan_for("job", 0, 0, at_ms=4.0)
        assert early.latency_multiplier == 2.5
        assert early.seed == late.seed      # at_ms never feeds the seed
        assert dev.plan_for("job", 0, 0, at_ms=9.0) is None  # window over

    def test_flapping_device_plans_fault_only_while_down(self):
        flap = FlappingProcess(seed=7, period_ms=1.0, duty=0.5,
                               fault_rate=1.0)
        dev = PooledDevice("g", GTX280, seed=3, processes=(flap,))
        for w in range(10):
            t = w * 1.0
            plan = dev.plan_for("job", w, 0, at_ms=t)
            if flap.down_at(t):
                assert plan is not None and plan.launch_fatal_rate == 1.0
            else:
                assert plan is None


# ---------------------------------------------------------------------------
# Breaker transition history round-trip (satellite)


class TestBreakerHistoryRoundTrip:
    def trip_cycle(self, b: CircuitBreaker) -> None:
        b.record_failure(1.0)
        b.record_failure(2.0)            # trips (threshold 2)
        assert b.allow(10.0)             # cooldown elapsed -> half-open
        b.record_failure(11.0)           # probe fails -> re-open

    def test_transitions_survive_state_dict_round_trip(self):
        b = CircuitBreaker("gpu0", failure_threshold=2, cooldown_ms=5.0)
        self.trip_cycle(b)
        clone = CircuitBreaker("gpu0", failure_threshold=2,
                               cooldown_ms=5.0)
        clone.load_state_dict(b.state_dict())
        assert clone.state == b.state == OPEN
        assert [(t.frm, t.to, t.reason, t.at_ms) for t in clone.transitions] \
            == [(t.frm, t.to, t.reason, t.at_ms) for t in b.transitions]
        # The flap signal reads identically from the restored history.
        assert clone.trips_since(0.0) == b.trips_since(0.0) == 2
        assert clone.trips_since(5.0) == 1

    def test_pre_lifecycle_state_dict_keeps_existing_history(self):
        b = CircuitBreaker("gpu0", failure_threshold=2)
        self.trip_cycle(b)
        history = list(b.transitions)
        d = b.state_dict()
        del d["transitions"]             # a checkpoint from before PR-7
        b.load_state_dict(d)
        assert b.transitions == history


# ---------------------------------------------------------------------------
# HealthMonitor unit behaviour


def quick_policy(**kw) -> HealthPolicy:
    kw.setdefault("quarantine_ms", 0.05)
    return HealthPolicy(**kw)


class TestHealthLifecycle:
    def test_fault_signal_walks_active_suspect_quarantined(self):
        pool = make_pool(2, seed=1)
        mon = HealthMonitor(pool, policy=quick_policy())
        mon.observe_attempt("gpu0", ok=False, now_ms=0.1)
        assert mon.state_of("gpu0") == SUSPECT      # ewma 0.30
        mon.observe_attempt("gpu0", ok=False, now_ms=0.2)
        assert mon.state_of("gpu0") == SUSPECT      # ewma 0.51
        mon.observe_attempt("gpu0", ok=False, now_ms=0.3)
        assert mon.state_of("gpu0") == QUARANTINED  # ewma 0.657
        assert not mon.allows("gpu0")
        assert mon.allows("gpu1") and mon.allows("cpu")

    def test_suspect_clears_back_to_active(self):
        pool = make_pool(1, seed=1)
        mon = HealthMonitor(pool, policy=quick_policy())
        mon.observe_attempt("gpu0", ok=False, now_ms=0.1)
        assert mon.state_of("gpu0") == SUSPECT
        for i in range(6):
            mon.observe_attempt("gpu0", ok=True, ratio=1.0,
                                now_ms=0.2 + i * 0.1)
        assert mon.state_of("gpu0") == ACTIVE
        assert [t["to"] for t in mon.transitions] == [SUSPECT, ACTIVE]

    def test_latency_signal_quarantines_without_any_fault(self):
        pool = make_pool(1, seed=1)
        mon = HealthMonitor(pool, policy=quick_policy())
        mon.observe_attempt("gpu0", ok=True, ratio=3.0, now_ms=0.1)
        mon.observe_attempt("gpu0", ok=True, ratio=3.0, now_ms=0.2)
        assert mon.state_of("gpu0") == QUARANTINED
        assert mon.devices["gpu0"].ewma_fault == 0.0

    def test_canary_readmission_of_healed_device(self):
        pool = make_pool(2, seed=1, hot=1)
        mon = HealthMonitor(pool, policy=quick_policy(), seed=9)
        for t in (0.1, 0.2, 0.3):
            mon.observe_attempt("gpu1", ok=False, now_ms=t)
        assert mon.state_of("gpu1") == QUARANTINED
        clock = {"gpu0": 0.0, "gpu1": 0.3}
        # Still inside the dwell: nothing happens.
        mon.maybe_readmit(0.31, clock)
        assert mon.state_of("gpu1") == QUARANTINED
        # Heal the device, serve the dwell: canaries pass -> probation.
        pool.by_name("gpu1").fault_rates = {}
        mon.maybe_readmit(0.5, clock)
        assert mon.state_of("gpu1") == PROBATION
        assert clock["gpu1"] > 0.3       # canary cost charged to gpu1
        assert clock["gpu0"] == 0.0      # ...and only to gpu1
        # Two clean probation chunks -> active.
        mon.observe_attempt("gpu1", ok=True, ratio=1.0, now_ms=0.6)
        mon.observe_attempt("gpu1", ok=True, ratio=1.0, now_ms=0.7)
        assert mon.state_of("gpu1") == ACTIVE

    def test_canaries_keep_faulty_device_quarantined(self):
        pool = make_pool(2, seed=1, hot=1)   # gpu1 fails every launch
        mon = HealthMonitor(pool, policy=quick_policy(), seed=9)
        for t in (0.1, 0.2, 0.3):
            mon.observe_attempt("gpu1", ok=False, now_ms=t)
        clock = {"gpu0": 0.0, "gpu1": 0.3}
        mon.maybe_readmit(0.5, clock)
        assert mon.state_of("gpu1") == QUARANTINED
        # The failed round restarted the dwell.
        assert mon.devices["gpu1"].quarantined_at_ms == 0.5
        assert mon.devices["gpu1"].canary_round == 1

    def test_probation_failure_requarantines_then_evicts(self):
        pool = make_pool(2, seed=1, spares=1)
        mon = HealthMonitor(pool, policy=quick_policy(max_roundtrips=2),
                            seed=9)
        clock = {n: 0.0 for n in ("gpu0", "gpu1", "spare0")}

        def cycle(base):
            for i in range(3):
                mon.observe_attempt("gpu1", ok=False,
                                    now_ms=base + 0.1 * i)
            assert mon.state_of("gpu1") == QUARANTINED
            mon.maybe_readmit(base + 1.0, clock)
            assert mon.state_of("gpu1") == PROBATION

        cycle(0.0)
        mon.observe_attempt("gpu1", ok=False, now_ms=1.1)  # probation fails
        assert mon.state_of("gpu1") == QUARANTINED          # round-trip 1
        assert mon.devices["gpu1"].roundtrips == 1
        mon.maybe_readmit(2.2, clock)
        assert mon.state_of("gpu1") == PROBATION
        mon.observe_attempt("gpu1", ok=False, now_ms=2.3)  # round-trip 2
        assert mon.state_of("gpu1") == EVICTED
        assert not mon.allows("gpu1")
        # The warm spare took its slot.
        assert mon.state_of("spare0") == ACTIVE
        assert pool.names == ["gpu0", "gpu1", "spare0"]
        assert pool.spare_names == []

    def test_state_dict_round_trip_reapplies_promotion(self):
        pool = make_pool(2, seed=1, spares=1)
        mon = HealthMonitor(pool, policy=quick_policy(max_roundtrips=1),
                            seed=9)
        clock = {n: 0.0 for n in ("gpu0", "gpu1", "spare0")}
        for i in range(3):
            mon.observe_attempt("gpu1", ok=False, now_ms=0.1 * (i + 1))
        mon.maybe_readmit(1.0, clock)
        mon.observe_attempt("gpu1", ok=False, now_ms=1.1)
        assert mon.state_of("gpu1") == EVICTED

        fresh_pool = make_pool(2, seed=1, spares=1)
        fresh = HealthMonitor(fresh_pool,
                              policy=quick_policy(max_roundtrips=1),
                              seed=9)
        fresh.load_state_dict(mon.state_dict())
        assert fresh.state_of("gpu1") == EVICTED
        assert fresh.state_of("spare0") == ACTIVE
        assert fresh_pool.names == pool.names       # promotion re-applied
        assert fresh_pool.spare_names == []
        assert fresh.transitions == mon.transitions
        assert fresh.devices["gpu1"].ewma_fault == \
            mon.devices["gpu1"].ewma_fault

    def test_spares_start_outside_placement(self):
        pool = make_pool(2, seed=1, spares=2)
        mon = HealthMonitor(pool)
        assert mon.state_of("spare0") == SPARE
        assert not mon.allows("spare0")
        assert pool.names == ["gpu0", "gpu1"]


# ---------------------------------------------------------------------------
# Acceptance: brownout chaos (satellite 3)


def brownout_pool():
    """gpu1 browns out (3x latency, open-ended) from t=0; no faults."""
    return make_pool(3, seed=5, hot=1,
                     hot_processes=(BrownoutProcess(multiplier=3.0),))


class TestBrownoutAcceptance:
    JOBS = 4

    def run_once(self, pool_fn, seed=13):
        col = telemetry.deterministic_collector(seed)
        with telemetry.collect(col):
            sched = make_sched(pool_fn(), seed=seed,
                               health_policy=quick_policy())
            reports = [sched.run_job(make_job(batch(), job_id=f"j{i}"))
                       for i in range(self.JOBS)]
        return sched, reports, col

    def test_brownout_device_ends_quarantined_with_zero_failures(self):
        sched, reports, _ = self.run_once(brownout_pool)
        assert all(r.ok for r in reports)
        assert sum(len(r.failed_chunks) for r in reports) == 0
        assert sum(len(r.degraded_chunks) for r in reports) == 0
        assert sched.health.state_of("gpu1") == QUARANTINED
        # Once quarantined, gpu1 serves nothing.
        quarantined_at = next(t["at_ms"] for t in sched.health.transitions
                              if t["to"] == QUARANTINED)
        for r in reports:
            for c in r.chunks:
                if c.device == "gpu1":
                    assert c.start_ms <= quarantined_at
        # And the solutions are right.
        rel = np.abs(reports[-1].x)
        assert np.all(np.isfinite(rel))

    def test_p99_within_2x_of_healthy_baseline(self):
        sched_hot, _, _ = self.run_once(brownout_pool)
        sched_ok, _, _ = self.run_once(lambda: make_pool(3, seed=5))
        p99_hot = sched_hot.slo.snapshot()["standard"]["latency_ms"]["p99"]
        p99_ok = sched_ok.slo.snapshot()["standard"]["latency_ms"]["p99"]
        assert p99_hot <= 2.0 * p99_ok

    def test_same_seed_runs_bitwise_identical(self):
        sched_a, reports_a, col_a = self.run_once(brownout_pool)
        sched_b, reports_b, col_b = self.run_once(brownout_pool)
        assert [r.to_dict() for r in reports_a] == \
            [r.to_dict() for r in reports_b]
        assert sched_a.health.transitions == sched_b.health.transitions
        assert sched_a.health.snapshot() == sched_b.health.snapshot()
        assert telemetry.to_jsonl(col_a) == telemetry.to_jsonl(col_b)
        assert telemetry.prometheus_text(col_a) == \
            telemetry.prometheus_text(col_b)

    def test_health_gauges_and_lifecycle_counters_exported(self):
        _, _, col = self.run_once(brownout_pool)
        snap = col.metrics.snapshot()
        assert any(k.startswith("serve.health_score")
                   for k in snap["gauges"])
        assert any(k.startswith("serve.lifecycle_transitions")
                   for k in snap["counters"])
        assert any(k.startswith("serve.canary_total")
                   for k in snap["counters"])


# ---------------------------------------------------------------------------
# Acceptance: brownout + flap + warm spare (the tentpole chaos scenario)


def chaos_pool():
    """gpu1 flaps (seeded fault bursts), gpu2 browns out for a window,
    one warm spare waits."""
    devices = [
        PooledDevice("gpu0", GTX280, seed=derive_seed(5, 0)),
        PooledDevice("gpu1", GTX280, seed=derive_seed(5, 1),
                     processes=(FlappingProcess(
                         seed=derive_seed(5, "flap"), period_ms=0.05,
                         duty=0.6, fault_rate=1.0),)),
        PooledDevice("gpu2", GTX280, seed=derive_seed(5, 2),
                     processes=(BrownoutProcess(
                         start_ms=0.0, duration_ms=0.3,
                         multiplier=3.0),)),
    ]
    spares = [PooledDevice("spare0", GTX280,
                           seed=derive_seed(5, "spare", 0))]
    return DevicePool(devices, spares=spares)


def chaos_sched(pool, **kw):
    kw.setdefault("failure_threshold", 2)
    kw.setdefault("cooldown_ms", 0.1)
    kw.setdefault("seed", 13)
    kw.setdefault("health_policy",
                  quick_policy(max_roundtrips=1, probation_chunks=2))
    return make_sched(pool, **kw)


class TestChaosLifecycleAcceptance:
    JOBS = 16

    def run_once(self, seed=13, **kw):
        col = telemetry.deterministic_collector(seed)
        with telemetry.collect(col):
            sched = chaos_sched(chaos_pool(), seed=seed, **kw)
            reports = [sched.run_job(make_job(batch(), job_id=f"j{i}"))
                       for i in range(self.JOBS)]
        return sched, reports, col

    def test_no_failed_jobs_flapper_evicted_spare_promoted(self):
        sched, reports, _ = self.run_once()
        assert all(r.ok for r in reports)
        assert sum(len(r.failed_chunks) for r in reports) == 0
        # The flapping device made its quarantine round-trip and was
        # evicted; the warm spare was promoted and served chunks.
        assert sched.health.state_of("gpu1") == EVICTED
        assert sched.health.state_of("spare0") == ACTIVE
        assert sched.pool.names == ["gpu0", "gpu1", "gpu2", "spare0"]
        assert sched.pool.spare_names == []
        spare_chunks = sum(r.devices_used().get("spare0", 0)
                           for r in reports)
        assert spare_chunks > 0
        # The browned-out device recovered after its window: full
        # quarantine -> canary -> probation -> active arc in the log.
        arc = [(t["to"], t["reason"]) for t in sched.health.transitions
               if t["device"] == "gpu2"]
        assert (QUARANTINED, "signal") in arc
        assert (PROBATION, "canary_ok") in arc
        assert (ACTIVE, "probation_ok") in arc

    def test_evicted_device_serves_nothing_afterwards(self):
        sched, reports, _ = self.run_once()
        evicted_at = next(t["at_ms"] for t in sched.health.transitions
                          if t["to"] == EVICTED)
        for r in reports:
            for c in r.chunks:
                assert not (c.device == "gpu1" and c.start_ms > evicted_at)

    def test_same_seed_chaos_runs_bitwise_identical(self):
        sched_a, reports_a, col_a = self.run_once()
        sched_b, reports_b, col_b = self.run_once()
        assert [r.to_dict() for r in reports_a] == \
            [r.to_dict() for r in reports_b]
        assert sched_a.health.transitions == sched_b.health.transitions
        assert telemetry.to_jsonl(col_a) == telemetry.to_jsonl(col_b)


# ---------------------------------------------------------------------------
# Hedged chunk execution


class TestHedgedChunks:
    def run_once(self, hedge_ratio=1.5, seed=13):
        col = telemetry.deterministic_collector(seed)
        with telemetry.collect(col):
            sched = make_sched(brownout_pool(), seed=seed,
                               hedge_ratio=hedge_ratio,
                               health_policy=quick_policy())
            reports = [sched.run_job(make_job(batch(), job_id=f"j{i}"))
                       for i in range(2)]
        return sched, reports, col

    def all_attempts(self, reports):
        return [a for r in reports for c in r.chunks for a in c.attempts]

    def test_slow_chunks_get_hedged_and_loser_is_cancelled(self):
        _, reports, col = self.run_once()
        outcomes = [a.outcome for a in self.all_attempts(reports)]
        assert "hedge_cancelled" in outcomes
        hedges = col.metrics.snapshot()["counters"].get(
            "serve.hedges_total", {})
        launched = sum(v for k, v in hedges.items()
                       if "outcome=launched" in k)
        settled = sum(v for k, v in hedges.items()
                      if "outcome=won" in k or "outcome=cancelled" in k
                      or "outcome=failed" in k)
        assert launched > 0
        # Every launched hedge settles the race one way or the other
        # (cancelled counts both losing hedges and cancelled primaries,
        # hence >=).
        assert settled >= launched
        assert all(r.ok for r in reports)

    def test_hedging_disabled_by_default(self):
        sched, reports, _ = self.run_once(hedge_ratio=None)
        assert sched.hedge_ratio is None
        assert not any(a.outcome.startswith("hedge")
                       for a in self.all_attempts(reports))

    def test_hedged_runs_are_deterministic(self):
        _, reports_a, col_a = self.run_once()
        _, reports_b, col_b = self.run_once()
        assert [r.to_dict() for r in reports_a] == \
            [r.to_dict() for r in reports_b]
        assert telemetry.to_jsonl(col_a) == telemetry.to_jsonl(col_b)

    def test_device_outcomes_table_counts_hedges(self):
        _, reports, _ = self.run_once()
        agg: dict[str, int] = {}
        for r in reports:
            for dev, row in r.device_outcomes().items():
                agg[dev] = agg.get(dev, 0) + row["hedged"]
        assert sum(agg.values()) > 0


# ---------------------------------------------------------------------------
# Kill/resume: lifecycle + hedging state round-trips through checkpoints


class TestHealthCheckpointResume:
    def big_job(self, **kw):
        systems = diagonally_dominant_fluid(48, 64, seed=11)
        return make_job(systems, **kw)

    def sched_for(self, tmp_path, tag):
        return make_sched(brownout_pool(), seed=13, hedge_ratio=1.5,
                          health_policy=quick_policy(quarantine_ms=0.005),
                          checkpoint_dir=str(tmp_path / tag))

    def test_resumed_run_matches_straight_run_bitwise(self, tmp_path):
        straight = self.sched_for(tmp_path, "a")
        full = straight.run_job(self.big_job(job_id="kr"))
        assert full.ok
        # The lifecycle actually engaged mid-job.
        assert straight.health.transitions

        killed = self.sched_for(tmp_path, "b")
        partial = killed.run_job(self.big_job(job_id="kr"), stop_after=5)
        assert partial.outcome == "stopped"

        resumed_sched = self.sched_for(tmp_path, "b")
        resumed = resumed_sched.run_job(self.big_job(job_id="kr"),
                                        resume=True)
        assert resumed.ok
        assert resumed.restored_chunks == [0, 1, 2, 3]
        assert np.array_equal(resumed.x, full.x)
        assert resumed.solution_digest() == full.solution_digest()
        assert {c.chunk_id: c.device for c in full.chunks} == \
            {c.chunk_id: c.device for c in resumed.chunks}
        # The health picture converges to the straight run's.
        assert {n: h.state
                for n, h in resumed_sched.health.devices.items()} == \
            {n: h.state for n, h in straight.health.devices.items()}

    def test_two_killed_and_resumed_runs_identical(self, tmp_path):
        def killed_resumed(tag):
            sched = self.sched_for(tmp_path, tag)
            sched.run_job(self.big_job(job_id="kr"), stop_after=5)
            sched = self.sched_for(tmp_path, tag)
            report = sched.run_job(self.big_job(job_id="kr"), resume=True)
            return sched, report

        sched_a, rep_a = killed_resumed("x")
        sched_b, rep_b = killed_resumed("y")
        assert rep_a.to_dict() == rep_b.to_dict()
        assert sched_a.health.snapshot() == sched_b.health.snapshot()

    def test_health_survives_checkpoint_state_line(self, tmp_path):
        import json
        sched = self.sched_for(tmp_path, "c")
        sched.run_job(self.big_job(job_id="kr"), stop_after=5)
        path = tmp_path / "c" / "kr.jsonl"
        states = [json.loads(line) for line in path.read_text().splitlines()
                  if json.loads(line).get("type") == "state"]
        assert states and "health" in states[-1]
        assert "gpu1" in states[-1]["health"]["devices"]
