"""Bounded admission queue: backpressure and typed rejections."""

import pytest

from repro import telemetry
from repro.numerics.generators import diagonally_dominant_fluid
from repro.serve import (AdmissionError, BoundedJobQueue,
                         DeadlineUnmeetableError, QueueFullError, SolveJob)

from .conftest import make_job


@pytest.fixture
def small_batch():
    return diagonally_dominant_fluid(4, 32, seed=3)


def test_fifo_order(small_batch):
    q = BoundedJobQueue(capacity=4)
    for name in ("a", "b", "c"):
        q.submit(make_job(small_batch, job_id=name))
    assert [q.pop().job_id for _ in range(3)] == ["a", "b", "c"]
    assert q.pop() is None


def test_capacity_rejection_is_typed(small_batch):
    q = BoundedJobQueue(capacity=2)
    q.submit(make_job(small_batch, job_id="a"))
    q.submit(make_job(small_batch, job_id="b"))
    with pytest.raises(QueueFullError) as exc:
        q.submit(make_job(small_batch, job_id="c"))
    assert exc.value.reason == "capacity"
    assert isinstance(exc.value, AdmissionError)
    assert q.depth == 2
    assert q.rejected == {"capacity": 1}
    # The message carries enough context to debug multi-tenant
    # rejections: depth/capacity plus the job's tenant and class.
    msg = str(exc.value)
    assert "2/2" in msg
    assert "'c'" in msg
    assert "tenant 'default'" in msg
    assert "class 'standard'" in msg


def test_pop_frees_capacity(small_batch):
    q = BoundedJobQueue(capacity=1)
    q.submit(make_job(small_batch, job_id="a"))
    assert q.pop().job_id == "a"
    q.submit(make_job(small_batch, job_id="b"))   # no raise
    assert q.depth == 1


def test_unmeetable_deadline_rejected_up_front(small_batch):
    q = BoundedJobQueue(capacity=4, estimator=lambda job: 100.0)
    with pytest.raises(DeadlineUnmeetableError) as exc:
        q.submit(make_job(small_batch, job_id="a", deadline_ms=1.0))
    assert exc.value.reason == "deadline_unmeetable"
    assert q.depth == 0


def test_feasible_deadline_admitted(small_batch):
    q = BoundedJobQueue(capacity=4, estimator=lambda job: 100.0)
    q.submit(make_job(small_batch, job_id="a", deadline_ms=200.0))
    assert q.depth == 1


def test_no_estimator_means_capacity_only(small_batch):
    q = BoundedJobQueue(capacity=4)
    q.submit(make_job(small_batch, job_id="a", deadline_ms=1e-9))
    assert q.depth == 1


def test_depth_gauge_and_rejection_counter(small_batch):
    with telemetry.collect() as col:
        q = BoundedJobQueue(capacity=1)
        q.submit(make_job(small_batch, job_id="a"))
        with pytest.raises(QueueFullError):
            q.submit(make_job(small_batch, job_id="b"))
        q.pop()
    metrics = col.metrics
    assert metrics.gauge("serve.queue_depth").value() == 0
    assert metrics.counter("serve.queue_rejected").value(
        reason="capacity", cls="standard", tenant="default") == 1


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        BoundedJobQueue(capacity=0)
