"""Export sinks: JSONL, Chrome trace, text summary, breakdown agreement."""

import json
import math

import pytest

from repro import telemetry
from repro.analysis.breakdown import resource_breakdown
from repro.gpusim import gt200_cost_model
from repro.kernels.api import run_cr
from repro.telemetry.export import (chrome_trace, phase_totals,
                                    text_summary, to_jsonl)


@pytest.fixture
def collected(dominant_small):
    with telemetry.collect() as col:
        with telemetry.span("solve", method="cr"):
            run_cr(dominant_small)
        telemetry.event("done", note="test")
    return col


class TestJsonl:
    def test_every_line_parses(self, collected):
        lines = to_jsonl(collected).splitlines()
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["type"] == "meta"
        assert parsed[0]["format"] == "repro.telemetry/v1"
        types = {p["type"] for p in parsed}
        assert types == {"meta", "span", "event", "launch", "metrics"}

    def test_launch_line_embeds_trace(self, collected):
        launches = [json.loads(line)
                    for line in to_jsonl(collected).splitlines()
                    if json.loads(line)["type"] == "launch"]
        assert len(launches) == 1
        trace = launches[0]["trace"]
        assert trace["num_blocks"] == 8
        assert "phases" in trace["ledger"]


class TestChromeTrace:
    def test_one_slice_per_ledger_phase(self, collected):
        doc = chrome_trace(collected)
        ledger = collected.launches[0].result.ledger
        slices = [e for e in doc["traceEvents"]
                  if e["ph"] == "X" and e.get("cat") == "phase"]
        sliced_phases = {e["name"] for e in slices}
        assert sliced_phases == set(ledger.phases)
        for e in slices:
            assert e["dur"] > 0
            assert e["pid"] == 0

    def test_phase_tracks_are_named(self, collected):
        doc = chrome_trace(collected)
        names = [e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"]
        for phase in collected.launches[0].result.ledger.phases:
            assert f"phase:{phase}" in names

    def test_wall_spans_on_host_track(self, collected):
        doc = chrome_trace(collected)
        host = [e for e in doc["traceEvents"]
                if e.get("pid") == 1 and e["ph"] == "X"]
        assert any(e["name"] == "solve" for e in host)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert any(e["name"] == "done" for e in instants)

    def test_document_is_json_serializable(self, collected):
        json.dumps(chrome_trace(collected))


class TestBreakdownAgreement:
    def test_phase_totals_match_cost_model_report(self, collected):
        cm = gt200_cost_model()
        rep = cm.report(collected.launches[0].result)
        totals = phase_totals(collected)
        assert set(totals) == set(rep.phases)
        for name, pt in rep.phases.items():
            assert math.isclose(totals[name]["total_ms"], pt.total_ms)
            assert math.isclose(totals[name]["shared_ms"], pt.shared_ms)

    def test_resource_split_matches_breakdown(self, collected):
        res = collected.launches[0].result
        rb = resource_breakdown(res)
        cm = gt200_cost_model()
        rep = cm.report(res)
        assert math.isclose(rep.global_ms, rb.global_ms)
        assert math.isclose(rep.shared_ms, rb.shared_ms)
        assert math.isclose(rep.compute_ms, rb.compute_ms)


class TestSummary:
    def test_summary_mentions_launch_and_phases(self, collected):
        text = text_summary(collected)
        assert "cr_kernel" in text
        assert "per-phase modeled time" in text
        for phase in collected.launches[0].result.ledger.phases:
            assert phase in text

    def test_summary_without_launches(self):
        with telemetry.collect() as col:
            with telemetry.span("idle"):
                pass
        text = text_summary(col)
        assert "launches: 0" in text
        assert "idle" in text
