"""CUPTI-style callback registry, exercised through real launches."""

import numpy as np

from repro import telemetry
from repro.gpusim import launch
from repro.telemetry import callbacks as cb


def sample_kernel(ctx):
    arr = ctx.shared(64)
    with ctx.phase("work"):
        ctx.set_active(32)
        with ctx.step():
            ctx.sload(arr, np.arange(32))
            ctx.ops(2)
            ctx.sync()


class TestRegistry:
    def test_emit_without_subscribers_is_noop(self):
        assert not cb.has_subscribers()
        cb.emit(cb.DOMAIN_LAUNCH, cb.SITE_BEGIN, kernel="k")

    def test_subscribe_receives_launch_lifecycle(self):
        seen = []
        handle = cb.subscribe(seen.append)
        try:
            launch(sample_kernel, num_blocks=2, threads_per_block=32)
        finally:
            cb.unsubscribe(handle)
        domains = [(i.domain, i.site) for i in seen]
        assert domains[0] == (cb.DOMAIN_LAUNCH, cb.SITE_BEGIN)
        assert domains[-1] == (cb.DOMAIN_LAUNCH, cb.SITE_END)
        assert (cb.DOMAIN_PHASE, cb.SITE_BEGIN) in domains
        assert (cb.DOMAIN_PHASE, cb.SITE_END) in domains
        assert (cb.DOMAIN_STEP, cb.SITE_RECORD) in domains
        begin = seen[0].payload
        assert begin["kernel"] == "sample_kernel"
        assert begin["num_blocks"] == 2
        end = seen[-1].payload
        assert end["result"] is not None
        assert "work" in end["result"].ledger.phases

    def test_step_payload_carries_counters(self):
        seen = []
        handle = cb.subscribe(seen.append)
        try:
            launch(sample_kernel, num_blocks=1, threads_per_block=32)
        finally:
            cb.unsubscribe(handle)
        steps = [i for i in seen if i.domain == cb.DOMAIN_STEP]
        assert len(steps) == 1
        assert steps[0].payload["phase"] == "work"
        assert steps[0].payload["index"] == 0
        assert steps[0].payload["counters"].shared_words > 0

    def test_unsubscribe_stops_delivery(self):
        seen = []
        handle = cb.subscribe(seen.append)
        cb.unsubscribe(handle)
        launch(sample_kernel, num_blocks=1, threads_per_block=32)
        assert seen == []
        assert not cb.has_subscribers()


class TestCollectorIntegration:
    def test_collect_records_launch_and_metrics(self):
        with telemetry.collect() as col:
            launch(sample_kernel, num_blocks=3, threads_per_block=32)
        assert len(col.launches) == 1
        rec = col.launches[0]
        assert rec.kernel == "sample_kernel"
        assert rec.num_blocks == 3
        assert rec.result is not None
        assert col.metrics.counter("sim.launches").value(
            kernel="sample_kernel") == 1
        assert col.metrics.counter("sim.steps").value(phase="work") == 1
        deg = col.metrics.histogram("sim.conflict_degree")
        assert deg.count(phase="work") == 1

    def test_launch_failure_still_closes_record(self):
        def bad_kernel(ctx):
            with ctx.phase("boom"):
                raise RuntimeError("kernel error")

        with telemetry.collect() as col:
            try:
                launch(bad_kernel, num_blocks=1, threads_per_block=32)
            except RuntimeError:
                pass
        assert len(col.launches) == 1
        assert col.launches[0].result is None
