"""Streaming (log-linear) histogram: edge cases and oracle agreement.

The streaming :class:`~repro.telemetry.metrics.Histogram` replaced the
exact list-backed implementation; that implementation survives as
``_ReferenceHistogram`` and these tests hold the two to the contract:
identical count/sum/min/max/mean, and quantiles that agree to within
one log-linear bucket (relative error ``<= 1/SUBBUCKETS`` per edge).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.metrics import (SUBBUCKETS, Histogram, HistogramSeries,
                                     _ReferenceHistogram, bucket_index,
                                     bucket_lower, bucket_upper)


def close_within_bucket(streaming: float, exact: float) -> bool:
    """True when a streaming quantile is within one bucket of the exact
    one: same sign, relative error bounded by the bucket width."""
    if streaming == exact:
        return True
    if exact == 0.0 or streaming == 0.0:
        return abs(streaming - exact) <= 2.0 ** -60
    if (streaming > 0) != (exact > 0):
        return False
    lo, hi = sorted([abs(streaming), abs(exact)])
    return hi / lo <= 1.0 + 2.0 / SUBBUCKETS


class TestBucketMath:
    def test_zero_has_its_own_bucket(self):
        assert bucket_index(0.0) == 0
        assert bucket_lower(0) == 0.0

    def test_indices_sort_like_values(self):
        values = [-16.0, -1.5, -1e-9, 0.0, 1e-9, 0.75, 1.0, 3.0, 1e12]
        indices = [bucket_index(v) for v in values]
        assert indices == sorted(indices)

    def test_lower_edge_round_trips(self):
        for v in [1.0, 1.5, 2.0, 3.75, 0.001, 12345.6789, 1e-18, 1e18]:
            idx = bucket_index(v)
            assert bucket_lower(idx) <= v < bucket_upper(idx)
            neg = bucket_index(-v)
            assert neg == -idx

    def test_subnormal_magnitudes_clamp_to_smallest_bucket(self):
        # Magnitudes below 2**MIN_EXP share the smallest nonzero bucket;
        # only min/max retain them exactly.
        assert bucket_index(1e-30) == bucket_index(1e-95) == 1
        assert bucket_index(-1e-30) == -1

    def test_infinities_clamp_to_top_bucket(self):
        top = bucket_index(math.inf)
        assert bucket_index(1e308) <= top
        assert bucket_index(-math.inf) == -top


class TestEdgeCases:
    def test_empty_series(self):
        s = HistogramSeries()
        assert s.summary() == {"count": 0}
        assert math.isnan(s.quantile(0.5))
        assert s.cumulative() == []

    def test_single_sample_is_exact(self):
        h = Histogram("h")
        h.observe(3.7)
        s = h.summary()
        assert s["count"] == 1
        assert s["min"] == s["max"] == s["p50"] == s["p99"] == 3.7
        assert s["sum"] == 3.7

    def test_all_equal_values_are_exact(self):
        h = Histogram("h")
        for _ in range(1000):
            h.observe(0.125)
        s = h.summary()
        assert s["p50"] == s["p95"] == s["p99"] == 0.125
        assert s["mean"] == 0.125

    def test_nan_is_dropped(self):
        h = Histogram("h")
        h.observe(float("nan"))
        h.observe(1.0)
        assert h.count() == 1
        assert h.summary()["max"] == 1.0

    def test_negative_and_zero_values(self):
        h = Histogram("h")
        for v in [-4.0, -1.0, 0.0, 1.0, 4.0]:
            h.observe(v)
        s = h.summary()
        assert s["min"] == -4.0 and s["max"] == 4.0
        assert s["p50"] == 0.0

    def test_merge_of_disjoint_bucket_ranges(self):
        lo = HistogramSeries()
        hi = HistogramSeries()
        for v in [1e-6, 2e-6, 4e-6]:
            lo.observe(v)
        for v in [1e6, 2e6, 4e6]:
            hi.observe(v)
        assert not set(lo.counts) & set(hi.counts)
        lo.merge(hi)
        assert lo.count == 6
        assert lo.min == 1e-6 and lo.max == 4e6
        assert lo.quantile(0.0) == pytest.approx(1e-6, rel=1 / SUBBUCKETS)
        assert lo.quantile(0.99) == pytest.approx(4e6, rel=1 / SUBBUCKETS)

    def test_histogram_merge_is_labelwise(self):
        a = Histogram("a")
        b = Histogram("b")
        a.observe(1.0, cls="x")
        b.observe(2.0, cls="x")
        b.observe(3.0, cls="y")
        a.merge(b)
        assert a.count(cls="x") == 2
        assert a.count(cls="y") == 1

    def test_memory_is_bounded_by_buckets_not_samples(self):
        s = HistogramSeries()
        for i in range(50_000):
            s.observe(1.0 + (i % 997) / 997.0)   # all within [1, 2)
        assert s.count == 50_000
        # Everything lands inside one power of two: at most SUBBUCKETS
        # occupied buckets, regardless of sample count.
        assert len(s.counts) <= SUBBUCKETS


# Values within the histogram's log-linear range (|v| in [2**-60, 1e18]
# or exactly zero); tinier magnitudes clamp to the smallest bucket and
# are covered by the explicit edge-case tests above.
finite_values = st.one_of(
    st.just(0.0),
    st.floats(min_value=2.0 ** -60, max_value=1e18),
    st.floats(min_value=-1e18, max_value=-(2.0 ** -60)),
)


class TestOracleAgreement:
    """Property tests against the exact list-backed oracle."""

    @settings(max_examples=200, deadline=None)
    @given(st.lists(finite_values, min_size=1, max_size=200))
    def test_quantiles_agree_within_one_bucket(self, values):
        streaming = Histogram("s")
        oracle = _ReferenceHistogram("o")
        for v in values:
            streaming.observe(v)
            oracle.observe(v)
        s = streaming.summary()
        o = oracle.summary()
        assert s["count"] == o["count"]
        assert s["min"] == o["min"] and s["max"] == o["max"]
        assert s["sum"] == pytest.approx(o["sum"], rel=1e-9, abs=1e-9)
        for q in ("p50", "p95", "p99"):
            assert close_within_bucket(s[q], o[q]), \
                f"{q}: streaming {s[q]!r} vs exact {o[q]!r}"

    @settings(max_examples=100, deadline=None)
    @given(st.lists(finite_values, min_size=1, max_size=100),
           st.lists(finite_values, min_size=1, max_size=100))
    def test_merge_equals_combined_observation(self, xs, ys):
        merged = HistogramSeries()
        for v in xs:
            merged.observe(v)
        other = HistogramSeries()
        for v in ys:
            other.observe(v)
        merged.merge(other)

        combined = HistogramSeries()
        for v in xs + ys:
            combined.observe(v)
        assert merged.counts == combined.counts
        assert merged.count == combined.count
        assert merged.min == combined.min and merged.max == combined.max
        for q in (0.5, 0.95, 0.99):
            assert merged.quantile(q) == combined.quantile(q)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(finite_values, min_size=1, max_size=200))
    def test_quantile_lies_within_observed_range(self, values):
        s = HistogramSeries()
        for v in values:
            s.observe(v)
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            est = s.quantile(q)
            assert s.min <= est <= s.max

    @settings(max_examples=100, deadline=None)
    @given(st.lists(finite_values, min_size=1, max_size=200))
    def test_cumulative_is_monotonic_and_totals(self, values):
        s = HistogramSeries()
        for v in values:
            s.observe(v)
        cum = s.cumulative()
        counts = [c for _edge, c in cum]
        assert counts == sorted(counts)
        assert counts[-1] == s.count
