"""Metrics registry: counters, gauges, histograms, snapshots."""

import pytest

from repro.telemetry.metrics import (Counter, Gauge, Histogram,
                                     MetricsRegistry)


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter("hits")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labels_keep_separate_series(self):
        c = Counter("ms")
        c.inc(1.0, solver="cr")
        c.inc(2.0, solver="pcr")
        c.inc(1.5, solver="cr")
        assert c.value(solver="cr") == 2.5
        assert c.value(solver="pcr") == 2.0

    def test_label_order_does_not_matter(self):
        c = Counter("x")
        c.inc(1.0, a=1, b=2)
        c.inc(1.0, b=2, a=1)
        assert c.value(a=1, b=2) == 2.0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("occupancy")
        g.set(4)
        g.set(8)
        assert g.value() == 8


class TestHistogram:
    def test_summary_statistics(self):
        h = Histogram("deg")
        for v in [1, 2, 2, 4, 16]:
            h.observe(v)
        s = h.summary()
        assert s["count"] == 5
        assert s["sum"] == 25
        assert s["min"] == 1 and s["max"] == 16
        assert s["p50"] == 2

    def test_labelled_series_stay_separate(self):
        h = Histogram("deg")
        h.observe(2, phase="fwd")
        h.observe(8, phase="bwd")
        assert h.count(phase="fwd") == 1
        assert h.count(phase="bwd") == 1
        assert h.quantile(0.5, phase="fwd") == 2
        assert h.quantile(0.5, phase="bwd") == 8


class TestRegistry:
    def test_lazy_creation_and_reuse(self):
        reg = MetricsRegistry()
        c1 = reg.counter("launches")
        c2 = reg.counter("launches")
        assert c1 is c2
        assert "launches" in reg

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(TypeError):
            reg.gauge("m")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("launches").inc(3, solver="cr")
        reg.gauge("blocks").set(8)
        reg.histogram("deg").observe(4)
        snap = reg.snapshot()
        assert snap["counters"]["launches"] == {"{solver=cr}": 3.0}
        assert snap["gauges"]["blocks"] == {"_": 8}
        assert snap["histograms"]["deg"]["_"]["count"] == 1


class TestResilienceHelpers:
    """fallback_total / residual_max recording (docs/robustness.md)."""

    def test_noop_without_collector(self):
        from repro import telemetry
        from repro.telemetry.metrics import (record_fallback,
                                             record_residual_max)
        assert not telemetry.enabled()
        record_fallback("cr_pcr", "pcr", "residual")    # must not raise
        record_residual_max(1e-7, "cr_pcr")

    def test_recorded_under_collector(self):
        from repro import telemetry
        from repro.telemetry.metrics import (FALLBACK_TOTAL, RESIDUAL_MAX,
                                             record_fallback,
                                             record_residual_max)
        with telemetry.collect() as col:
            record_fallback("cr_pcr", "pcr", "corruption", count=3)
            record_residual_max(0.25, "pcr")
        c = col.metrics.counter(FALLBACK_TOTAL, "")
        assert c.value(**{"from": "cr_pcr", "to": "pcr",
                          "reason": "corruption"}) == 3
        h = col.metrics.histogram(RESIDUAL_MAX, "")
        assert h.count(method="pcr") == 1
        assert h.summary(method="pcr")["max"] == 0.25

    def test_rendered_in_text_summary(self):
        from repro import telemetry
        from repro.telemetry.metrics import (record_fallback,
                                             record_residual_max)
        with telemetry.collect() as col:
            record_fallback("cr_pcr", "gep", "unstable")
            record_residual_max(1e-6, "gep")
        text = telemetry.text_summary(col)
        assert "cr_pcr -> gep [unstable]: 1" in text
        assert "gep:" in text
