"""SLO registry: per-class accounting, burn rate, attribution."""

import json

import pytest

from repro.telemetry.slo import (DEFAULT_CLASS, DEFAULT_CLASSES, SLOClass,
                                 SLORegistry)


class TestSLOClass:
    def test_defaults_are_tiered(self):
        names = [c.name for c in DEFAULT_CLASSES]
        assert names == ["interactive", "standard", "batch"]
        bounds = [c.latency_p99_ms for c in DEFAULT_CLASSES]
        assert bounds == sorted(bounds)
        assert DEFAULT_CLASS == "standard"

    def test_budget_fraction(self):
        assert SLOClass("x", 5.0).budget_fraction() == pytest.approx(0.01)
        assert SLOClass("x", 5.0, objective=0.9).budget_fraction() == \
            pytest.approx(0.1)
        # A 100% objective must not divide by zero.
        assert SLOClass("x", 5.0, objective=1.0).budget_fraction() > 0


class TestRecording:
    def test_good_vs_violation_split(self):
        reg = SLORegistry()
        reg.record_job("standard", 10.0, "ok")      # within 50ms
        reg.record_job("standard", 80.0, "ok")      # over the bound
        reg.record_job("standard", 10.0, "failed")  # fast but not ok
        snap = reg.snapshot()["standard"]
        assert snap["jobs"] == 3
        assert snap["good"] == 1
        assert snap["violations"] == 2
        assert snap["outcomes"] == {"failed": 1, "ok": 2}

    def test_deadline_miss_attribution(self):
        reg = SLORegistry()
        reg.record_job("batch", 600.0, "deadline", deadline_slack_ms=-100.0)
        snap = reg.snapshot()["batch"]
        assert snap["deadline_misses"] == 1
        assert snap["deadline_slack_ms"]["max"] == -100.0

    def test_unknown_class_auto_registers(self):
        reg = SLORegistry()
        reg.record_job("mystery", 1.0, "ok")
        assert "mystery" in reg
        assert reg.slo_for("mystery").latency_p99_ms == 500.0
        assert "mystery" in reg.class_names()

    def test_shed_reasons_accumulate(self):
        reg = SLORegistry()
        reg.record_shed("interactive", "capacity")
        reg.record_shed("interactive", "capacity")
        reg.record_shed("interactive", "deadline_unmeetable")
        snap = reg.snapshot()["interactive"]
        assert snap["shed"] == 3
        assert snap["shed_reasons"] == {"capacity": 2,
                                        "deadline_unmeetable": 1}

    def test_breaker_trips_by_device(self):
        reg = SLORegistry()
        reg.record_breaker_trip("standard", "gpu0")
        reg.record_breaker_trip("standard", "gpu0")
        reg.record_breaker_trip("standard", "gpu1")
        snap = reg.snapshot()["standard"]
        assert snap["breaker_trips"] == {"gpu0": 2, "gpu1": 1}


class TestBurnRate:
    def test_zero_before_traffic(self):
        reg = SLORegistry()
        assert reg.snapshot()["standard"]["burn_rate"] == 0.0

    def test_all_good_burns_nothing(self):
        reg = SLORegistry()
        for _ in range(100):
            reg.record_job("standard", 1.0, "ok")
        assert reg.snapshot()["standard"]["burn_rate"] == 0.0

    def test_sustainable_pace_is_one(self):
        # objective 0.99: 1 violation in 100 jobs burns at exactly 1.0.
        reg = SLORegistry()
        for _ in range(99):
            reg.record_job("standard", 1.0, "ok")
        reg.record_job("standard", 100.0, "ok")
        assert reg.snapshot()["standard"]["burn_rate"] == pytest.approx(1.0)

    def test_shed_jobs_burn_budget(self):
        reg = SLORegistry()
        for _ in range(99):
            reg.record_job("standard", 1.0, "ok")
        reg.record_shed("standard", "capacity")
        assert reg.snapshot()["standard"]["burn_rate"] == pytest.approx(1.0)


class TestReporting:
    def fill(self, reg):
        reg.record_job("interactive", 2.0, "ok")
        reg.record_job("interactive", 9.0, "ok")
        reg.record_queue_wait("interactive", 0.5)
        reg.record_job("batch", 450.0, "ok", deadline_slack_ms=50.0)
        reg.record_shed("standard", "capacity")
        reg.record_breaker_trip("batch", "gpu1")

    def test_snapshot_is_json_stable(self):
        a, b = SLORegistry(), SLORegistry()
        self.fill(a)
        self.fill(b)
        assert json.dumps(a.snapshot(), sort_keys=True) == \
            json.dumps(b.snapshot(), sort_keys=True)

    def test_report_layout(self):
        reg = SLORegistry()
        self.fill(reg)
        text = reg.report()
        lines = text.splitlines()
        assert lines[0] == "== SLO report =="
        assert "class" in lines[1] and "burn" in lines[1]
        # Classes sorted, one row each.
        rows = [ln for ln in lines[2:] if not ln.strip().startswith("--")
                and not ln.strip().startswith(("shed", "breaker",
                                               "deadline"))]
        assert [r.split()[0] for r in rows] == ["batch", "interactive",
                                                "standard"]
        assert "-- attribution --" in text
        assert "shed    standard: [capacity] 1" in text
        assert "breaker batch: gpu1 tripped x1" in text

    def test_report_with_only_shed_jobs(self):
        # A class that only ever shed must render, with dashes for
        # quantiles (no latency samples exist).
        reg = SLORegistry()
        reg.record_shed("standard", "capacity")
        text = reg.report()
        row = next(ln for ln in text.splitlines()
                   if ln.strip().startswith("standard"))
        assert row.split()[1:4] == ["0", "1", "0"]
        assert "-" in row.split()

    def test_empty_registry_report(self):
        text = SLORegistry().report()
        assert "== SLO report ==" in text
        assert "-- attribution --" not in text

    def test_report_is_deterministic(self):
        a, b = SLORegistry(), SLORegistry()
        self.fill(a)
        self.fill(b)
        assert a.report() == b.report()
