"""End-to-end profile runs: artifacts on disk, CLI wiring, overhead."""

import json

import numpy as np
import pytest

from repro import cli, telemetry
from repro.kernels.api import run_kernel
from repro.telemetry.profile import run_profile

pytestmark = pytest.mark.telemetry


class TestRunProfile:
    def test_quick_profile_writes_three_artifacts(self, tmp_path):
        art = run_profile(solver="cr_pcr", quick=True,
                          outdir=str(tmp_path))
        with open(art.trace_path) as fh:
            doc = json.load(fh)
        phase_slices = [e for e in doc["traceEvents"]
                        if e["ph"] == "X" and e.get("cat") == "phase"]
        ledger = art.collector.launches[0].result.ledger
        assert {e["name"] for e in phase_slices} == set(ledger.phases)
        with open(art.events_path) as fh:
            for line in fh:
                json.loads(line)
        assert "telemetry summary" in art.summary_text
        assert "cr_pcr" in art.summary_text

    def test_profile_span_carries_modeled_time(self, tmp_path):
        art = run_profile(solver="cr", quick=True, outdir=str(tmp_path))
        root = next(s for s in art.collector.spans
                    if s.name == "profile")
        assert root.attrs["modeled_ms"] > 0
        assert root.attrs["transfer_ms"] > 0

    def test_collector_deactivated_after_profile(self, tmp_path):
        run_profile(solver="cr", quick=True, outdir=str(tmp_path))
        assert not telemetry.enabled()


class TestCli:
    def test_profile_subcommand(self, tmp_path, capsys):
        rc = cli.main(["profile", "--quick", "--outdir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace" in out
        trace = next(tmp_path.glob("*.trace.json"))
        json.loads(trace.read_text())


class TestDisabledOverhead:
    def test_run_kernel_disabled_path_never_touches_spans(
            self, dominant_small, monkeypatch):
        """With telemetry off, run_kernel must not build a span."""
        assert not telemetry.enabled()

        def boom(*a, **k):
            raise AssertionError("span() called on the disabled path")

        monkeypatch.setattr(telemetry, "span", boom)
        x, res = run_kernel("cr", dominant_small)
        assert np.all(np.isfinite(x))
        assert res.num_blocks == dominant_small.num_systems

    def test_run_kernel_enabled_path_uses_span(self, dominant_small):
        with telemetry.collect() as col:
            run_kernel("cr", dominant_small)
        names = [s.name for s in col.spans]
        assert "kernel.run" in names
        kr = next(s for s in col.spans if s.name == "kernel.run")
        assert kr.attrs["solver"] == "cr"
        assert kr.attrs["threads_per_block"] == 16
