"""Trace-context propagation, deterministic ids, and exposition."""

import json

from repro import telemetry
from repro.telemetry.collector import (Collector, TickClock,
                                       deterministic_collector)
from repro.telemetry.export import (prometheus_text, to_jsonl, trace_trees,
                                    write_prometheus)


class TestTickClock:
    def test_advances_fixed_tick(self):
        clock = TickClock(tick_s=0.5)
        assert clock() == 0.5
        assert clock() == 1.0
        assert clock() == 1.5


class TestTraceContext:
    def test_child_inherits_trace_id_from_stack(self):
        with telemetry.collect() as col:
            with telemetry.trace_span("root", trace_id="abcd1234"):
                with telemetry.span("child"):
                    with telemetry.span("grandchild"):
                        pass
        trace_ids = {s.trace_id for s in col.spans}
        assert trace_ids == {"abcd1234"}
        root, child, grand = col.spans[-3:]
        assert child.parent_id == root.span_id
        assert grand.parent_id == child.span_id

    def test_explicit_parent_links_across_stack(self):
        with telemetry.collect() as col:
            root = col.start_span("serve.trace", detached=True)
            with root:
                pass
            with telemetry.trace_span("serve.job", trace_id=root.record.trace_id,
                                      parent_id=root.record.span_id):
                pass
        job = col.spans[-1]
        assert job.parent_id == root.record.span_id
        assert job.trace_id == root.record.trace_id

    def test_detached_span_not_on_stack(self):
        with telemetry.collect() as col:
            detached = col.start_span("bg", detached=True)
            with detached:
                with telemetry.span("fg"):
                    pass
        fg = next(s for s in col.spans if s.name == "fg")
        # fg must NOT be parented under the detached span.
        assert fg.parent_id != detached.record.span_id

    def test_sibling_traces_stay_separate(self):
        with telemetry.collect() as col:
            with telemetry.trace_span("a", trace_id="aaaa0000"):
                pass
            with telemetry.trace_span("b", trace_id="bbbb0000"):
                pass
        trees = trace_trees(col)
        assert set(trees) == {"aaaa0000", "bbbb0000"}
        for tree in trees.values():
            assert tree["connected"]
            assert tree["root"] is not None

    def test_orphan_trace_reported_disconnected(self):
        with telemetry.collect() as col:
            with telemetry.trace_span("a", trace_id="cafe0001"):
                pass
            # Second root claiming the same trace: two roots, not a tree.
            with telemetry.trace_span("b", trace_id="cafe0001"):
                pass
        assert not trace_trees(col)["cafe0001"]["connected"]


class TestDeterministicIds:
    def run_workload(self, seed):
        col = deterministic_collector(seed)
        with telemetry.collect(col):
            with telemetry.trace_span("job", trace_id="feed0001", n=64):
                telemetry.event("queued", position=1)
                with telemetry.span("chunk", idx=0):
                    telemetry.event("launched")
        return col

    def test_bitwise_identical_jsonl(self):
        a = self.run_workload(seed=7)
        b = self.run_workload(seed=7)
        assert to_jsonl(a) == to_jsonl(b)

    def test_different_seed_different_ids(self):
        a = self.run_workload(seed=7)
        b = self.run_workload(seed=8)
        assert [s.span_id for s in a.spans] != [s.span_id for s in b.spans]

    def test_span_ids_unique(self):
        col = deterministic_collector(seed=0)
        with telemetry.collect(col):
            for i in range(200):
                with telemetry.span("s", i=i):
                    pass
        ids = [s.span_id for s in col.spans]
        assert len(ids) == len(set(ids))

    def test_unseeded_collector_uses_plain_counters(self):
        col = Collector()
        with telemetry.collect(col):
            with telemetry.span("a"):
                pass
            with telemetry.span("b"):
                pass
        assert [s.span_id for s in col.spans] == [1, 2]


class TestJsonlSchema:
    def test_span_lines_carry_trace_and_event_ids(self):
        col = deterministic_collector(seed=3)
        with telemetry.collect(col):
            with telemetry.trace_span("job", trace_id="beef0002"):
                telemetry.event("mark", k="v")
        lines = [json.loads(ln) for ln in to_jsonl(col).splitlines()]
        spans = [ln for ln in lines if ln["type"] == "span"]
        events = [ln for ln in lines if ln["type"] == "event"]
        assert spans and spans[0]["trace"] == "beef0002"
        assert events and isinstance(events[0]["id"], int)


class TestPrometheusText:
    def sample_collector(self):
        with telemetry.collect() as col:
            col.metrics.counter("serve.shed_total").inc(2, cls="standard")
            col.metrics.gauge("serve.pool_trace_cache.hit_rate").set(0.5)
            h = col.metrics.histogram("serve.latency_ms")
            for v in (1.0, 2.0, 4.0):
                h.observe(v, cls="standard")
        return col

    def test_families_render(self):
        text = prometheus_text(self.sample_collector())
        assert '# TYPE repro_serve_shed_total counter' in text
        assert 'repro_serve_shed_total{cls="standard"} 2' in text
        assert '# TYPE repro_serve_pool_trace_cache_hit_rate gauge' in text
        assert '# TYPE repro_serve_latency_ms histogram' in text
        assert 'le="+Inf"' in text
        assert 'repro_serve_latency_ms_count{cls="standard"} 3' in text
        assert 'repro_serve_latency_ms_sum{cls="standard"} 7' in text

    def test_bucket_counts_are_cumulative(self):
        text = prometheus_text(self.sample_collector())
        buckets = [ln for ln in text.splitlines()
                   if ln.startswith("repro_serve_latency_ms_bucket")]
        counts = [float(ln.rsplit(" ", 1)[1]) for ln in buckets]
        assert counts == sorted(counts)
        assert counts[-1] == 3

    def test_names_sanitized(self):
        with telemetry.collect() as col:
            col.metrics.counter("weird.name-with%chars").inc()
        text = prometheus_text(col)
        assert "repro_weird_name_with_chars" in text

    def test_deterministic_output(self):
        assert prometheus_text(self.sample_collector()) == \
            prometheus_text(self.sample_collector())

    def test_write_prometheus(self, tmp_path):
        path = write_prometheus(self.sample_collector(),
                                str(tmp_path / "m.prom"))
        content = open(path).read()
        assert content.endswith("\n")
        assert "repro_serve_shed_total" in content
