"""Span lifecycle: no-op when disabled, nesting, context attributes."""

import pytest

from repro import telemetry
from repro.telemetry.spans import NOOP_SPAN


class TestDisabled:
    def test_no_collector_by_default(self):
        assert not telemetry.enabled()
        assert telemetry.get_collector() is None

    def test_span_returns_shared_noop_singleton(self):
        assert telemetry.span("a") is telemetry.span("b")
        assert telemetry.span("a") is NOOP_SPAN

    def test_noop_span_absorbs_everything(self):
        with telemetry.span("x", k=1) as sp:
            sp.set_attr("y", 2)
            sp.event("e", z=3)
        assert telemetry.current_span() is None

    def test_event_without_collector_is_noop(self):
        telemetry.event("orphan", detail="ignored")
        assert telemetry.get_collector() is None


class TestCollect:
    def test_spans_record_and_nest(self):
        with telemetry.collect() as col:
            with telemetry.span("outer", solver="cr") as outer:
                with telemetry.span("inner") as inner:
                    pass
        assert [s.name for s in col.spans] == ["outer", "inner"]
        rec_outer = next(s for s in col.spans if s.name == "outer")
        rec_inner = next(s for s in col.spans if s.name == "inner")
        assert rec_inner.parent_id == rec_outer.span_id
        assert rec_outer.parent_id is None
        assert rec_outer.attrs["solver"] == "cr"
        assert rec_outer.wall_dur_s >= 0.0

    def test_stack_unwinds(self):
        with telemetry.collect():
            with telemetry.span("a"):
                assert telemetry.current_span().name == "a"
            assert telemetry.current_span() is None

    def test_current_attr_walks_open_stack(self):
        with telemetry.collect():
            with telemetry.span("outer", solver="pcr"):
                with telemetry.span("inner"):
                    assert telemetry.current_attr("solver") == "pcr"
            assert telemetry.current_attr("solver", "dflt") == "dflt"

    def test_events_attach_to_open_span(self):
        with telemetry.collect() as col:
            with telemetry.span("host") as sp:
                sp.event("milestone", step=3)
        ev = col.events[0]
        assert ev.name == "milestone"
        assert ev.attrs["step"] == 3
        assert ev.span_id == col.spans[0].span_id

    def test_collect_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with telemetry.collect():
                assert telemetry.enabled()
                raise RuntimeError("boom")
        assert not telemetry.enabled()

    def test_nested_collect_restores_outer(self):
        with telemetry.collect() as outer:
            with telemetry.collect() as inner:
                assert telemetry.get_collector() is inner
            assert telemetry.get_collector() is outer
        assert telemetry.get_collector() is None

    def test_span_exit_closes_record_even_on_error(self):
        with telemetry.collect() as col:
            with pytest.raises(ValueError):
                with telemetry.span("doomed"):
                    raise ValueError
        assert col.spans[0].wall_dur_s is not None
        assert telemetry.current_span() is None
