"""Failure injection: how every path behaves on bad inputs.

The no-pivoting solvers are *allowed* to fail on singular or
non-dominant systems (§5.4 says so); these tests pin down that the
failure is the documented one -- non-finite outputs or flagged
diagnostics, never silent wrong-but-finite answers on clean inputs,
and never crashes from the batched code paths.
"""

import warnings

import numpy as np
import pytest

from repro.numerics.generators import diagonally_dominant_fluid
from repro.numerics.residual import evaluate_accuracy
from repro.solvers.api import SOLVERS
from repro.solvers.systems import TridiagonalSystems


def _quiet(fn, *a, **kw):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return fn(*a, **kw)


class TestSingularInputs:
    def _singular(self, n=16):
        """Row of zeros: exactly singular."""
        s = diagonally_dominant_fluid(2, n, seed=0, dtype=np.float64)
        s.a[0, 5] = 0.0
        s.b[0, 5] = 0.0
        s.c[0, 5] = 0.0
        return s

    @pytest.mark.parametrize("name", ["thomas", "cr", "pcr"])
    def test_no_pivot_solvers_produce_nonfinite(self, name):
        """Singular input must not yield a clean-looking answer."""
        s = self._singular()
        x = _quiet(SOLVERS[name], s, intermediate_size=None)
        assert not np.isfinite(x[0]).all()

    def test_healthy_systems_in_batch_unaffected(self):
        """One singular system must not poison its batch neighbours."""
        s = self._singular()
        x = _quiet(SOLVERS["cr"], s, intermediate_size=None)
        assert np.isfinite(x[1]).all()
        assert s.residual(np.nan_to_num(x))[1] < 1e-8 or \
            TridiagonalSystems(s.a[1:], s.b[1:], s.c[1:],
                               s.d[1:]).residual(x[1:]).max() < 1e-8

    def test_gep_batched_flags_singularity(self):
        s = self._singular()
        x = _quiet(SOLVERS["gep"], s, intermediate_size=None)
        assert not np.isfinite(x[0]).all()

    def test_validate_hints_catch_it(self):
        from repro.solvers.validate import validate_nonsingular_hint
        msgs = validate_nonsingular_hint(self._singular())
        assert msgs  # at least one warning


class TestNaNPropagation:
    @pytest.mark.parametrize("name", ["thomas", "cr", "pcr", "gep", "qr"])
    def test_nan_rhs_stays_in_its_system(self, name):
        s = diagonally_dominant_fluid(3, 16, seed=1, dtype=np.float64)
        s.d[1, 7] = np.nan
        x = _quiet(SOLVERS[name], s, intermediate_size=None)
        assert not np.isfinite(x[1]).all()       # poisoned system fails
        assert np.isfinite(x[0]).all()           # neighbours fine
        assert np.isfinite(x[2]).all()


class TestDiagnostics:
    def test_accuracy_evaluation_never_raises(self):
        s = diagonally_dominant_fluid(4, 32, seed=2)
        x = np.full(s.shape, np.inf)
        res = _quiet(evaluate_accuracy, "broken", s, x)
        assert res.overflow_fraction == 1.0

    def test_condition_estimate_flags_near_singular(self):
        from repro.numerics.condition import condition_estimate
        s = diagonally_dominant_fluid(2, 16, seed=3, dtype=np.float64)
        s.b[0] *= 1e-14  # nearly scale-singular rows vs off-diagonals
        s.b[0] += s.a[0] + s.c[0]  # keep solvable but horrid
        est = _quiet(condition_estimate, s)
        assert est[0] > 100 * est[1] or est[0] > 1e6

    def test_refinement_reports_nonconvergence_not_garbage(self):
        from repro.solvers.refine import refined_solve
        s = diagonally_dominant_fluid(2, 16, seed=4)
        s.a[:, 3] = 0.0   # a whole zero row: exactly singular
        s.b[:, 3] = 0.0
        s.c[:, 3] = 0.0
        res = _quiet(refined_solve, s, method="cr", max_iterations=3)
        assert not res.converged

    def test_refinement_survives_mere_dominance_loss(self):
        """A zero *diagonal* entry alone does not make the matrix
        singular; CR plus refinement still reaches float64 accuracy --
        failure modes must not be over-reported."""
        from repro.solvers.refine import refined_solve
        s = diagonally_dominant_fluid(2, 16, seed=4)
        s.b[:, 3] = 0.0
        res = _quiet(refined_solve, s, method="cr", max_iterations=5)
        assert res.converged
        assert res.final_residual < 1e-12


class TestKernelRobustness:
    def test_kernel_layer_matches_numpy_on_singular(self):
        """Even on broken inputs, the kernels and NumPy layers agree
        (same arithmetic, same NaNs)."""
        from repro.kernels.api import run_cr
        s = diagonally_dominant_fluid(2, 16, seed=5)
        s.b[0, 3] = 0.0
        x_np = _quiet(SOLVERS["cr"], s, intermediate_size=None)
        x_k, _ = _quiet(run_cr, s)
        np.testing.assert_array_equal(np.isfinite(x_k), np.isfinite(x_np))

    def test_empty_batch_dimension(self):
        s = TridiagonalSystems(np.zeros((0, 8)), np.ones((0, 8)),
                               np.zeros((0, 8)), np.zeros((0, 8)))
        x = SOLVERS["thomas"](s, intermediate_size=None)
        assert x.shape == (0, 8)
