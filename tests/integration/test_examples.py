"""Smoke tests: every shipped example must run to completion.

Examples are documentation that executes; letting them rot defeats
their purpose.  Each runs in a subprocess exactly as a user would run
it.  The heaviest ones (full 512x512 ADI, the complete performance
walkthrough) are exercised with reduced work via environment-free
direct runs of their faster siblings; the rest run as-is.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                            "examples")

#: (script, timeout seconds).  Chosen to keep the suite under a minute
#: while covering every example at least weekly-CI-fast.
FAST_EXAMPLES = [
    ("quickstart.py", 120),
    ("cubic_spline_demo.py", 120),
    ("eigenvalues_demo.py", 120),
    ("ocean_mixing.py", 180),
    ("block_reaction_diffusion.py", 120),
    ("pond_ripples.py", 180),
    ("multigrid_anisotropic.py", 180),
]

HEAVY_EXAMPLES = [
    ("adi_heat_diffusion.py", 420),
    ("depth_of_field_blur.py", 420),
    ("performance_analysis.py", 420),
    ("accuracy_study.py", 420),
    ("option_pricing.py", 420),
]


def _run(script, timeout):
    path = os.path.join(EXAMPLES_DIR, script)
    proc = subprocess.run([sys.executable, path], capture_output=True,
                          text=True, timeout=timeout)
    assert proc.returncode == 0, (
        f"{script} failed:\n{proc.stderr[-2000:]}")
    assert proc.stdout.strip(), f"{script} produced no output"


@pytest.mark.parametrize("script,timeout", FAST_EXAMPLES)
def test_fast_example(script, timeout):
    _run(script, timeout)


@pytest.mark.slow
@pytest.mark.parametrize("script,timeout", HEAVY_EXAMPLES)
def test_heavy_example(script, timeout):
    _run(script, timeout)
