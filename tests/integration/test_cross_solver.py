"""Cross-solver consistency: every path agrees on every matrix class
where it is numerically applicable, and the kernel layer is bit-equal
to the NumPy layer throughout."""

import warnings

import numpy as np
import pytest

from repro.kernels.api import run_kernel
from repro.numerics.generators import MATRIX_CLASSES
from repro.solvers.api import SOLVERS
from repro.solvers.thomas import thomas_batched

#: (solver, matrix class) pairs where a no-pivoting method is expected
#: to work in float32 (per §5.4 stability conditions).
APPLICABLE = [
    ("cr", "diagonally_dominant"), ("cr", "toeplitz_spd"),
    ("cr", "random_dominant"),
    ("pcr", "diagonally_dominant"), ("pcr", "toeplitz_spd"),
    ("pcr", "random_dominant"),
    ("rd", "close_values"),
    ("cr_pcr", "diagonally_dominant"), ("cr_pcr", "toeplitz_spd"),
    ("cr_pcr", "random_dominant"),
    ("cr_rd", "close_values"),
    ("gep", "diagonally_dominant"), ("gep", "close_values"),
    ("gep", "toeplitz_spd"), ("gep", "random_dominant"),
    ("gep", "ill_conditioned"),
]


@pytest.mark.parametrize("solver,matclass", APPLICABLE)
def test_solver_on_class(solver, matclass):
    s = MATRIX_CLASSES[matclass](4, 64, seed=hash((solver, matclass)) % 1000)
    x = SOLVERS[solver](s, intermediate_size=None)
    rel = s.residual(x) / np.linalg.norm(s.d.astype(np.float64), axis=1)
    assert np.isfinite(x).all(), (solver, matclass)
    assert rel.max() < 1e-2, (solver, matclass)


@pytest.mark.parametrize("name", ["cr", "pcr", "rd", "cr_pcr", "cr_rd"])
@pytest.mark.parametrize("n", [4, 32, 128])
def test_kernel_layer_bit_equals_numpy_layer(name, n):
    """The instrumented kernels and the vectorised solvers implement
    the same float32 arithmetic, so results match bit for bit."""
    gen = (MATRIX_CLASSES["close_values"] if "rd" in name
           else MATRIX_CLASSES["diagonally_dominant"])
    s = gen(4, n, seed=n)
    m = max(2, n // 4) if name in ("cr_pcr", "cr_rd") else None
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        x_kernel, _ = run_kernel(name, s, intermediate_size=m)
        x_numpy = SOLVERS[name](s, intermediate_size=m)
    np.testing.assert_array_equal(x_kernel, x_numpy)


@pytest.mark.parametrize("n", [16, 64])
def test_all_dominant_solvers_agree(n):
    """CR, PCR, hybrid, GEP and Thomas agree to float32 tolerance on
    the same dominant batch."""
    s = MATRIX_CLASSES["diagonally_dominant"](4, n, seed=n)
    ref = thomas_batched(s.astype(np.float64))
    for name in ("cr", "pcr", "cr_pcr", "gep", "thomas"):
        x = SOLVERS[name](s, intermediate_size=None)
        np.testing.assert_allclose(x, ref, rtol=5e-3, atol=1e-4,
                                   err_msg=name)


def test_float64_pipeline():
    """The library path supports double precision end to end."""
    s = MATRIX_CLASSES["diagonally_dominant"](4, 64, seed=1,
                                              dtype=np.float64)
    ref = thomas_batched(s)
    for name in ("cr", "pcr", "cr_pcr"):
        x = SOLVERS[name](s, intermediate_size=None)
        assert x.dtype == np.float64
        np.testing.assert_allclose(x, ref, rtol=1e-10, atol=1e-12,
                                   err_msg=name)
