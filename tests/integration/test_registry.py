"""The experiment registry stays in sync with reality."""

import glob
import importlib
import os

import pytest

from repro.experiments import EXPERIMENTS, by_id, paper_artifacts, summary

BENCH_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                         "benchmarks")


class TestRegistryConsistency:
    def test_every_registered_bench_exists(self):
        for e in EXPERIMENTS:
            path = os.path.join(BENCH_DIR, e.bench)
            assert os.path.isfile(path), f"{e.id}: missing {e.bench}"

    def test_every_figure_bench_is_registered(self):
        """No orphan figure/table/ablation benches."""
        on_disk = {os.path.basename(p)
                   for p in glob.glob(os.path.join(BENCH_DIR,
                                                   "bench_*.py"))}
        registered = {e.bench for e in EXPERIMENTS}
        # Wall-clock suites measure this library, not the paper.
        exempt = {"bench_cpu_wallclock.py", "bench_extension_solvers.py",
                  "bench_trace_cache.py", "bench_serve_latency.py",
                  "bench_overload.py", "bench_vectorized_engine.py",
                  "bench_layout_autotune.py"}
        assert on_disk - registered - exempt == set()

    def test_every_module_imports(self):
        for e in EXPERIMENTS:
            for mod in e.modules:
                importlib.import_module(mod)

    def test_all_fourteen_paper_artifacts_covered(self):
        """Table 1 plus Figures 6-18: fourteen artifacts, all present."""
        refs = {e.paper_ref for e in paper_artifacts()}
        expected = {"Table 1"} | {f"Figure {i}" for i in range(6, 19)}
        assert refs == expected

    def test_ids_unique(self):
        ids = [e.id for e in EXPERIMENTS]
        assert len(ids) == len(set(ids))

    def test_lookup(self):
        assert by_id("fig9").bench == "bench_fig9_bank_conflicts.py"
        with pytest.raises(KeyError):
            by_id("fig99")

    def test_summary_renders(self):
        text = summary()
        assert "Figure 18" in text
        assert "bench_fig17_switch_point.py" in text
