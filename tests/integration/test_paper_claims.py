"""End-to-end checks of the paper's headline claims at 512x512.

Each test names the paper section/figure whose claim it verifies.
Counters are per block, so two simulated blocks stand in for the 512
the timings are scaled to.
"""

import warnings

import numpy as np
import pytest

from repro.analysis.autotune import sweep_switch_point
from repro.analysis.cpumodel import cpu_times, speedup
from repro.analysis.timing import compare_solvers, timed_solve
from repro.gpusim.transfer import PCIeModel
from repro.numerics.generators import close_values, diagonally_dominant_fluid


@pytest.fixture(scope="module")
def timings_512():
    s = diagonally_dominant_fluid(2, 512, seed=0)
    scale_to = 512

    # compare_solvers runs on 2 blocks; rescale to the paper's grid by
    # re-running timed_solve on a 512-wide batch would be slow -- the
    # grid scale is linear in waves, so scale by wave count instead.
    from repro.gpusim import GTX280, gt200_cost_model
    cm = gt200_cost_model()
    out = {}
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for name, m in [("cr", None), ("pcr", None), ("rd", None),
                        ("cr_pcr", 256), ("cr_rd", 128)]:
            t = timed_solve(name, s, intermediate_size=m)
            scale2, conc, _ = cm.grid_scale(GTX280, 2, t.launch.shared_bytes,
                                            t.launch.threads_per_block)
            scale512, _, _ = cm.grid_scale(GTX280, scale_to,
                                           t.launch.shared_bytes,
                                           t.launch.threads_per_block)
            solver = ((t.solver_ms - t.report.launch_overhead_ms)
                      * scale512 / scale2 + t.report.launch_overhead_ms)
            out[name] = solver
    return out


class TestHeadlines:
    def test_hybrid_improvements_section1(self, timings_512):
        """§1: "hybrid algorithms improve PCR, RD and CR by 21%, 31%
        and 61% respectively" -- we require at least half of each
        published gain and the right ordering."""
        t = timings_512
        assert 1 - t["cr_pcr"] / t["pcr"] >= 0.10
        assert 1 - t["cr_rd"] / t["rd"] >= 0.15
        assert 1 - t["cr_pcr"] / t["cr"] >= 0.45

    def test_fig6_ordering_512(self, timings_512):
        t = timings_512
        assert t["cr_pcr"] < t["cr_rd"] < t["pcr"] < t["rd"] < t["cr"]

    def test_fig6_hybrids_lose_at_small_sizes(self):
        """§5.2: hybrids "perform worse than RD and PCR for the 64x64
        and 128x128 cases"."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for n in (64, 128):
                # The paper's grids are square: n systems of n unknowns.
                s = diagonally_dominant_fluid(n, n, seed=n)
                r = compare_solvers(
                    s, intermediate_sizes={"cr_pcr": n // 2,
                                           "cr_rd": n // 4})
                assert r["pcr"].solver_ms < r["cr_pcr"].solver_ms, n

    def test_fig7_speedups(self, timings_512):
        """Fig 7: ~12.5x over the MT CPU solver, ~28x over LAPACK."""
        best_gpu = min(timings_512.values())
        cpu = cpu_times(512, 512)
        assert speedup(best_gpu, cpu.mt_ms) == pytest.approx(12.5, rel=0.25)
        assert speedup(best_gpu, cpu.gep_ms) == pytest.approx(28.0, rel=0.25)

    def test_fig7_transfer_inclusive_speedup_collapses(self, timings_512):
        """Fig 7 right: including PCIe transfer drops the 512x512
        speedup to ~1.2x."""
        transfer = PCIeModel().solver_roundtrip_ms(512, 512)
        best_gpu = min(timings_512.values()) + transfer
        cpu = cpu_times(512, 512)
        s = speedup(best_gpu, cpu.best()[1])
        assert 0.8 <= s <= 1.8

    def test_fig17_switch_points(self):
        """Fig 17: best m far above warp size; CR+RD capped at 128."""
        s = diagonally_dominant_fluid(2, 512, seed=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            pcr_sweep = sweep_switch_point(s, "pcr")
            rd_sweep = sweep_switch_point(s, "rd")
        assert pcr_sweep.best().intermediate_size in (128, 256)
        assert rd_sweep.best().intermediate_size == 128

    def test_pcr_half_of_cr_section532(self, timings_512):
        ratio = timings_512["pcr"] / timings_512["cr"]
        assert 0.35 <= ratio <= 0.65

    def test_rd_slightly_slower_than_pcr_section533(self, timings_512):
        assert 1.0 < timings_512["rd"] / timings_512["pcr"] < 1.4


class TestFig18Accuracy:
    """The two accuracy experiments of §5.4, float32 throughout."""

    @pytest.fixture(scope="class")
    def solvers(self):
        from repro.solvers.api import SOLVERS
        return ["gep", "thomas", "cr", "pcr", "cr_pcr", "rd", "cr_rd"]

    def test_dominant_case(self, solvers):
        """Diagonally dominant: GEP/GE/CR/PCR/CR+PCR accurate; RD and
        CR+RD overflow."""
        from repro.numerics.residual import evaluate_accuracy
        from repro.solvers.api import SOLVERS
        s = diagonally_dominant_fluid(16, 512, seed=2)
        results = {}
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for name in solvers:
                m = {"cr_pcr": 256, "cr_rd": 128}.get(name)
                x = SOLVERS[name](s, intermediate_size=m)
                results[name] = evaluate_accuracy(name, s, x)
        for good in ("gep", "thomas", "cr", "pcr", "cr_pcr"):
            assert not results[good].overflowed, good
            assert results[good].median_residual < 1e-3, good
        for bad in ("rd", "cr_rd"):
            assert results[bad].overflow_fraction > 0.5, bad

    def test_close_values_case(self, solvers):
        """Close values in rows: nobody overflows; everybody but GEP is
        less accurate; GEP best (it pivots)."""
        from repro.numerics.residual import evaluate_accuracy
        from repro.solvers.api import SOLVERS
        s = close_values(16, 512, seed=3)
        results = {}
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for name in solvers:
                m = {"cr_pcr": 256, "cr_rd": 128}.get(name)
                x = SOLVERS[name](s, intermediate_size=m)
                results[name] = evaluate_accuracy(name, s, x)
        for name in solvers:
            assert results[name].overflow_fraction < 0.2, name
        gep_med = results["gep"].median_residual
        for name in ("cr", "pcr", "rd"):
            assert results[name].median_residual >= gep_med * 0.5, name

    def test_dominant_residuals_much_better_than_close_values(self):
        from repro.numerics.residual import evaluate_accuracy
        from repro.solvers.api import SOLVERS
        dom = diagonally_dominant_fluid(8, 512, seed=4)
        close = close_values(8, 512, seed=5)
        r_dom = evaluate_accuracy("cr", dom, SOLVERS["cr"](dom))
        r_close = evaluate_accuracy("cr", close, SOLVERS["cr"](close))
        assert r_dom.median_residual < r_close.median_residual
