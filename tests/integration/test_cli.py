"""The ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "GTX 280" in out
        assert "cr_pcr" in out

    def test_verify_passes(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "all headline checks passed" in out
        assert "FAIL" not in out

    def test_analyze(self, capsys):
        assert main(["analyze", "cr", "--n", "64"]) == 0
        out = capsys.readouterr().out
        assert "prioritized optimizations" in out
        assert "forward_reduction" in out

    def test_analyze_hybrid_with_switch_point(self, capsys):
        assert main(["analyze", "cr_pcr", "--n", "64",
                     "--intermediate-size", "16"]) == 0
        out = capsys.readouterr().out
        assert "inner_forward_reduction" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_bad_solver_rejected(self):
        with pytest.raises(SystemExit):
            main(["analyze", "sor"])


class TestReport:
    def test_report_to_stdout(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "# Reproduction report" in out
        assert "matches the paper" in out
        assert "overflow" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "rep.md"
        assert main(["report", "-o", str(target)]) == 0
        text = target.read_text()
        assert "Solver totals at 512x512" in text
        assert "Bank conflicts" in text
        assert "Hybrid switch points" in text


class TestExperimentsCommand:
    def test_lists_all_artifacts(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "Figure 18" in out
        assert "bench_table1_complexity.py" in out


class TestRobustCommand:
    def test_healthy_run_exits_zero(self, capsys):
        assert main(["robust", "--systems", "4", "--size", "32"]) == 0
        out = capsys.readouterr().out
        assert "accepted" in out

    def test_exhausted_chain_exits_nonzero(self, capsys):
        """An impossible tolerance defeats every chain member: the
        command must say so and exit 1 (the satellite contract)."""
        rc = main(["robust", "--systems", "4", "--size", "32",
                   "--tol", "0"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "(exit 1)" in out
        assert "fallback_total" in out or "failed the whole chain" in out

    def test_json_carries_resilience_metrics(self, capsys):
        import json
        assert main(["robust", "--systems", "4", "--size", "32",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "metrics" in doc
        assert set(doc["metrics"]) == {"fallback_total", "residual_max"}
        assert doc["metrics"]["residual_max"]   # histogram observed


class TestServeCommand:
    ARGS = ["serve", "--jobs", "2", "--systems", "8", "--size", "32",
            "--chunk-size", "4", "--devices", "2", "--seed", "3"]

    def test_healthy_pool_exits_zero(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "job job0: ok" in out
        assert "job job1: ok" in out
        assert "modeled makespan" in out

    def test_hot_device_run_reroutes(self, capsys):
        # threshold 1: the breaker must trip on gpu1's first failed
        # attempt; the seeded backoff jitter decides how many attempts
        # gpu1 even gets before every chunk lands on gpu0.
        assert main(self.ARGS + ["--hot", "1",
                                 "--failure-threshold", "1"]) == 0
        out = capsys.readouterr().out
        assert "serving:" in out            # telemetry summary section
        assert "breaker transitions" in out

    def test_json_reports_and_metrics(self, capsys):
        import json
        assert main(self.ARGS + ["--hot", "1", "--failure-threshold",
                                 "2", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert [j["job_id"] for j in doc["jobs"]] == ["job0", "job1"]
        assert all(j["outcome"] == "ok" for j in doc["jobs"])
        assert "gpu0" in doc["breakers"]
        assert any(k.startswith("serve.") for k in doc["metrics"])

    def test_checkpoint_resume_round_trip(self, tmp_path, capsys):
        import json

        def base(ckpt):
            return ["serve", "--jobs", "1", "--systems", "8", "--size",
                    "32", "--chunk-size", "2", "--devices", "2",
                    "--seed", "3", "--checkpoint", str(ckpt),
                    "--checkpoint-every", "2", "--json"]

        def digest():
            doc = json.loads(capsys.readouterr().out)
            return doc["jobs"][0]["solution_digest"]

        assert main(base(tmp_path / "a")) == 0
        full = digest()
        assert main(base(tmp_path / "b") + ["--stop-after", "2"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["jobs"][0]["outcome"] == "stopped"
        assert main(base(tmp_path / "b") + ["--resume"]) == 0
        assert digest() == full             # bitwise-identical solution

    def test_unmeetable_deadline_rejected(self, capsys):
        rc = main(self.ARGS + ["--deadline-ms", "1e-9"])
        out = capsys.readouterr().out
        assert rc == 1                      # nothing ran
        assert "deadline_unmeetable" in out


class TestServeObservability:
    """``repro serve`` SLO report, JSON schema v2, exports, top."""

    ARGS = ["serve", "--jobs", "2", "--systems", "8", "--size", "32",
            "--chunk-size", "4", "--devices", "2", "--seed", "3"]

    def test_report_renders_slo_table(self, capsys):
        assert main(self.ARGS + ["--report"]) == 0
        out = capsys.readouterr().out
        assert "== SLO report ==" in out
        assert "standard" in out
        assert "latency by class (modeled ms):" in out
        assert "pool trace cache:" in out

    def test_report_is_bitwise_identical_across_runs(self, capsys):
        assert main(self.ARGS + ["--report"]) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS + ["--report"]) == 0
        assert capsys.readouterr().out == first

    def test_slo_class_flag_routes_jobs(self, capsys):
        import json
        assert main(self.ARGS + ["--slo-class", "batch", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert all(j["slo_class"] == "batch" for j in doc["jobs"])
        assert doc["slo"]["batch"]["jobs"] == 2

    def test_json_schema_v2(self, capsys):
        import json
        assert main(self.ARGS + ["--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["format"] == "repro.serve/v2"
        assert doc["seed"] == 3
        assert doc["exit_code"] == 0
        assert doc["shed"] == []
        assert "standard" in doc["slo"]
        assert doc["pool_trace_cache"]["hits"] >= 1
        for job in doc["jobs"]:
            assert job["trace_id"]
            assert "queue_wait_ms" in job

    def test_shed_jobs_exit_nonzero_with_attribution(self, capsys):
        import json
        rc = main(self.ARGS + ["--deadline-ms", "1e-9", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert doc["exit_code"] == 1
        assert len(doc["shed"]) == 2
        assert all(s["reason"] == "deadline_unmeetable"
                   for s in doc["shed"])
        assert doc["slo"]["standard"]["shed"] == 2

    def test_export_dir_writes_artifacts(self, tmp_path, capsys):
        import json
        out_dir = tmp_path / "obs"
        assert main(self.ARGS + ["--export-dir", str(out_dir)]) == 0
        capsys.readouterr()
        trace = json.loads((out_dir / "serve.trace.json").read_text())
        assert trace["traceEvents"]
        events = (out_dir / "serve.events.jsonl").read_text()
        assert '"type": "span"' in events
        assert (out_dir / "serve.summary.txt").read_text()
        prom = (out_dir / "serve.metrics.prom").read_text()
        assert "repro_serve_latency_ms_bucket" in prom

    def test_exports_bitwise_identical_across_runs(self, tmp_path,
                                                   capsys):
        a, b = tmp_path / "a", tmp_path / "b"
        assert main(self.ARGS + ["--export-dir", str(a)]) == 0
        assert main(self.ARGS + ["--export-dir", str(b)]) == 0
        capsys.readouterr()
        for name in ("serve.trace.json", "serve.events.jsonl",
                     "serve.metrics.prom"):
            assert (a / name).read_bytes() == (b / name).read_bytes(), name

    def test_top_round_trip(self, tmp_path, capsys):
        out_dir = tmp_path / "obs"
        assert main(self.ARGS + ["--export-dir", str(out_dir)]) == 0
        capsys.readouterr()
        assert main(["top", str(out_dir / "serve.events.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "== repro top" in out
        assert "serve latency" in out
        assert "p99" in out

    def test_top_missing_file_exits_nonzero(self, capsys):
        assert main(["top", "/nonexistent/events.jsonl"]) == 1
