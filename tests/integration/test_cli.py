"""The ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "GTX 280" in out
        assert "cr_pcr" in out

    def test_verify_passes(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "all headline checks passed" in out
        assert "FAIL" not in out

    def test_analyze(self, capsys):
        assert main(["analyze", "cr", "--n", "64"]) == 0
        out = capsys.readouterr().out
        assert "prioritized optimizations" in out
        assert "forward_reduction" in out

    def test_analyze_hybrid_with_switch_point(self, capsys):
        assert main(["analyze", "cr_pcr", "--n", "64",
                     "--intermediate-size", "16"]) == 0
        out = capsys.readouterr().out
        assert "inner_forward_reduction" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_bad_solver_rejected(self):
        with pytest.raises(SystemExit):
            main(["analyze", "sor"])


class TestReport:
    def test_report_to_stdout(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "# Reproduction report" in out
        assert "matches the paper" in out
        assert "overflow" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "rep.md"
        assert main(["report", "-o", str(target)]) == 0
        text = target.read_text()
        assert "Solver totals at 512x512" in text
        assert "Bank conflicts" in text
        assert "Hybrid switch points" in text


class TestExperimentsCommand:
    def test_lists_all_artifacts(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "Figure 18" in out
        assert "bench_table1_complexity.py" in out
