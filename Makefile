# Convenience targets for the reproduction.

PY ?= python

.PHONY: test test-fast bench bench-cache bench-engine bench-serve bench-overload bench-layout figures report profile chaos serve-chaos serve-health serve-overload verify verify-full fuzz calibrate examples clean

test:            ## full test suite (incl. heavy example smoke tests)
	$(PY) -m pytest tests/

test-fast:       ## tests without the slow end-to-end example runs
	$(PY) -m pytest tests/ -m "not slow"

bench:           ## all table/figure/ablation benchmarks (pytest-benchmark)
	$(PY) -m pytest benchmarks/ --benchmark-only

bench-cache:     ## trace-cache perf smoke (fails if hit rate < 90%)
	$(PY) benchmarks/bench_trace_cache.py --quick

bench-engine:    ## vectorized-engine perf smoke (fails below 10x over the
                 ## per-lane oracle or on any bitwise ledger mismatch)
	$(PY) benchmarks/bench_vectorized_engine.py --quick

bench-serve:     ## serve-latency perf smoke (fails if p99 regresses >25%
                 ## vs the committed baseline; --update to rebaseline)
	$(PY) benchmarks/bench_serve_latency.py --check

bench-overload:  ## overload-shedding perf smoke (fails on interactive
                 ## sheds, goodput drops, or p99 regressions >25%)
	$(PY) benchmarks/bench_overload.py --check

bench-layout:    ## layout-autotuner perf smoke (fails on choice flips,
                 ## coalescing regressions, or analytic/measured drift)
	$(PY) benchmarks/bench_layout_autotune.py --quick --check

figures:         ## regenerate every table/figure text artifact in benchmarks/results/
	@cd benchmarks && for b in bench_*.py; do \
	  case $$b in bench_cpu_wallclock.py|bench_extension_solvers.py|bench_layout_autotune.py|bench_trace_cache.py|bench_vectorized_engine.py) continue;; esac; \
	  echo "== $$b"; $(PY) $$b > /dev/null || exit 1; done

report:          ## paper-vs-model Markdown report
	$(PY) -m repro report -o REPRODUCTION_REPORT.md

profile:         ## quick telemetry smoke: write + validate profile artifacts
	$(PY) -m repro profile --quick --outdir profiles
	$(PY) -c "import glob, json; \
	  path = sorted(glob.glob('profiles/*.trace.json'))[-1]; \
	  doc = json.load(open(path)); \
	  assert doc['traceEvents'], path; \
	  print(f'{path}: {len(doc[\"traceEvents\"])} trace events ok')"

chaos:           ## fault-injection suite, run twice to prove the seeded
                 ## plans are deterministic (identical pass/fail both runs)
	$(PY) -m pytest tests/ -m chaos -q
	$(PY) -m pytest tests/ -m chaos -q

serve-chaos:     ## serving-layer chaos suite (breakers, deadlines,
                 ## kill/resume), run twice for the determinism proof
	$(PY) -m pytest tests/ -m serve -q
	$(PY) -m pytest tests/ -m serve -q

serve-health:    ## device lifecycle suite (quarantine/readmission, hedged
                 ## chunks, warm spares), run twice for the determinism proof
	$(PY) -m pytest tests/ -m health -q
	$(PY) -m pytest tests/ -m health -q

serve-overload:  ## multi-tenant overload acceptance suite (admission,
                 ## quotas, shedding), run twice for the determinism proof
	$(PY) -m pytest tests/ -m overload -q
	$(PY) -m pytest tests/ -m overload -q

verify:          ## 30-second headline reproduction check
	$(PY) -m repro verify

verify-full:     ## headline + differential oracle grid + invariant checker
	$(PY) -m repro verify --all

fuzz:            ## seeded differential fuzzing (SEED/ITERS overridable)
	$(PY) -m repro fuzz --seed $(or $(SEED),0) --iters $(or $(ITERS),200) \
	  --corpus fuzz-corpus

calibrate:       ## re-fit the GT200 cost model against the paper's numbers
	$(PY) -m repro.gpusim.calibrate

examples:        ## run every example script
	@for e in examples/*.py; do echo "== $$e"; $(PY) $$e > /dev/null || exit 1; done

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/.benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
